# Convenience targets for the AB-ORAM reproduction.

PYTEST ?= python -m pytest
PYTHON ?= python

# Make every target work from a bare checkout (no `pip install -e .`):
# src/ layout, so the package root just needs to be importable.
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test bench bench-full figures examples lint perf-smoke \
	pipeline-smoke faults-smoke telemetry-smoke serve-smoke chaos-smoke \
	shard-smoke obs-smoke ci clean

install:
	pip install -e . || python setup.py develop

test:
	$(PYTEST) tests/

test-output:
	$(PYTEST) tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTEST) benchmarks/ --benchmark-only

bench-output:
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Full-scale sweep (slow): all 17 SPEC benchmarks at a deeper tree.
bench-full:
	REPRO_BENCH_SUITE=all REPRO_BENCH_LEVELS=16 REPRO_BENCH_REQUESTS=2500 \
	  $(PYTEST) benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro space
	$(PYTHON) -m repro sweep --schemes baseline dr ns ab

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

# Uses ruff when installed (what CI runs); falls back to the bundled
# AST-based checker so `make lint` works in a bare environment.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests benchmarks examples tools && \
	  ruff format --check src tests benchmarks examples tools; \
	else \
	  echo "ruff not installed; running tools/lint.py fallback"; \
	  $(PYTHON) tools/lint.py src tests benchmarks examples tools; \
	fi

# CI smoke: seconds-scale perf matrix (two workers: also exercises the
# parallel executor) + soft-gated comparison against the committed
# baseline. Scratch reports live under generated/ (gitignored).
perf-smoke:
	$(PYTHON) -m repro perf run --smoke --workers 2 \
	  --out generated/BENCH_perf_new.json
	$(PYTHON) -m repro perf compare \
	  benchmarks/baselines/BENCH_perf_smoke.json \
	  generated/BENCH_perf_new.json --warn-only

# CI pipeline smoke: the transaction-pipelined controller's three
# gates, all hard failures. (1) the smoke matrix's ns/mcf@p4 cell must
# beat its serial twin by >= 1.5x on simulated DRAM-ns with every
# logical sim field identical, and the serial cells must match the
# committed baseline bit for bit (depth 1 untouched by the pipeline).
# (2) a second run over two spawn workers must produce a byte-identical
# deterministic report view. (3) a pipelined traced run must emit a
# schema-valid Perfetto trace (per-lane pipeline tracks included).
pipeline-smoke:
	$(PYTHON) -m repro perf run --smoke \
	  --out generated/BENCH_pipeline.json
	$(PYTHON) tools/check_pipeline.py generated/BENCH_pipeline.json \
	  --baseline benchmarks/baselines/BENCH_perf_smoke.json \
	  --min-speedup 1.5
	$(PYTHON) -m repro perf run --smoke --workers 2 \
	  --out generated/BENCH_pipeline_w2.json
	$(PYTHON) tools/report_determinism.py \
	  generated/BENCH_pipeline.json generated/BENCH_pipeline_w2.json
	$(PYTHON) -m repro simulate --scheme ns --levels 10 --requests 500 \
	  --warmup 100 --pipeline-depth 4 \
	  --trace-out generated/trace_pipeline.json
	$(PYTHON) tools/check_trace.py generated/trace_pipeline.json \
	  --require-kinds readPath evictPath earlyReshuffle
	$(PYTHON) tools/telemetry_overhead.py --max-overhead-pct 10 \
	  --pipeline-depth 4

# CI robustness smoke: fault-injection campaign; fails unless every
# tampering fault (bit flip, replay) was detected. Fully deterministic.
faults-smoke:
	$(PYTHON) -m repro faults run --smoke \
	  --out generated/BENCH_faults.json --require-detection

# CI telemetry smoke: trace an L12 AB cell, validate the Chrome trace
# against the schema checker, and bound the telemetry overhead.
telemetry-smoke:
	$(PYTHON) -m repro simulate --scheme ab --levels 12 --requests 600 \
	  --warmup 0 --trace-out generated/BENCH_trace.json
	$(PYTHON) tools/check_trace.py generated/BENCH_trace.json \
	  --require-kinds readPath evictPath earlyReshuffle
	$(PYTHON) tools/telemetry_overhead.py --max-overhead-pct 10

# CI serving smoke: open-loop workloads through the batching scheduler;
# fails unless batch scheduling beats naive FIFO on oblivious accesses.
# Also writes a per-request Perfetto trace and validates it, then
# soft-compares latency percentiles against the committed baseline.
serve-smoke:
	$(PYTHON) -m repro serve bench --smoke \
	  --out generated/BENCH_serve.json \
	  --trace-out generated/trace_serve.json --require-dedup-win
	$(PYTHON) tools/check_trace.py generated/trace_serve.json \
	  --require-kinds readPath evictPath queue get --min-spans 500
	$(PYTHON) -m repro serve compare \
	  benchmarks/baselines/BENCH_serve_smoke.json \
	  generated/BENCH_serve.json --warn-only

# CI chaos smoke: fault injection under live serving load through the
# resilient loop. Fails unless availability floors hold and every
# tampering fault (bit flip, replay) was detected *while serving*.
# Runs twice -- serial and over two spawn workers -- and requires the
# deterministic report view byte-identical across the two, then
# soft-compares availability/p99-under-fault against the committed
# baseline. The traced cell's timeline (degraded windows, fault
# markers) is schema-checked like the other Perfetto artifacts.
chaos-smoke:
	$(PYTHON) -m repro serve chaos --smoke \
	  --out generated/BENCH_chaos.json \
	  --trace-out generated/trace_chaos.json --require-detection
	$(PYTHON) tools/check_trace.py generated/trace_chaos.json \
	  --require-kinds readPath queue get degraded_enter faults \
	  --min-spans 200
	$(PYTHON) -m repro serve chaos --smoke --workers 2 \
	  --out generated/BENCH_chaos_w2.json --require-detection
	$(PYTHON) tools/report_determinism.py \
	  generated/BENCH_chaos.json generated/BENCH_chaos_w2.json
	$(PYTHON) -m repro serve compare \
	  benchmarks/baselines/BENCH_chaos_smoke.json \
	  generated/BENCH_chaos.json --warn-only

# CI shard smoke: the sharded fleet's capacity curve. Hard gates: the
# shards=4 fleet must clear 3x the single-shard served throughput, and
# the kill-a-shard drill must stay above its availability floor with
# 100% tamper detection and an all-healthy control plane. Runs twice
# -- serial and with one spawn worker per shard -- and requires the
# deterministic report view byte-identical across the two, then
# soft-compares against the committed baseline curve.
shard-smoke:
	$(PYTHON) -m repro serve scaling --smoke \
	  --out generated/BENCH_scaling.json --require-speedup 3.0
	$(PYTHON) -m repro serve scaling --smoke --workers 2 \
	  --out generated/BENCH_scaling_w2.json
	$(PYTHON) tools/report_determinism.py \
	  generated/BENCH_scaling.json generated/BENCH_scaling_w2.json
	$(PYTHON) -m repro serve compare \
	  benchmarks/baselines/BENCH_scaling_smoke.json \
	  generated/BENCH_scaling.json --warn-only

# CI observability smoke: the chaos campaign as a 4-shard fleet with
# the full observability plane on -- one merged Perfetto trace
# (per-shard process tracks, router flow events, control/SLO
# timelines), the streaming SLO JSONL and the ops stream the console
# replays. Gates: the merged trace must pass the flow/process schema
# checks; a --workers 2 rerun must reproduce the deterministic report
# view AND the trace file byte-for-byte; the recorded ops stream must
# replay through `serve top`; and the observability plane must cost
# <= 10% wall time on the serving loop.
obs-smoke:
	$(PYTHON) -m repro serve chaos --smoke --shards 4 \
	  --out generated/BENCH_chaos_fleet.json \
	  --trace-out generated/trace_fleet.json \
	  --slo-out generated/slo_fleet.jsonl \
	  --ops-out generated/ops_fleet.jsonl --require-detection
	$(PYTHON) tools/check_trace.py generated/trace_fleet.json \
	  --require-kinds route readPath queue get --min-spans 500 \
	  --require-flows 200 \
	  --require-process fleet-router shard-0 shard-1 shard-2 shard-3
	$(PYTHON) -m repro serve chaos --smoke --shards 4 --workers 2 \
	  --out generated/BENCH_chaos_fleet_w2.json \
	  --trace-out generated/trace_fleet_w2.json
	$(PYTHON) tools/report_determinism.py \
	  generated/BENCH_chaos_fleet.json generated/BENCH_chaos_fleet_w2.json
	cmp generated/trace_fleet.json generated/trace_fleet_w2.json
	$(PYTHON) -m repro serve top --replay generated/ops_fleet.jsonl \
	  --frames 3 --no-clear
	$(PYTHON) tools/telemetry_overhead.py --serve --max-overhead-pct 10

# Mirror of the CI pipeline: lint, tier-1 tests, perf/pipeline/faults/
# telemetry/serve/chaos/shard/observability smoke.
ci: lint test perf-smoke pipeline-smoke faults-smoke telemetry-smoke \
	serve-smoke chaos-smoke shard-smoke obs-smoke

# Removes only regenerated artifacts. Committed reference outputs
# (benchmarks/out/, benchmarks/baselines/, BENCH_perf.json) survive.
clean:
	rm -rf benchmarks/generated generated .pytest_cache .ruff_cache
	rm -f BENCH_perf_new.json BENCH_faults.json test_output.txt \
	  bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
