# Convenience targets for the AB-ORAM reproduction.

PYTEST ?= python -m pytest

.PHONY: install test bench bench-full figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	$(PYTEST) tests/

test-output:
	$(PYTEST) tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTEST) benchmarks/ --benchmark-only

bench-output:
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Full-scale sweep (slow): all 17 SPEC benchmarks at a deeper tree.
bench-full:
	REPRO_BENCH_SUITE=all REPRO_BENCH_LEVELS=16 REPRO_BENCH_REQUESTS=2500 \
	  $(PYTEST) benchmarks/ --benchmark-only

figures:
	python -m repro space
	python -m repro sweep --schemes baseline dr ns ab

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
