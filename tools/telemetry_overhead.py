#!/usr/bin/env python
"""Measure telemetry overhead and gate it (the perf-smoke bound).

Runs the same small simulation twice -- telemetry off, then telemetry
on (span tracing plus periodic snapshots, outputs kept in memory so
file I/O does not pollute the measurement) -- taking the best of N
repeats of each, and fails when the telemetry-on wall time exceeds the
off run by more than ``--max-overhead-pct`` (default 10%).

Best-of-N on an otherwise idle runner keeps the measurement stable: the
minimum is the least-noisy estimator of the true cost, and both
configurations run interleaved so frequency drift hits them equally.

``--serve`` adds a second measurement over the resilient serving loop:
the same seeded workload served twice, once bare and once with the
fleet observability plane attached (per-window ops sampling plus the
streaming SLO fold over the completions) -- the bound the obs-smoke CI
job enforces, because samplers that only *read* must also only barely
*cost*.

Usage: ``PYTHONPATH=src python tools/telemetry_overhead.py
[--levels 10] [--requests 600] [--repeats 3] [--max-overhead-pct 10]
[--serve]``
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence


def _run_serve_once(levels: int, requests: int, seed: int,
                    telemetry: bool) -> float:
    from repro.serve.loadgen import (
        WorkloadConfig, generate_requests, initial_items,
    )
    from repro.serve.resilience import ResilienceConfig, resilient_replay
    from repro.serve.scheduler import BatchScheduler
    from repro.serve.stack import build_stack
    from repro.telemetry import (
        OpsSampler, SloEngine, default_slo_rules, fold_completions,
    )

    wl = WorkloadConfig(
        name="overhead", n_requests=requests, n_keys=4_000,
        stored_keys=64, arrival="poisson", rate_rps=1_000_000.0,
        zipf_s=0.9, read_fraction=0.8, delete_fraction=0.02,
        value_bytes=40, expect_dedup=False, seed=seed,
    )
    stack = build_stack(scheme="ab", levels=levels, seed=seed,
                        observer=True)
    for key, value in initial_items(wl):
        stack.kv.put(key, value)
    reqs = list(generate_requests(wl))
    scheduler = BatchScheduler(stack.kv, policy="batch", seed=seed,
                               clock=lambda: stack.dram_sink.now)
    sampler = (
        OpsSampler("overhead", 0, 50_000.0, stack) if telemetry else None
    )
    t0 = time.perf_counter()
    result = resilient_replay(
        stack, reqs, scheduler, ResilienceConfig(), sampler=sampler,
    )
    if telemetry:
        engine = SloEngine(default_slo_rules(), window_ns=50_000.0)
        fold_completions(engine, result.completions)
        engine.finish(result.end_ns)
    wall = time.perf_counter() - t0
    if telemetry and not sampler.records:
        raise SystemExit("observability run recorded no ops snapshots")
    assert result.completions
    return wall


def _run_once(levels: int, requests: int, seed: int, telemetry: bool,
              pipeline_depth: int = 1) -> float:
    from repro.core import schemes as schemes_mod
    from repro.sim.engine import SimConfig, Simulation
    from repro.sim.runner import make_trace
    from repro.telemetry import Telemetry

    scheme = "ns" if pipeline_depth > 1 else "ab"
    cfg = schemes_mod.by_name(scheme, levels)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, requests, seed=seed)
    handle = Telemetry(metrics_every=100) if telemetry else None
    t0 = time.perf_counter()
    sim = Simulation(
        cfg, trace, SimConfig(seed=seed, pipeline_depth=pipeline_depth),
        telemetry=handle,
    )
    result = sim.run()
    wall = time.perf_counter() - t0
    if handle is not None:
        handle.close()
        if not handle.spans:
            raise SystemExit("telemetry run recorded no spans")
    assert result.exec_ns > 0
    return wall


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--levels", type=int, default=10)
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall time is the best of N runs (default: 3)")
    parser.add_argument("--max-overhead-pct", type=float, default=10.0,
                        help="fail when telemetry-on exceeds telemetry-off "
                             "by more than this (default: 10%%)")
    parser.add_argument("--pipeline-depth", type=int, default=1,
                        help="also measure the overhead on the pipelined "
                             "controller at this depth (the ns scheme, "
                             "whose reshuffle drain the pipeline overlaps); "
                             "1 = serial only (default)")
    parser.add_argument("--serve", action="store_true",
                        help="also measure the fleet observability plane "
                             "(ops sampling + streaming SLO fold) over the "
                             "resilient serving loop")
    args = parser.parse_args(argv)

    configs = [("serial", 1)]
    if args.pipeline_depth > 1:
        configs.append((f"pipelined(d={args.pipeline_depth})",
                        args.pipeline_depth))
    if args.serve:
        configs.append(("serve-observability", 0))
    failed = False
    for label, depth in configs:
        if depth == 0:
            def measure(telemetry: bool) -> float:
                return _run_serve_once(args.levels, args.requests,
                                       args.seed, telemetry)
        else:
            def measure(telemetry: bool, _depth: int = depth) -> float:
                return _run_once(args.levels, args.requests, args.seed,
                                 telemetry, pipeline_depth=_depth)
        # One throwaway run to warm imports, trace caches and the
        # allocator before anything is timed.
        measure(False)
        best_off = best_on = float("inf")
        for _ in range(max(1, args.repeats)):
            best_off = min(best_off, measure(False))
            best_on = min(best_on, measure(True))
        overhead_pct = 100.0 * (best_on - best_off) / best_off
        print(f"[{label}] telemetry off: {best_off * 1e3:.1f} ms   "
              f"on: {best_on * 1e3:.1f} ms   "
              f"overhead: {overhead_pct:+.2f}% "
              f"(bound: {args.max_overhead_pct:.1f}%)")
        if overhead_pct > args.max_overhead_pct:
            print(f"FAIL: [{label}] telemetry overhead {overhead_pct:.2f}% "
                  f"exceeds {args.max_overhead_pct:.1f}%", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("telemetry overhead within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
