#!/usr/bin/env python
"""Gate the pipelined perf cell: speedup, logical identity, bit-identity.

Reads one ``BENCH_perf.json`` report containing a pipelined cell and
its serial twin (e.g. ``ns/mcf@p4`` next to ``ns/mcf``) and enforces
the three promises the transaction pipeline makes:

1. **Speedup** -- the pipelined cell's simulated DRAM-ns (``exec_ns``)
   must beat the serial twin by at least ``--min-speedup`` (default
   1.5x, the tracked perf gate).
2. **Logical identity** -- every non-timing field of the two ``sim``
   blocks must match exactly: the pipeline overlaps *when* the DRAM
   traffic happens, never *what* the protocol does. Timing-derived
   fields (``exec_ns``, ``ns_per_access``, ``row_hit_rate``) are
   expected to differ and excluded.
3. **Depth-1 bit-identity** (with ``--baseline``) -- the report's
   serial cells must match the committed baseline's ``sim`` blocks
   byte for byte: adding the pipeline must not perturb the serial
   controller at all.

Usage: ``PYTHONPATH=src python tools/check_pipeline.py BENCH_perf.json
[--baseline benchmarks/baselines/BENCH_perf_smoke.json]
[--min-speedup 1.5] [--min-speedup-for ns/mcf@p4=1.40]``

``--min-speedup-for KEY=RATIO`` (repeatable) overrides the default
floor for one cell: overlap headroom depends on tree depth, so e.g.
the L12 nightly run gates ``ns/mcf@p4`` at its calibrated 1.40x while
every other cell keeps the strict default.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Sequence

#: ``sim`` fields the pipeline changes by design (when DRAM traffic
#: lands on the clock); everything else must be depth-invariant.
TIMING_FIELDS = frozenset(("exec_ns", "ns_per_access", "row_hit_rate"))


def _load(path: str) -> Dict[str, Any]:
    with open(path) as f:
        doc = json.load(f)
    from repro.perf.schema import validate_report
    problems = validate_report(doc)
    if problems:
        raise SystemExit(
            f"{path}: invalid perf report:\n  " + "\n  ".join(problems)
        )
    return doc


def _cells_by_key(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    from repro.perf.schema import cell_key
    out = {}
    for cell in doc["cells"]:
        if "error" in cell:
            raise SystemExit(
                f"cell {cell['scheme']}/{cell['trace']} errored:\n"
                f"{cell['error']}"
            )
        out[cell_key(cell)] = cell
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="BENCH_perf.json with pipelined cells")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline report; serial cells must "
                             "match its sim blocks byte for byte")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required serial/pipelined exec_ns ratio "
                             "(default: 1.5)")
    parser.add_argument("--min-speedup-for", action="append", default=[],
                        metavar="KEY=RATIO",
                        help="per-cell override of --min-speedup, e.g. "
                             "ns/mcf@p4=1.40 (repeatable; keys are "
                             "report cell keys). Lets deeper-tree runs "
                             "keep a calibrated floor per cell while "
                             "the default gate stays strict.")
    args = parser.parse_args(argv)

    per_cell = {}
    for spec in args.min_speedup_for:
        key, sep, ratio = spec.rpartition("=")
        try:
            if not sep:
                raise ValueError
            per_cell[key] = float(ratio)
        except ValueError:
            raise SystemExit(
                f"--min-speedup-for expects KEY=RATIO, got {spec!r}"
            )

    doc = _load(args.report)
    cells = _cells_by_key(doc)
    pipelined = {k: c for k, c in cells.items()
                 if c.get("pipeline_depth", 1) > 1}
    if not pipelined:
        print(f"{args.report}: no pipelined (@pN) cells", file=sys.stderr)
        return 2

    failures = []
    for key, cell in sorted(pipelined.items()):
        serial_key = f"{cell['scheme']}/{cell['trace']}"
        twin = cells.get(serial_key)
        if twin is None:
            failures.append(f"{key}: serial twin {serial_key} not in report")
            continue
        # 1. speedup on simulated DRAM-ns
        serial_ns = twin["sim"]["exec_ns"]
        pipe_ns = cell["sim"]["exec_ns"]
        speedup = serial_ns / pipe_ns if pipe_ns > 0 else 0.0
        floor = per_cell.get(key, args.min_speedup)
        ok = speedup >= floor
        print(f"{key}: exec_ns {serial_ns:.1f} -> {pipe_ns:.1f}  "
              f"speedup {speedup:.3f}x  "
              f"(gate: >= {floor:.2f}x)  "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{key}: speedup {speedup:.3f}x below {floor}x"
            )
        # 2. logical identity vs the serial twin
        for field in sorted(set(twin["sim"]) | set(cell["sim"])):
            if field in TIMING_FIELDS:
                continue
            if twin["sim"].get(field) != cell["sim"].get(field):
                failures.append(
                    f"{key}: logical field {field!r} diverged from serial "
                    f"twin: {twin['sim'].get(field)!r} vs "
                    f"{cell['sim'].get(field)!r}"
                )
        if not any(f.startswith(f"{key}: logical") for f in failures):
            print(f"{key}: logical sim fields identical to {serial_key}")

    # 3. depth-1 bit-identity vs the committed baseline
    if args.baseline:
        base = _cells_by_key(_load(args.baseline))
        checked = 0
        for key, cell in sorted(cells.items()):
            if cell.get("pipeline_depth", 1) > 1 or key not in base:
                continue
            checked += 1
            want = json.dumps(base[key]["sim"], sort_keys=True)
            got = json.dumps(cell["sim"], sort_keys=True)
            if want != got:
                failures.append(
                    f"{key}: serial sim block diverged from baseline "
                    f"{args.baseline}"
                )
        if checked == 0:
            failures.append(
                f"no serial cells shared with baseline {args.baseline}"
            )
        else:
            print(f"serial cells bit-identical to baseline: "
                  f"{checked} checked")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("pipeline gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
