#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file written by ``--trace-out``.

A schema checker for the telemetry smoke gate: loads the trace, checks
the document shape (``traceEvents`` array, ``displayTimeUnit``), checks
every event against the trace-event format rules the exporters promise
(complete "X" events with numeric non-negative ``ts``/``dur``, matching
``args.start_ns``/``args.dur_ns``; thread-scoped "i" instants for the
resilience timeline and SLO alert markers; "s"/"f" flow-event pairs
stitching router decisions to shard-side service spans), and optionally
requires specific operation kinds (``--require-kinds readPath``),
matched flow bindings (``--require-flows N``) or named process tracks
(``--require-process fleet-router shard-0``) to be present.

Flow rules for merged fleet traces: every flow event needs a ``name``,
``cat``, ``id`` and a non-negative numeric ``ts``; a finish ("f") must
reference a ``(cat, id)`` some start ("s") opened, and every pid that
carries X/i events must be named by a ``process_name`` metadata event.

Dependency-free by design so it runs in any environment CI does; also
importable (``validate_trace``) from the test suite.

Usage: ``python tools/check_trace.py TRACE.json
[--require-kinds KIND ...] [--min-spans N] [--require-flows N]
[--require-process NAME ...]`` -- exits non-zero with one line per
finding when the trace is invalid.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Sequence

#: Fields every complete ("X") span event must carry.
_SPAN_FIELDS = ("name", "ph", "pid", "tid", "ts", "dur")

#: Fields every flow ("s"/"f") event must carry.
_FLOW_FIELDS = ("name", "cat", "id", "pid", "tid", "ts")


def _check_span(event: Dict[str, Any], where: str, errors: List[str]) -> None:
    for field in _SPAN_FIELDS:
        if field not in event:
            errors.append(f"{where}: missing field {field!r}")
            return
    for field in ("ts", "dur"):
        value = event[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: {field} must be a number, "
                          f"got {type(value).__name__}")
            return
        if value < 0:
            errors.append(f"{where}: {field} is negative ({value})")
    args = event.get("args")
    if not isinstance(args, dict):
        errors.append(f"{where}: span events must carry an args dict")
        return
    for ns_key, us_key in (("start_ns", "ts"), ("dur_ns", "dur")):
        if ns_key not in args:
            errors.append(f"{where}: args missing {ns_key!r}")
            continue
        expect = args[ns_key] / 1000.0
        if abs(event[us_key] - expect) > 1e-6:
            errors.append(
                f"{where}: {us_key}={event[us_key]} does not match "
                f"args.{ns_key}={args[ns_key]} (expected {expect})"
            )


def _check_flow(event: Dict[str, Any], where: str, errors: List[str]) -> None:
    for field in _FLOW_FIELDS:
        if field not in event:
            errors.append(f"{where}: flow event missing field {field!r}")
            return
    ts = event["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: flow ts must be a non-negative number, "
                      f"got {ts!r}")
    if event["ph"] == "f" and event.get("bp") not in (None, "e"):
        errors.append(f"{where}: flow finish binding point must be 'e' "
                      f"when present, got {event.get('bp')!r}")


def validate_trace(
    doc: Any,
    require_kinds: Sequence[str] = (),
    min_spans: int = 1,
    require_flows: int = 0,
    require_process: Sequence[str] = (),
) -> List[str]:
    """All findings for one parsed trace document; empty means valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append(
            f"displayTimeUnit must be 'ms' or 'ns', "
            f"got {doc.get('displayTimeUnit')!r}"
        )
    spans = 0
    kinds = set()
    process_names: Dict[Any, str] = {}
    event_pids = set()
    flow_starts = set()
    flow_finishes: List[tuple] = []
    matched_flows = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        ph = event.get("ph")
        if ph == "M":                      # metadata events: name + args
            if "name" not in event:
                errors.append(f"{where}: metadata event without a name")
            elif event["name"] == "process_name":
                label = event.get("args", {}).get("name")
                if not label:
                    errors.append(f"{where}: process_name metadata "
                                  "without args.name")
                else:
                    process_names[event.get("pid")] = label
            continue
        if ph == "i":          # instant markers (resilience, SLO alerts)
            if "name" not in event:
                errors.append(f"{where}: instant event without a name")
            elif event.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: instant scope must be t/p/g, "
                              f"got {event.get('s')!r}")
            else:
                ts = event.get("ts")
                if (not isinstance(ts, (int, float))
                        or isinstance(ts, bool) or ts < 0):
                    errors.append(f"{where}: instant ts must be a "
                                  f"non-negative number, got {ts!r}")
                kinds.add(event.get("name"))
                event_pids.add(event.get("pid"))
            continue
        if ph in ("s", "f"):              # flow bindings (fleet traces)
            _check_flow(event, where, errors)
            key = (event.get("cat"), event.get("id"))
            if ph == "s":
                flow_starts.add(key)
            else:
                flow_finishes.append((where, key))
            continue
        if ph != "X":
            errors.append(f"{where}: unexpected phase {ph!r} "
                          "(exporter emits only X, i, M, s and f events)")
            continue
        spans += 1
        kinds.add(event.get("name"))
        event_pids.add(event.get("pid"))
        _check_span(event, where, errors)
    for where, key in flow_finishes:
        if key in flow_starts:
            matched_flows += 1
        else:
            errors.append(f"{where}: flow finish {key!r} has no matching "
                          "flow start")
    if spans < min_spans:
        errors.append(f"expected at least {min_spans} span events, "
                      f"found {spans}")
    for kind in require_kinds:
        if kind not in kinds:
            errors.append(f"required operation kind {kind!r} has no spans "
                          f"(present: {sorted(k for k in kinds if k)})")
    if matched_flows < require_flows:
        errors.append(f"expected at least {require_flows} matched flow "
                      f"pairs, found {matched_flows}")
    if flow_starts or require_process:
        # A trace with flows (or an explicit ask) is a fleet trace:
        # every process that carries events must be named.
        for pid in sorted(event_pids, key=repr):
            if pid not in process_names:
                errors.append(f"pid {pid!r} carries events but has no "
                              "process_name metadata")
    for name in require_process:
        if name not in process_names.values():
            errors.append(f"required process track {name!r} missing "
                          f"(present: {sorted(process_names.values())})")
    return errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-kinds", nargs="+", default=(),
                        metavar="KIND",
                        help="operation kinds that must have spans "
                             "(e.g. readPath evictPath earlyReshuffle)")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="minimum number of span events (default: 1)")
    parser.add_argument("--require-flows", type=int, default=0, metavar="N",
                        help="minimum number of matched s/f flow pairs "
                             "(fleet traces; default: 0)")
    parser.add_argument("--require-process", nargs="+", default=(),
                        metavar="NAME",
                        help="process tracks that must be named by "
                             "process_name metadata (e.g. fleet-router "
                             "shard-0)")
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 2
    errors = validate_trace(doc, require_kinds=args.require_kinds,
                            min_spans=args.min_spans,
                            require_flows=args.require_flows,
                            require_process=args.require_process)
    for error in errors:
        print(f"{args.trace}: {error}", file=sys.stderr)
    if errors:
        return 1
    spans = sum(1 for e in doc["traceEvents"]
                if isinstance(e, dict) and e.get("ph") == "X")
    flows = sum(1 for e in doc["traceEvents"]
                if isinstance(e, dict) and e.get("ph") == "s")
    extra = f", {flows} flows" if flows else ""
    print(f"{args.trace}: valid trace ({spans} spans{extra})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
