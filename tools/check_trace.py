#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file written by ``--trace-out``.

A schema checker for the telemetry smoke gate: loads the trace, checks
the document shape (``traceEvents`` array, ``displayTimeUnit``), checks
every event against the trace-event format rules the exporters promise
(complete "X" events with numeric non-negative ``ts``/``dur``, matching
``args.start_ns``/``args.dur_ns``; thread-scoped "i" instants for the
resilience timeline markers), and optionally requires specific
operation kinds to be present (``--require-kinds readPath evictPath``).

Dependency-free by design so it runs in any environment CI does; also
importable (``validate_trace``) from the test suite.

Usage: ``python tools/check_trace.py TRACE.json
[--require-kinds KIND ...] [--min-spans N]`` -- exits non-zero with one
line per finding when the trace is invalid.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Sequence

#: Fields every complete ("X") span event must carry.
_SPAN_FIELDS = ("name", "ph", "pid", "tid", "ts", "dur")


def _check_span(event: Dict[str, Any], where: str, errors: List[str]) -> None:
    for field in _SPAN_FIELDS:
        if field not in event:
            errors.append(f"{where}: missing field {field!r}")
            return
    for field in ("ts", "dur"):
        value = event[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: {field} must be a number, "
                          f"got {type(value).__name__}")
            return
        if value < 0:
            errors.append(f"{where}: {field} is negative ({value})")
    args = event.get("args")
    if not isinstance(args, dict):
        errors.append(f"{where}: span events must carry an args dict")
        return
    for ns_key, us_key in (("start_ns", "ts"), ("dur_ns", "dur")):
        if ns_key not in args:
            errors.append(f"{where}: args missing {ns_key!r}")
            continue
        expect = args[ns_key] / 1000.0
        if abs(event[us_key] - expect) > 1e-6:
            errors.append(
                f"{where}: {us_key}={event[us_key]} does not match "
                f"args.{ns_key}={args[ns_key]} (expected {expect})"
            )


def validate_trace(
    doc: Any,
    require_kinds: Sequence[str] = (),
    min_spans: int = 1,
) -> List[str]:
    """All findings for one parsed trace document; empty means valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append(
            f"displayTimeUnit must be 'ms' or 'ns', "
            f"got {doc.get('displayTimeUnit')!r}"
        )
    spans = 0
    kinds = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        ph = event.get("ph")
        if ph == "M":                      # metadata events: name + args
            if "name" not in event:
                errors.append(f"{where}: metadata event without a name")
            continue
        if ph == "i":                     # instant markers (resilience)
            if "name" not in event:
                errors.append(f"{where}: instant event without a name")
            elif event.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: instant scope must be t/p/g, "
                              f"got {event.get('s')!r}")
            else:
                ts = event.get("ts")
                if (not isinstance(ts, (int, float))
                        or isinstance(ts, bool) or ts < 0):
                    errors.append(f"{where}: instant ts must be a "
                                  f"non-negative number, got {ts!r}")
                kinds.add(event.get("name"))
            continue
        if ph != "X":
            errors.append(f"{where}: unexpected phase {ph!r} "
                          "(exporter emits only X, i and M events)")
            continue
        spans += 1
        kinds.add(event.get("name"))
        _check_span(event, where, errors)
    if spans < min_spans:
        errors.append(f"expected at least {min_spans} span events, "
                      f"found {spans}")
    for kind in require_kinds:
        if kind not in kinds:
            errors.append(f"required operation kind {kind!r} has no spans "
                          f"(present: {sorted(k for k in kinds if k)})")
    return errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-kinds", nargs="+", default=(),
                        metavar="KIND",
                        help="operation kinds that must have spans "
                             "(e.g. readPath evictPath earlyReshuffle)")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="minimum number of span events (default: 1)")
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 2
    errors = validate_trace(doc, require_kinds=args.require_kinds,
                            min_spans=args.min_spans)
    for error in errors:
        print(f"{args.trace}: {error}", file=sys.stderr)
    if errors:
        return 1
    spans = sum(1 for e in doc["traceEvents"]
                if isinstance(e, dict) and e.get("ph") == "X")
    print(f"{args.trace}: valid trace ({spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
