#!/usr/bin/env python
"""Dependency-free fallback linter for `make lint`.

CI runs ruff (``ruff check`` with the E4/E7/E9/F/W rule families --
see ``[tool.ruff]`` in pyproject.toml); this script approximates the
same checks with only the standard library so a bare environment can
still gate commits:

- E9:   syntax errors (the file must compile);
- F401: imported name never used (module scope; ``__init__.py`` and
        ``__all__`` re-exports are honoured);
- F821-lite: obviously undefined names is left to the test suite;
- F841: local variable assigned once and never read (plain
        assignments of non-underscore names only);
- E711/E712: comparisons to None/True/False with ``==``/``!=``;
- E722: bare ``except:``;
- E741: ambiguous single-letter bindings ``l``, ``O``, ``I``;
- W191/W291/W293: tab indentation and trailing whitespace;
- W292: missing final newline.

Usage: ``python tools/lint.py PATH [PATH ...]`` -- exits non-zero when
any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Set

AMBIGUOUS = {"l", "O", "I"}


def iter_py_files(paths: List[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            yield from sorted(p.rglob("*.py"))


def _loaded_names(tree: ast.AST) -> Set[str]:
    """Every identifier read anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "a.b.c" reads "a"; the Name node below covers it, but
            # string annotations don't parse to Name nodes -- handled
            # via the literal scan below.
            pass
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Covers __all__ entries and string annotations.
            names.add(node.value)
            for part in node.value.replace("[", " ").replace("]", " ").split():
                names.add(part.split(".")[0].strip("'\""))
    return names


def check_unused_imports(
    path: Path, tree: ast.AST, findings: List[str]
) -> None:
    if path.name == "__init__.py":
        return  # re-export modules: imports are the API
    used = _loaded_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound not in used:
                    findings.append(
                        f"{path}:{node.lineno}: F401 `{alias.name}` "
                        f"imported but unused"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if bound not in used:
                    findings.append(
                        f"{path}:{node.lineno}: F401 `{alias.name}` "
                        f"imported but unused"
                    )


def check_unused_locals(path: Path, tree: ast.AST, findings: List[str]) -> None:
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        loaded: Set[str] = set()
        stored: dict = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                loaded.update(node.names)
            elif isinstance(node, ast.Assign):
                # Match pyflakes/ruff: only plain single-name targets
                # count (tuple unpacking and loop/with bindings don't).
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    stored.setdefault(node.targets[0].id, node.lineno)
        for name, lineno in stored.items():
            if name.startswith("_"):
                continue
            if name not in loaded:
                findings.append(
                    f"{path}:{lineno}: F841 local variable `{name}` "
                    f"assigned but never used"
                )


def check_ast_style(path: Path, tree: ast.AST, findings: List[str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(f"{path}:{node.lineno}: E722 bare `except:`")
        elif isinstance(node, ast.Compare):
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(right, ast.Constant) and (
                    right.value is None
                    or right.value is True
                    or right.value is False
                ):
                    code = "E711" if right.value is None else "E712"
                    findings.append(
                        f"{path}:{node.lineno}: {code} comparison to "
                        f"{right.value!r} with ==/!="
                    )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in AMBIGUOUS:
                findings.append(
                    f"{path}:{node.lineno}: E741 ambiguous variable "
                    f"name `{node.id}`"
                )
        elif isinstance(node, ast.arg) and node.arg in AMBIGUOUS:
            findings.append(
                f"{path}:{node.lineno}: E741 ambiguous argument "
                f"name `{node.arg}`"
            )


def check_whitespace(path: Path, text: str, findings: List[str]) -> None:
    lines = text.split("\n")
    for i, line in enumerate(lines, 1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            code = "W293" if not stripped.strip() else "W291"
            findings.append(f"{path}:{i}: {code} trailing whitespace")
        indent = stripped[: len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            findings.append(f"{path}:{i}: W191 tab in indentation")
    if text and not text.endswith("\n"):
        findings.append(f"{path}:{len(lines)}: W292 no newline at end of file")


def lint_file(path: Path) -> List[str]:
    findings: List[str] = []
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}"]
    check_unused_imports(path, tree, findings)
    check_unused_locals(path, tree, findings)
    check_ast_style(path, tree, findings)
    check_whitespace(path, text, findings)
    return findings


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "benchmarks", "examples", "tools"]
    findings: List[str] = []
    n_files = 0
    for path in iter_py_files(paths):
        n_files += 1
        findings.extend(lint_file(path))
    for f in findings:
        print(f)
    print(f"lint: {n_files} files checked, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
