#!/usr/bin/env python
"""Require two benchmark reports to have identical deterministic views.

The serve/chaos harnesses promise their ``sim`` blocks are pure
functions of the config -- byte-identical across repeat runs and any
``--workers`` width. CI enforces that promise by running a harness
twice (e.g. serial and ``--workers 2``) and feeding both artifacts to
this checker, which strips the host-dependent fields and compares the
canonical JSON encodings byte for byte. Dispatch is by the report's
``kind``: serve, chaos and scaling reports
(``repro-serve-report`` / ``repro-chaos-report`` /
``repro-scaling-report`` -- the last is the fleet capacity curve,
whose per-shard ``sim`` blocks must agree byte-for-byte between a
serial run and a ``--workers N`` fleet) reduce via
:func:`repro.serve.schema.deterministic_view`; perf-matrix reports
(``"kind": "repro-perf-report"``, including their pipelined ``@pN``
and sharded ``@sN`` cells) via
:func:`repro.perf.schema.deterministic_view`. An unrecognized kind is
an error, not a silent pass.

Usage: ``python tools/report_determinism.py A.json B.json`` -- exits
non-zero with the first differing path when the reports diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence


def _first_divergence(a: Any, b: Any, path: str = "$") -> str:
    """A human-pointable path to the first structural difference."""
    if type(a) is not type(b):
        return f"{path}: {type(a).__name__} vs {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: present in only one report"
            if a[key] != b[key]:
                return _first_divergence(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_divergence(x, y, f"{path}[{i}]")
    return f"{path}: {a!r} != {b!r}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs=2, metavar="REPORT",
                        help="two report JSON files to compare")
    args = parser.parse_args(argv)
    docs = []
    for path in args.reports:
        try:
            with open(path) as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
    a, b = docs
    from repro.perf.schema import REPORT_KIND as PERF_KIND
    from repro.serve.schema import (
        CHAOS_REPORT_KIND, REPORT_KIND as SERVE_KIND, SCALING_REPORT_KIND,
    )
    if a.get("kind") != b.get("kind"):
        print(f"report kinds differ: {a.get('kind')!r} vs {b.get('kind')!r}",
              file=sys.stderr)
        return 1
    kind = a.get("kind")
    if kind == PERF_KIND:
        from repro.perf.schema import deterministic_bytes, deterministic_view
    elif kind in (SERVE_KIND, CHAOS_REPORT_KIND, SCALING_REPORT_KIND):
        from repro.serve.schema import deterministic_bytes, deterministic_view
    else:
        print(f"unrecognized report kind {kind!r}; cannot reduce to a "
              f"deterministic view", file=sys.stderr)
        return 2
    if deterministic_bytes(a) == deterministic_bytes(b):
        print(f"deterministic views identical: {args.reports[0]} == "
              f"{args.reports[1]}")
        return 0
    where = _first_divergence(deterministic_view(a), deterministic_view(b))
    print(f"deterministic views differ at {where}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
