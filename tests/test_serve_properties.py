"""Property tests for the batching scheduler (hypothesis).

Two invariants carry the serving subsystem's correctness story:

1. **Submission-order independence**: serving a shuffled batch issues
   the identical ORAM access sequence (and returns identical values)
   as serving the same batch sorted by arrival -- the scheduler's
   reordering is a pure function of batch *contents*.
2. **Per-key FIFO**: against a plain-dict reference model replaying
   operations in arrival order, every get returns exactly the
   reference value and the final store state matches, no matter how
   operations interleave across keys or how batches are cut.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import GET, PUT, DELETE, BatchScheduler, Request, build_stack

KEYS = [b"k%d" % i for i in range(6)]

ops = st.one_of(
    st.tuples(st.just(GET), st.sampled_from(KEYS), st.none()),
    st.tuples(st.just(PUT), st.sampled_from(KEYS),
              st.binary(min_size=1, max_size=90)),
    st.tuples(st.just(DELETE), st.sampled_from(KEYS), st.none()),
)

batches = st.lists(ops, min_size=1, max_size=14)


def make_requests(raw):
    return [
        Request(rid=i, op=op, key=key, value=value, arrival_ns=float(i))
        for i, (op, key, value) in enumerate(raw)
    ]


def fresh_scheduler(seed=0):
    stack = build_stack(levels=8, seed=0, observer=False)
    # A few keys pre-exist so gets/deletes hit populated state too.
    stack.kv.preload([(KEYS[0], b"seed0"), (KEYS[1], b"seed1")])
    return stack, BatchScheduler(stack.kv, policy="batch", seed=seed)


settings_kw = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSubmissionOrderIndependence:
    @given(raw=batches, data=st.data())
    @settings(**settings_kw)
    def test_shuffled_batch_serves_identically(self, raw, data):
        reqs = make_requests(raw)
        perm = data.draw(st.permutations(reqs))

        outcomes = []
        for batch in (reqs, perm):
            stack, sched = fresh_scheduler()
            comps = sched.serve_batch(list(batch))
            outcomes.append({
                "served_keys": [c.key for c in comps],
                "values": sorted(
                    (c.rid, c.value, c.ok, c.dedup, c.coalesced)
                    for c in comps
                ),
                "accesses": sched.accesses_issued,
                "dedup": sched.dedup_hits,
                "coalesced": sched.coalesced_puts,
                "state": {k: stack.kv.get(k) for k in KEYS},
            })
        assert outcomes[0] == outcomes[1]


class TestPerKeyFifo:
    @given(raw=batches, cuts=st.lists(st.integers(1, 5), max_size=4))
    @settings(**settings_kw)
    def test_matches_dict_reference_model(self, raw, cuts):
        reqs = make_requests(raw)
        stack, sched = fresh_scheduler(seed=3)
        model = {KEYS[0]: b"seed0", KEYS[1]: b"seed1"}

        # Cut the request stream into admission batches of varying size.
        batches_ = []
        i = 0
        for cut in cuts:
            if i >= len(reqs):
                break
            batches_.append(reqs[i:i + cut])
            i += cut
        if i < len(reqs):
            batches_.append(reqs[i:])

        for batch in batches_:
            comps = {c.rid: c for c in sched.serve_batch(batch)}
            # The reference model replays this batch in arrival order.
            for req in batch:
                comp = comps[req.rid]
                if req.op == GET:
                    expect = model.get(req.key)
                    assert comp.value == expect, (req, comp)
                    assert comp.ok is (expect is not None)
                elif req.op == PUT:
                    model[req.key] = req.value
                    assert comp.ok
                else:
                    existed = req.key in model
                    model.pop(req.key, None)
                    assert comp.ok is existed
        for key in KEYS:
            assert stack.kv.get(key) == model.get(key)
