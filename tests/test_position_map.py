"""Unit tests for the position map (repro.oram.position_map)."""

import numpy as np
import pytest

from repro.oram.position_map import UNMAPPED, PositionMap


@pytest.fixture
def pm(rng):
    return PositionMap(n_blocks=100, n_leaves=16, rng=rng)


class TestLookup:
    def test_first_lookup_assigns_random_leaf(self, pm):
        leaf = pm.lookup(5)
        assert 0 <= leaf < 16
        assert pm.is_mapped(5)

    def test_lookup_is_stable(self, pm):
        assert pm.lookup(5) == pm.lookup(5)

    def test_peek_unmapped(self, pm):
        assert pm.peek(7) == UNMAPPED
        assert not pm.is_mapped(7)

    def test_peek_does_not_map(self, pm):
        pm.peek(7)
        assert not pm.is_mapped(7)

    def test_lookup_counts(self, pm):
        pm.lookup(1)
        pm.lookup(1)
        assert pm.lookups == 2

    def test_out_of_range(self, pm):
        with pytest.raises(ValueError):
            pm.lookup(100)
        with pytest.raises(ValueError):
            pm.lookup(-1)


class TestRemap:
    def test_remap_changes_distribution(self, pm):
        """Remaps are uniform: over many remaps every leaf appears."""
        seen = {pm.remap(0) for _ in range(400)}
        assert seen == set(range(16))

    def test_remap_counts(self, pm):
        pm.remap(0)
        pm.remap(0)
        assert pm.remaps == 2

    def test_set_leaf(self, pm):
        pm.set_leaf(3, 9)
        assert pm.peek(3) == 9

    def test_set_leaf_validates(self, pm):
        with pytest.raises(ValueError):
            pm.set_leaf(3, 16)


class TestMappedBlocks:
    def test_initially_empty(self, pm):
        assert len(pm.mapped_blocks()) == 0

    def test_tracks_touched_blocks(self, pm):
        pm.lookup(3)
        pm.set_leaf(7, 0)
        assert set(pm.mapped_blocks()) == {3, 7}

    def test_len(self, pm):
        assert len(pm) == 100


class TestConstruction:
    def test_rejects_zero_blocks(self, rng):
        with pytest.raises(ValueError):
            PositionMap(0, 4, rng)

    def test_rejects_zero_leaves(self, rng):
        with pytest.raises(ValueError):
            PositionMap(4, 0, rng)

    def test_uniformity_of_first_touch(self, rng):
        pm = PositionMap(4000, 8, rng)
        leaves = [pm.lookup(i) for i in range(4000)]
        counts = np.bincount(leaves, minlength=8)
        # Each leaf expects 500; allow generous tolerance.
        assert counts.min() > 350
        assert counts.max() < 650
