"""Tests for the perf harness (repro.perf): schema, compare, determinism."""

import copy
import json

import pytest

from repro.cli import main as cli_main
from repro.perf import (
    SCHEMA_VERSION,
    compare_reports,
    run_perf,
    smoke_config,
    validate_report,
)
from repro.perf.compare import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    compare_files,
)
from repro.perf.report import render_report
from repro.perf.runner import PerfConfig


def tiny_config(**overrides):
    """A sub-second matrix for tests: one scheme, one trace."""
    base = dict(
        schemes=("ring",),
        benchmarks=("mcf",),
        levels=8,
        n_requests=150,
        warmup_requests=30,
    )
    base.update(overrides)
    return smoke_config(**base)


@pytest.fixture(scope="module")
def tiny_report():
    return run_perf(tiny_config())


class TestSchema:
    def test_harness_output_validates(self, tiny_report):
        assert validate_report(tiny_report) == []

    def test_json_round_trip(self, tiny_report):
        loaded = json.loads(json.dumps(tiny_report))
        assert validate_report(loaded) == []
        assert loaded == tiny_report

    def test_rejects_wrong_kind(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["kind"] = "something-else"
        assert any("kind" in e for e in validate_report(doc))

    def test_rejects_wrong_schema_version(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in e for e in validate_report(doc))

    def test_rejects_missing_cell_field(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        del doc["cells"][0]["accesses_per_s"]
        assert any("accesses_per_s" in e for e in validate_report(doc))

    def test_rejects_bool_where_int_expected(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["config"]["levels"] = True
        assert any("levels" in e for e in validate_report(doc))

    def test_rejects_empty_cells(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["cells"] = []
        assert any("cells" in e for e in validate_report(doc))

    def test_rejects_duplicate_cells(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["cells"].append(copy.deepcopy(doc["cells"][0]))
        assert any("duplicate" in e for e in validate_report(doc))

    def test_rejects_nonpositive_wall(self, tiny_report):
        doc = copy.deepcopy(tiny_report)
        doc["cells"][0]["wall_s"] = 0.0
        assert any("wall_s" in e for e in validate_report(doc))

    def test_non_dict_root(self):
        assert validate_report([1, 2]) != []

    def test_render_report_mentions_every_cell(self, tiny_report):
        text = render_report(tiny_report)
        for cell in tiny_report["cells"]:
            assert f"{cell['scheme']}/{cell['trace']}" in text


class TestCompare:
    def test_identical_reports_pass(self, tiny_report):
        code, messages = compare_reports(tiny_report, tiny_report)
        assert code == EXIT_OK
        assert all(m.startswith(("OK", "NEW")) for m in messages)

    def test_improvement_passes(self, tiny_report):
        new = copy.deepcopy(tiny_report)
        for cell in new["cells"]:
            cell["accesses_per_s"] *= 2.0
            cell["wall_s"] /= 2.0
        code, messages = compare_reports(tiny_report, new)
        assert code == EXIT_OK
        assert any("+100.0%" in m for m in messages)

    def test_small_drop_within_threshold_passes(self, tiny_report):
        new = copy.deepcopy(tiny_report)
        for cell in new["cells"]:
            cell["accesses_per_s"] *= 0.95
        code, _ = compare_reports(tiny_report, new, threshold_pct=10.0)
        assert code == EXIT_OK

    def test_regression_beyond_threshold_fails(self, tiny_report):
        new = copy.deepcopy(tiny_report)
        for cell in new["cells"]:
            cell["accesses_per_s"] *= 0.5
        code, messages = compare_reports(tiny_report, new, threshold_pct=10.0)
        assert code == EXIT_REGRESSION
        assert any(m.startswith("REGRESSION") for m in messages)

    def test_missing_cell_is_an_error(self, tiny_report):
        base = copy.deepcopy(tiny_report)
        extra = copy.deepcopy(base["cells"][0])
        extra["scheme"] = "ab"
        base["cells"].append(extra)
        code, messages = compare_reports(base, tiny_report)
        assert code == EXIT_ERROR
        assert any("missing" in m for m in messages)

    def test_new_only_cell_is_informational(self, tiny_report):
        new = copy.deepcopy(tiny_report)
        extra = copy.deepcopy(new["cells"][0])
        extra["trace"] = "xz"
        new["cells"].append(extra)
        code, messages = compare_reports(tiny_report, new)
        assert code == EXIT_OK
        assert any(m.startswith("NEW") for m in messages)

    def test_sim_drift_is_noted_but_does_not_gate(self, tiny_report):
        new = copy.deepcopy(tiny_report)
        new["cells"][0]["sim"]["stash_peak"] += 1
        code, messages = compare_reports(tiny_report, new)
        assert code == EXIT_OK
        assert any("drifted" in m and "stash_peak" in m for m in messages)

    def test_compare_files(self, tiny_report, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny_report))
        code, _ = compare_files(str(base), str(base))
        assert code == EXIT_OK

    def test_compare_files_invalid_json(self, tiny_report, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny_report))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, messages = compare_files(str(base), str(bad))
        assert code == EXIT_ERROR
        assert any("cannot load" in m for m in messages)

    def test_compare_files_binary_garbage(self, tiny_report, tmp_path):
        """An outright binary file must yield one diagnostic line per
        report, never a traceback (UnicodeDecodeError is a ValueError)."""
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny_report))
        bad = tmp_path / "bad.json"
        bad.write_bytes(bytes(range(256)) * 4)
        code, messages = compare_files(str(base), str(bad))
        assert code == EXIT_ERROR
        assert len(messages) == 1
        assert "cannot load" in messages[0]

    def test_compare_files_missing_file(self, tiny_report, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny_report))
        code, messages = compare_files(str(base), str(tmp_path / "no.json"))
        assert code == EXIT_ERROR
        assert any("cannot load" in m for m in messages)

    def test_compare_files_schema_invalid(self, tiny_report, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny_report))
        bad = tmp_path / "bad.json"
        doc = copy.deepcopy(tiny_report)
        doc["cells"] = []
        bad.write_text(json.dumps(doc))
        code, _ = compare_files(str(base), str(bad))
        assert code == EXIT_ERROR


class TestDeterminism:
    def test_back_to_back_runs_have_identical_sim_blocks(self, tiny_report):
        again = run_perf(tiny_config())
        sims_a = [c["sim"] for c in tiny_report["cells"]]
        sims_b = [c["sim"] for c in again["cells"]]
        assert sims_a == sims_b
        assert tiny_report["config"] == again["config"]

    def test_parallel_workers_match_serial(self):
        # Exercises the ProcessPoolExecutor path end-to-end through the
        # harness; the sim block must be bit-identical to the serial run.
        serial = run_perf(tiny_config(workers=1))
        parallel = run_perf(tiny_config(workers=2))
        assert [c["sim"] for c in parallel["cells"]] == \
            [c["sim"] for c in serial["cells"]]

    def test_config_block_matches_request(self):
        cfg = tiny_config(seed=7)
        doc = run_perf(cfg)
        assert doc["config"]["seed"] == 7
        assert doc["config"]["smoke"] is True
        assert doc["config"]["schemes"] == ["ring"]

    def test_default_matrix_shape(self):
        cfg = PerfConfig()
        assert cfg.schemes[0] == "ring"
        assert cfg.benchmarks[0] == "mcf"
        assert cfg.smoke is False


class TestCli:
    def test_perf_run_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli_main([
            "perf", "run", "--smoke", "--out", str(out),
            "--schemes", "ring", "--benchmarks", "mcf",
            "--levels", "8", "--requests", "120", "--warmup", "20",
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_report(doc) == []
        captured = capsys.readouterr()
        assert "ring/mcf" in captured.out

    def test_perf_smoke_sugar_inserts_run(self, tmp_path, capsys):
        # ``repro perf --smoke`` must behave as ``repro perf run --smoke``.
        out = tmp_path / "report.json"
        code = cli_main([
            "perf", "--smoke", "--out", str(out),
            "--schemes", "ring", "--benchmarks", "mcf",
            "--levels", "8", "--requests", "120", "--warmup", "20",
        ])
        assert code == 0
        assert validate_report(json.loads(out.read_text())) == []

    def test_perf_compare_cli_exit_codes(self, tmp_path, capsys):
        doc = run_perf(tiny_config())
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doc))
        worse = copy.deepcopy(doc)
        for cell in worse["cells"]:
            cell["accesses_per_s"] *= 0.5
        new = tmp_path / "new.json"
        new.write_text(json.dumps(worse))

        assert cli_main(["perf", "compare", str(base), str(base)]) == 0
        assert cli_main(["perf", "compare", str(base), str(new)]) == 1
        assert cli_main([
            "perf", "compare", str(base), str(new), "--warn-only",
        ]) == 0
        captured = capsys.readouterr()
        assert "warn-only" in captured.out
