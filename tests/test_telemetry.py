"""Tests for the telemetry subsystem (repro.telemetry).

Covers the metrics registry and its snapshot/merge protocol, the
Telemetry handle's JSONL + Chrome-trace outputs, the TracingSink's
observe-only guarantee (bit-identical simulation results), the
executor-level worker-registry merge, and the shared stderr progress
helper.
"""

import json

import pytest

from repro.core import schemes as schemes_mod
from repro.parallel import Cell, run_cells
from repro.parallel import testing as ptasks
from repro.sim.engine import SimConfig, Simulation, simulate
from repro.sim.runner import make_trace
from repro.telemetry import (
    Telemetry,
    TracingSink,
    load_stream,
    merge_snapshots,
    quantiles_from_snapshot,
    render_stream,
    stderr_progress,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry


LEVELS = 9
REQUESTS = 150
SEED = 3


def _small_sim(telemetry=None):
    cfg = schemes_mod.by_name("ab", LEVELS)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, REQUESTS, seed=SEED)
    return Simulation(cfg, trace, SimConfig(seed=SEED), telemetry=telemetry)


class TestInstruments:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert reg.counter("x") is c  # get-or-create returns the same

    def test_gauge_tracks_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        for v in (3, 9, 2):
            g.set(v)
        assert g.value == 2.0
        assert g.max == 9.0

    def test_histogram_buckets_and_mean(self):
        h = Histogram(bounds=(10.0, 100.0))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.counts == [1, 1, 1]   # one per bucket incl. overflow
        assert h.count == 3
        assert h.mean == pytest.approx(555 / 3)

    def test_histogram_quantile_interpolates(self):
        h = Histogram(bounds=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)            # all in the (10, 20] bucket
        assert 10.0 <= h.quantile(0.5) <= 20.0
        assert h.quantile(0.0) >= 0.0
        assert h.quantile(1.0) == 20.0

    def test_histogram_overflow_reports_last_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(99.0)
        assert h.quantile(0.5) == 2.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(2.0, 1.0))

    def test_histogram_empty_bounds_fall_back_to_defaults(self):
        from repro.telemetry import default_time_buckets
        assert Histogram(bounds=()).bounds == default_time_buckets()

    def test_registry_rejects_bounds_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram(bounds=(1.0,)).quantile(1.5)


class TestSnapshotMerge:
    def test_snapshot_is_sorted_and_json_able(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.counter("alpha").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        json.dumps(snap)  # plain data, round-trippable

    def test_merge_equals_serial_accumulation(self):
        """Splitting updates across registries then merging in order
        must equal one registry taking every update in place."""
        serial = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(3)]
        for i, part in enumerate(parts):
            for reg in (serial, part):
                reg.counter("n").inc(i + 1)
                reg.gauge("last").set(i)
                reg.histogram("h", bounds=(1.0, 4.0)).observe(float(i))
        merged = merge_snapshots([p.snapshot() for p in parts])
        assert merged == serial.snapshot()

    def test_merge_order_sets_gauge_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(10)
        b.gauge("g").set(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["g"] == {"value": 3.0, "max": 10.0}

    def test_merge_rejects_shape_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        reg = MetricsRegistry()
        reg.merge_snapshot(a.snapshot())
        with pytest.raises(ValueError, match="bounds"):
            reg.merge_snapshot(b.snapshot())

    def test_quantiles_from_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(10.0, 20.0))
        for _ in range(100):
            h.observe(15.0)
        entry = reg.snapshot()["histograms"]["h"]
        p50, p95, p99 = quantiles_from_snapshot(entry)
        assert 10.0 <= p50 <= p95 <= p99 <= 20.0


class TestWorkerRegistryMerge:
    PAYLOADS = [("a", 1), ("b", 7), ("a", 30)]

    def _run(self, workers):
        cells = [Cell(f"c{i}", p) for i, p in enumerate(self.PAYLOADS)]
        return run_cells(ptasks.metrics_task, cells, workers=workers)

    def test_cells_ship_snapshots(self):
        out = self._run(workers=1)
        assert all(r.ok and r.metrics is not None for r in out)
        assert out[0].metrics["counters"]["cells"] == 1

    def test_parallel_merge_identical_to_serial(self):
        serial = self._run(workers=1)
        par = self._run(workers=2)
        merged_s = merge_snapshots([r.metrics for r in serial])
        merged_p = merge_snapshots([r.metrics for r in par])
        assert merged_s == merged_p
        assert merged_s["counters"]["cells"] == 3
        assert merged_s["counters"]["by_name.a"] == 31
        assert merged_s["gauges"]["last_n"]["max"] == 30.0

    def test_metrics_free_cells_ship_none(self):
        cells = [Cell(f"c{i}", i) for i in range(3)]
        for workers in (1, 2):
            out = run_cells(ptasks.plain_task, cells, workers=workers)
            assert all(r.ok and r.metrics is None for r in out)


class TestTracingSink:
    def test_requires_clocked_inner(self):
        from repro.oram.stats import MemorySink
        with pytest.raises(TypeError, match="clocked"):
            TracingSink(MemorySink(), Telemetry())

    def test_results_bit_identical_with_telemetry(self):
        bare = _small_sim().run()
        with Telemetry() as t:
            traced = _small_sim(telemetry=t).run()
        assert traced == bare
        assert len(t.spans) > 0

    def test_spans_cover_operation_kinds(self):
        with Telemetry() as t:
            _small_sim(telemetry=t).run()
        kinds = {name for name, _, _ in t.spans}
        assert {"readPath", "evictPath"} <= kinds
        for _name, start, dur in t.spans:
            assert start >= 0 and dur >= 0

    def test_span_counters_match_span_list(self):
        with Telemetry() as t:
            _small_sim(telemetry=t).run()
        counters = t.registry.snapshot()["counters"]
        for name, entry in t.span_summary().items():
            assert counters[f"ops.{name}"] == entry["count"]


class TestTelemetryHandle:
    def test_rejects_negative_cadence(self):
        with pytest.raises(ValueError, match="metrics_every"):
            Telemetry(metrics_every=-1)

    def test_outputs_written_and_loadable(self, tmp_path):
        trace_path = tmp_path / "out" / "trace.json"
        metrics_path = tmp_path / "out" / "trace.jsonl"
        t = Telemetry(trace_path=str(trace_path),
                      metrics_path=str(metrics_path),
                      metrics_every=50, meta={"scheme": "ab"})
        _small_sim(telemetry=t).run()
        t.close()
        t.close()  # idempotent

        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == len(t.spans)
        assert doc["otherData"] == {"scheme": "ab"}

        stream = load_stream(str(metrics_path))
        assert stream["meta"]["scheme"] == "ab"
        # 150 requests at cadence 50 -> 3 periodic + 1 final snapshot.
        assert len(stream["snapshots"]) == 4
        assert stream["summary"]["metrics"]["counters"]["ops.readPath"] > 0

    def test_snapshots_carry_protocol_state(self, tmp_path):
        metrics_path = tmp_path / "m.jsonl"
        t = Telemetry(metrics_path=str(metrics_path), metrics_every=50)
        _small_sim(telemetry=t).run()
        t.close()
        last = load_stream(str(metrics_path))["snapshots"][-1]
        assert last["access"] == REQUESTS
        assert last["stash_peak"] >= last["stash_occupancy"] >= 0
        assert last["deadq_depth"], "AB run must report DeadQ depths"
        assert last["reshuffles_total"] > 0
        gauges = t.registry.snapshot()["gauges"]
        assert gauges["stash.peak"]["value"] == last["stash_peak"]
        for lv, depth in last["deadq_depth"].items():
            assert gauges[f"deadq.depth.L{lv}"]["value"] == depth

    def test_metrics_every_zero_disables_periodic(self, tmp_path):
        metrics_path = tmp_path / "m.jsonl"
        t = Telemetry(metrics_path=str(metrics_path), metrics_every=0)
        _small_sim(telemetry=t).run()
        t.close()
        # Only the run-final snapshot remains.
        assert len(load_stream(str(metrics_path))["snapshots"]) == 1

    def test_telemetry_incompatible_with_checkpointing(self, tmp_path):
        sim = _small_sim(telemetry=Telemetry())
        with pytest.raises(ValueError, match="checkpoint"):
            sim.run(checkpoint_every=10,
                    checkpoint_path=str(tmp_path / "ckpt.pkl"))

    def test_render_stream(self, tmp_path):
        metrics_path = tmp_path / "m.jsonl"
        t = Telemetry(metrics_path=str(metrics_path), metrics_every=50,
                      meta={"scheme": "ab"})
        _small_sim(telemetry=t).run()
        t.close()
        text = render_stream(str(metrics_path))
        assert "Operation spans" in text
        assert "readPath" in text
        assert "deadq_depth.L" in text

    def test_load_stream_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            load_stream(str(bad))
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            load_stream(str(bad))


class TestSimulateHelper:
    def test_module_level_simulate_accepts_telemetry(self):
        cfg = schemes_mod.by_name("ring", LEVELS)
        trace = make_trace("spec", "mcf", cfg.n_real_blocks, 60, seed=0)
        with Telemetry() as t:
            result = simulate(cfg, trace, SimConfig(seed=0), telemetry=t)
        assert result.exec_ns > 0
        assert t.spans
        # Ring has no extension machinery; snapshots still well-formed.
        assert t.registry.snapshot()["gauges"]["rentals.outstanding"] == {
            "value": 0.0, "max": 0.0}


class TestStderrProgress:
    def test_prints_to_stderr(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_QUIET", raising=False)
        stderr_progress("hello there")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "hello there" in captured.err

    def test_quiet_env_silences(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUIET", "1")
        stderr_progress("should not appear")
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_falsy_values_do_not_silence(self, capsys, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_QUIET", value)
            stderr_progress("visible")
        assert capsys.readouterr().err.count("visible") == 4
