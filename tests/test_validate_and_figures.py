"""Tests for the configuration doctor and the analytic figures API."""

import dataclasses

import pytest

from repro.analysis import figures
from repro.core import schemes
from repro.oram.config import BucketGeometry, OramConfig, override_levels, uniform_geometry
from repro.oram.recovery import RobustnessConfig
from repro.oram.validate import (
    ERROR,
    INFO,
    WARNING,
    UnsoundConfigError,
    assert_sound,
    diagnose,
    diagnose_robustness,
)


class TestDiagnose:
    def test_paper_schemes_have_no_errors(self):
        for cfg in schemes.main_schemes(24):
            errors = [f for f in diagnose(cfg) if f.severity == ERROR]
            assert not errors, (cfg.name, errors)

    def test_zero_sustain_flagged(self):
        cfg = OramConfig(levels=4,
                         geometry=uniform_geometry(4, 5, 0, overlap=0))
        codes = {f.code for f in diagnose(cfg) if f.severity == ERROR}
        assert "sustain-zero" in codes

    def test_extension_without_deadq_flagged(self):
        geom = override_levels(
            uniform_geometry(4, 5, 3, overlap=2),
            {3: BucketGeometry(5, 1, overlap=2, remote_extension=2)},
        )
        cfg = OramConfig(levels=4, geometry=geom)  # no deadq_levels!
        codes = {f.code for f in diagnose(cfg) if f.severity == ERROR}
        assert "extension-untracked" in codes

    def test_deadq_without_extension_warns(self):
        cfg = OramConfig(levels=4,
                         geometry=uniform_geometry(4, 5, 3, overlap=2),
                         deadq_levels=(3,))
        codes = {f.code for f in diagnose(cfg) if f.severity == WARNING}
        assert "deadq-unused" in codes

    def test_overfull_flagged(self):
        cfg = OramConfig(levels=4,
                         geometry=uniform_geometry(4, 5, 3, overlap=2),
                         n_real_blocks=15 * 8)  # every slot "real"
        codes = {f.code for f in diagnose(cfg) if f.severity == ERROR}
        assert "overfull" in codes or "zreal-overfull" in codes

    def test_stash_headroom_warns(self):
        cfg = OramConfig(levels=8,
                         geometry=uniform_geometry(8, 5, 3, overlap=2),
                         stash_capacity=50,
                         background_evict_threshold=45)
        codes = {f.code for f in diagnose(cfg)}
        assert "stash-headroom" in codes

    def test_metadata_overflow_warns(self):
        cfg = dataclasses.replace(
            schemes.ab_scheme(24), max_remote_slots=64,
            geometry=schemes.ab_scheme(24).geometry,
        )
        codes = {f.code for f in diagnose(cfg)}
        assert "metadata-overflow" in codes

    def test_info_findings_present_for_ab(self):
        infos = [f for f in diagnose(schemes.ab_scheme(24))
                 if f.severity == INFO]
        assert any(f.code == "deadq-pressure" for f in infos)


class TestAssertSound:
    def test_passes_paper_config(self):
        findings = assert_sound(schemes.ab_scheme(24))
        assert all(f.severity != ERROR for f in findings)

    def test_raises_on_error(self):
        cfg = OramConfig(levels=4,
                         geometry=uniform_geometry(4, 5, 0, overlap=0))
        with pytest.raises(UnsoundConfigError, match="sustain-zero"):
            assert_sound(cfg)


class TestFiguresApi:
    def test_fig8_space_values(self):
        rows = {r["scheme"]: r for r in figures.fig8_space()}
        assert rows["AB"]["normalized"] == pytest.approx(0.645, abs=0.003)

    def test_fig8_utilization_values(self):
        rows = {r["scheme"]: r for r in figures.fig8_utilization()}
        assert rows["AB"]["utilization"] == pytest.approx(0.485, abs=0.003)

    def test_fig4_curve_shape(self):
        rows = figures.fig4_space_curve()
        assert rows[0]["space_norm"] == 1.0
        values = [r["space_norm"] for r in rows]
        assert values == sorted(values, reverse=True)
        assert values[3] == pytest.approx(0.781, abs=0.002)  # L-3

    def test_fig11_curve(self):
        rows = figures.fig11_space_curve()
        assert rows[-1]["config"] == "DR-L18"
        assert rows[-1]["space_norm"] == pytest.approx(0.754, abs=0.002)

    def test_fig13_grid_complete(self):
        rows = figures.fig13_space_grid()
        assert len(rows) == 9
        by = {r["config"]: r["space_norm"] for r in rows}
        assert by["L2-S2"] == pytest.approx(0.8125, abs=0.002)

    def test_table1_rows(self):
        rows = figures.table1_rows()
        names = {r["field"] for r in rows}
        assert {"count", "remote", "status", "TOTAL bytes"} <= names

    def test_overheads(self):
        over = figures.overheads()
        assert over["ab_metadata_fits_block"]

    def test_scaled_levels_supported(self):
        rows = figures.fig8_space(levels=10)
        assert len(rows) == 5


class TestDiagnoseRobustness:
    def _codes(self, findings):
        return {f.code for f in findings}

    def test_no_policy_no_faults_is_clean(self):
        assert diagnose_robustness(None) == []

    def test_faults_without_policy_is_error(self):
        findings = diagnose_robustness(None, faults_enabled=True)
        assert self._codes(findings) == {"faults-unguarded"}
        assert findings[0].severity == ERROR

    def test_zero_retries_with_quarantine_warns(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=True, retry_budget=0),
            faults_enabled=True,
        )
        assert "retry-zero" in self._codes(findings)

    def test_zero_retries_without_quarantine_is_error(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=True, retry_budget=0,
                             quarantine=False),
            faults_enabled=True,
        )
        by_code = {f.code: f for f in findings}
        assert by_code["no-recovery"].severity == ERROR

    def test_faults_without_integrity_warns(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=False), faults_enabled=True,
        )
        assert "faults-without-integrity" in self._codes(findings)

    def test_long_integrity_run_without_checkpoint_warns(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=True),
            n_requests=50_000, checkpoint_every=0,
        )
        assert "integrity-no-checkpoint" in self._codes(findings)

    def test_checkpointed_long_run_is_clean(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=True),
            n_requests=50_000, checkpoint_every=1000,
        )
        assert "integrity-no-checkpoint" not in self._codes(findings)

    def test_zero_backoff_with_retries_warns(self):
        findings = diagnose_robustness(
            RobustnessConfig(integrity=True, backoff_base_ns=0.0),
            faults_enabled=True,
        )
        assert "backoff-zero" in self._codes(findings)
