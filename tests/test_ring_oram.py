"""Unit and behavioural tests for the Ring ORAM controller."""

import numpy as np
import pytest

from conftest import tiny_ab_config, tiny_config

from repro.core.remote import RemoteAllocator
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, OpKind


def make_oram(cfg=None, seed=0, **kw):
    cfg = cfg or tiny_config()
    return RingOram(cfg, seed=seed, **kw)


class TestAccessBasics:
    def test_read_returns_written_value(self):
        oram = make_oram(store_data=True)
        oram.write(3, b"hello")
        assert oram.read(3) == b"hello"

    def test_overwrite(self):
        oram = make_oram(store_data=True)
        oram.write(3, 1)
        oram.write(3, 2)
        assert oram.read(3) == 2

    def test_unwritten_block_reads_none(self):
        oram = make_oram(store_data=True)
        assert oram.read(5) is None

    def test_many_blocks_roundtrip(self):
        oram = make_oram(store_data=True)
        n = min(40, oram.cfg.n_real_blocks)
        for i in range(n):
            oram.write(i, i * 11)
        for i in range(n):
            assert oram.read(i) == i * 11

    def test_block_out_of_range(self):
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access(oram.cfg.n_real_blocks)
        with pytest.raises(ValueError):
            oram.access(-1)

    def test_access_counts(self):
        oram = make_oram()
        for i in range(7):
            oram.access(i % 3)
        assert oram.online_accesses == 7

    def test_remap_changes_position(self):
        oram = make_oram(seed=5)
        oram.access(0)
        leaves = {oram.posmap.peek(0)}
        for _ in range(30):
            oram.access(0)
            leaves.add(oram.posmap.peek(0))
        assert len(leaves) > 3  # fresh uniform leaf each access


class TestMaintenanceScheduling:
    def test_evict_path_every_a_accesses(self):
        cfg = tiny_config(evict_rate=3)
        oram = make_oram(cfg)
        for i in range(9):
            oram.access(i % 5)
        assert oram.evict_counter == 3

    def test_evict_uses_reverse_lex_order(self):
        from repro.oram.tree import reverse_lexicographic_leaf
        cfg = tiny_config(evict_rate=1)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        for i in range(4):
            oram.access(i)
        assert oram.evict_counter == 4
        # Counter-derived leaves are the reverse-lex sequence by
        # construction; spot-check the helper stays in sync.
        assert reverse_lexicographic_leaf(0, cfg.levels) == 0

    def test_early_reshuffle_triggers_at_sustain(self):
        """A bucket read `sustain` times must be reshuffled."""
        oram = make_oram(seed=2)
        sustain = oram.cfg.geometry[0].sustain_unextended
        # The root is on every path: it saturates fastest.
        for i in range(sustain * 3):
            oram.access(i % oram.cfg.n_real_blocks)
            assert oram.store.count[0] < oram.store.sustain[0] + 1
        assert oram.store.reshuffles_by_level[0] > 0

    def test_counts_never_exceed_sustain_anywhere(self):
        oram = make_oram(seed=3)
        for i in range(120):
            oram.access((i * 13) % oram.cfg.n_real_blocks)
            over = np.nonzero(oram.store.count > oram.store.sustain)[0]
            assert over.size == 0


class TestOperationAccounting:
    def test_read_path_reads_one_block_per_offchip_bucket(self):
        cfg = tiny_config(treetop_levels=0)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.ops == 1
        assert c.data_reads == cfg.levels

    def test_treetop_levels_do_not_touch_memory(self):
        cfg = tiny_config(treetop_levels=2)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.data_reads == cfg.levels - 2
        assert sink.data_reads_by_level[0] == 0
        assert sink.data_reads_by_level[1] == 0

    def test_read_path_metadata_read_and_written_per_bucket(self):
        cfg = tiny_config(treetop_levels=0)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.meta_reads == cfg.levels
        assert c.meta_writes == cfg.levels

    def test_evict_path_costs(self):
        """EvictPath: Z' reads and Z (usable) writes per bucket."""
        cfg = tiny_config(evict_rate=1, treetop_levels=0)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)  # triggers one evictPath
        c = sink.by_kind[OpKind.EVICT_PATH]
        assert c.ops == 1
        assert c.data_reads == cfg.levels * 3     # Z' = 3
        assert c.data_writes == cfg.levels * 5    # Z = 5

    def test_stash_hit_still_reads_full_path(self):
        cfg = tiny_config(treetop_levels=0, evict_rate=1000)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        oram.access(0)  # block is still in the stash (no evict ran)
        assert sink.by_kind[OpKind.READ_PATH].data_reads == 2 * cfg.levels


class TestStashBehaviour:
    def test_block_in_stash_until_evicted(self):
        cfg = tiny_config(evict_rate=1000)
        oram = make_oram(cfg)
        oram.access(0)
        assert 0 in oram.stash

    def test_eviction_drains_stash(self):
        oram = make_oram(seed=7)
        for i in range(60):
            oram.access(i % oram.cfg.n_real_blocks)
        # Plenty of evictions ran (60 / A=3 = 20); stash stays small.
        assert oram.stash.occupancy < 30

    def test_green_blocks_enter_stash(self):
        """Once dummies run out, reads spill real blocks to the stash."""
        cfg = tiny_config(evict_rate=10**6)  # no evictions
        oram = make_oram(cfg, seed=1)
        oram.warm_fill()
        spills = 0
        for i in range(40):
            before = oram.stash.occupancy
            oram.access(i % cfg.n_real_blocks)
            after = oram.stash.occupancy
            if after - before > 1:
                spills += 1
        assert spills > 0


class TestWarmFill:
    def test_every_block_placed(self):
        oram = make_oram(seed=4)
        overflow = oram.warm_fill()
        resident = len(oram.store.real_blocks_resident()) + oram.stash.occupancy
        assert resident == oram.cfg.n_real_blocks
        assert overflow == oram.stash.occupancy

    def test_placement_respects_paths(self):
        oram = make_oram(seed=4)
        oram.warm_fill()
        oram.check_invariants()

    def test_most_blocks_land_deep(self):
        oram = make_oram(seed=4)
        oram.warm_fill()
        per_level = np.zeros(oram.cfg.levels)
        rows = oram.store.slots
        reals = np.argwhere(rows >= 0)
        for b, _s in reals:
            per_level[oram.store.level(int(b))] += 1
        assert per_level[-1] > per_level.sum() * 0.4

    def test_access_after_warm_fill(self):
        oram = make_oram(seed=4, store_data=True)
        oram.warm_fill()
        oram.write(5, "x")
        for i in range(20):
            oram.access(i)
        assert oram.read(5) == "x"
        oram.check_invariants()


class TestInvariants:
    def test_invariants_hold_through_mixed_traffic(self):
        oram = make_oram(seed=9, store_data=True)
        oram.warm_fill()
        rng = np.random.default_rng(0)
        for i in range(150):
            blk = int(rng.integers(oram.cfg.n_real_blocks))
            if rng.random() < 0.5:
                oram.write(blk, blk)
            else:
                oram.read(blk)
        oram.check_invariants()

    def test_values_survive_mixed_traffic(self):
        oram = make_oram(seed=9, store_data=True)
        oram.warm_fill()
        rng = np.random.default_rng(1)
        shadow = {}
        for i in range(200):
            blk = int(rng.integers(oram.cfg.n_real_blocks))
            if rng.random() < 0.5:
                shadow[blk] = i
                oram.write(blk, i)
            else:
                expect = shadow.get(blk)
                assert oram.read(blk) == expect


class TestBackgroundEviction:
    def test_background_drains_above_threshold(self):
        cfg = tiny_config(background_evict_threshold=6, evict_rate=10)
        oram = make_oram(cfg, seed=11)
        oram.warm_fill()
        for i in range(100):
            oram.access(i % cfg.n_real_blocks)
            assert oram.stash.occupancy <= 6
        assert oram.background_accesses > 0

    def test_background_ops_attributed(self):
        cfg = tiny_config(background_evict_threshold=8, evict_rate=8)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink, seed=11)
        oram.warm_fill()
        for i in range(80):
            oram.access(i % cfg.n_real_blocks)
        if oram.background_accesses:
            assert sink.by_kind[OpKind.BACKGROUND].ops == oram.background_accesses


class TestWithExtensions:
    def test_ab_oram_runs_and_checks(self):
        cfg = tiny_ab_config()
        oram = RingOram(cfg, seed=3, extensions=RemoteAllocator(cfg),
                        store_data=True)
        oram.warm_fill()
        for i in range(200):
            oram.access((i * 7) % cfg.n_real_blocks)
        oram.check_invariants()
        assert oram.ext.extension_attempts > 0

    def test_remote_reads_happen(self):
        cfg = tiny_ab_config()
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink, seed=3, extensions=RemoteAllocator(cfg))
        oram.warm_fill()
        for i in range(300):
            oram.access((i * 7) % cfg.n_real_blocks)
        assert oram.ext.remote_reads > 0

    def test_values_survive_with_extensions(self):
        cfg = tiny_ab_config()
        oram = RingOram(cfg, seed=3, extensions=RemoteAllocator(cfg),
                        store_data=True)
        oram.warm_fill()
        shadow = {}
        rng = np.random.default_rng(5)
        for i in range(250):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                shadow[blk] = i
                oram.write(blk, i)
            else:
                assert oram.read(blk) == shadow.get(blk)
        oram.check_invariants()
