"""Tests for result persistence (repro.sim.persist)."""

import json

import pytest

from repro.core import schemes
from repro.sim import SimConfig
from repro.sim.persist import (
    load_results,
    result_from_dict,
    result_to_dict,
    results_to_csv,
    save_results,
)
from repro.sim.runner import run_schemes
from repro.traces.spec import spec_trace


@pytest.fixture(scope="module")
def matrix():
    cfgs = schemes.main_schemes(8)[:2]
    trace = spec_trace("gcc", cfgs[0].n_real_blocks, 120, seed=1)
    results = run_schemes(cfgs, trace, SimConfig(seed=1))
    return {k: {"gcc": v} for k, v in results.items()}


class TestDictRoundtrip:
    def test_roundtrip(self, matrix):
        r = matrix["Baseline"]["gcc"]
        back = result_from_dict(result_to_dict(r))
        assert back == r

    def test_derived_fields_recomputed(self, matrix):
        r = matrix["Baseline"]["gcc"]
        back = result_from_dict(result_to_dict(r))
        assert back.bandwidth_gbps == r.bandwidth_gbps


class TestJson:
    def test_save_load_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_results(matrix, path)
        loaded = load_results(path)
        assert set(loaded) == set(matrix)
        assert loaded["Baseline"]["gcc"] == matrix["Baseline"]["gcc"]

    def test_file_is_valid_json(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_results(matrix, path)
        payload = json.loads(path.read_text())
        assert payload["_format"] == 1

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"_format": 99, "schemes": {}}))
        with pytest.raises(ValueError, match="unsupported"):
            load_results(path)


class TestCsv:
    def test_rows_written(self, matrix, tmp_path):
        path = tmp_path / "results.csv"
        n = results_to_csv(matrix, path)
        assert n == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("scheme,benchmark,")

    def test_extension_ratio_blank_for_none(self, matrix, tmp_path):
        path = tmp_path / "r.csv"
        results_to_csv(matrix, path)
        content = path.read_text()
        assert "Baseline,gcc" in content

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            results_to_csv({}, tmp_path / "e.csv")


class TestRecordValidation:
    def test_format_mismatch_rejected(self, matrix):
        d = result_to_dict(matrix["Baseline"]["gcc"])
        d["_format"] = 99
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict(d)

    def test_missing_required_keys_named(self, matrix):
        d = result_to_dict(matrix["Baseline"]["gcc"])
        del d["exec_ns"]
        del d["scheme"]
        with pytest.raises(ValueError, match="missing required keys"):
            result_from_dict(d)
        with pytest.raises(ValueError, match="exec_ns"):
            result_from_dict(d)

    def test_unknown_keys_named(self, matrix):
        d = result_to_dict(matrix["Baseline"]["gcc"])
        d["proximal_flux"] = 1
        with pytest.raises(ValueError, match="unknown keys.*proximal_flux"):
            result_from_dict(d)
