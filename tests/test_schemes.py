"""Tests for the paper's scheme configurations (repro.core.schemes)."""

import pytest

from repro.core import schemes


class TestBaselineCb:
    def test_paper_shape(self):
        cfg = schemes.baseline_cb(24)
        g = cfg.geometry[0]
        assert (g.z_real, g.s_reserved, g.overlap) == (5, 3, 4)
        assert g.z_total == 8
        assert g.sustain == 7

    def test_uniform(self):
        cfg = schemes.baseline_cb(24)
        assert len(set(cfg.geometry)) == 1

    def test_8gb_tree(self):
        cfg = schemes.baseline_cb(24)
        assert cfg.tree_bytes == ((1 << 24) - 1) * 8 * 64

    def test_treetop_ten_levels(self):
        assert schemes.baseline_cb(24).treetop_levels == 10


class TestClassicRing:
    def test_paper_shape(self):
        cfg = schemes.classic_ring(24)
        g = cfg.geometry[0]
        assert (g.z_real, g.s_reserved, g.overlap) == (5, 7, 0)
        assert g.z_total == 12
        assert g.sustain == 7

    def test_21_percent_utilization(self):
        """(Z' x 50%) / Z = 2.5/12 ~ 21% (paper section III-B)."""
        cfg = schemes.classic_ring(24)
        assert cfg.space_utilization == pytest.approx(2.5 / 12, abs=0.002)


class TestIr:
    def test_middle_band_shrunk(self):
        cfg = schemes.ir_oram(24)
        assert cfg.geometry[10].z_real == 4
        assert cfg.geometry[18].z_real == 4
        assert cfg.geometry[9].z_real == 5
        assert cfg.geometry[19].z_real == 5

    def test_overlap_three_everywhere(self):
        cfg = schemes.ir_oram(24)
        assert all(g.overlap == 3 for g in cfg.geometry)

    def test_more_reshuffles_than_baseline(self):
        """Sustain 6 < 7: IR reshuffles more often."""
        ir = schemes.ir_oram(24)
        base = schemes.baseline_cb(24)
        assert ir.geometry[0].sustain < base.geometry[0].sustain

    def test_negligible_space_impact(self):
        ir = schemes.ir_oram(24)
        base = schemes.baseline_cb(24)
        assert 0.99 < ir.tree_bytes / base.tree_bytes <= 1.0

    def test_protects_same_data(self):
        assert (schemes.ir_oram(24).n_real_blocks
                == schemes.baseline_cb(24).n_real_blocks)


class TestDr:
    def test_bottom_six_levels_shrunk(self):
        cfg = schemes.dr_scheme(24)
        for lv in range(18, 24):
            g = cfg.geometry[lv]
            assert (g.z_real, g.s_reserved) == (5, 1)
            assert g.z_total == 6
            assert g.remote_extension == 2
        assert cfg.geometry[17].z_total == 8

    def test_extension_recovers_baseline_sustain(self):
        """S=1 + Y=4 + r=2 = 7, the baseline's sustain."""
        cfg = schemes.dr_scheme(24)
        assert cfg.geometry[23].sustain == 7
        assert cfg.geometry[23].sustain_unextended == 5

    def test_deadq_on_dr_levels(self):
        cfg = schemes.dr_scheme(24)
        assert cfg.deadq_levels == (18, 19, 20, 21, 22, 23)
        assert cfg.deadq_capacity == 1000

    def test_75_percent_space(self):
        """Paper: DR lowers space demand to 75% of Baseline."""
        ratio = schemes.dr_scheme(24).tree_bytes / schemes.baseline_cb(24).tree_bytes
        assert ratio == pytest.approx(0.754, abs=0.002)

    def test_sensitivity_variants(self):
        for bottom in range(1, 7):
            cfg = schemes.dr_scheme(24, bottom=bottom)
            shrunk = sum(1 for g in cfg.geometry if g.z_total == 6)
            assert shrunk == bottom


class TestNs:
    def test_bottom_two_levels(self):
        cfg = schemes.ns_scheme(24)
        assert cfg.geometry[22].z_total == 6
        assert cfg.geometry[23].z_total == 6
        assert cfg.geometry[21].z_total == 8

    def test_no_extension(self):
        cfg = schemes.ns_scheme(24)
        assert all(g.remote_extension == 0 for g in cfg.geometry)
        assert cfg.deadq_levels == ()

    def test_81_percent_space(self):
        """Paper: NS reduces space demand by 19%."""
        ratio = schemes.ns_scheme(24).tree_bytes / schemes.baseline_cb(24).tree_bytes
        assert ratio == pytest.approx(0.8125, abs=0.002)

    def test_ly_sx_variants(self):
        cfg = schemes.ns_scheme(24, bottom=3, reduce_by=3)
        assert cfg.geometry[23].s_reserved == 0
        assert cfg.name == "NS-L3-S3"


class TestAb:
    def test_split_band(self):
        cfg = schemes.ab_scheme(24)
        for lv in (18, 19, 20):
            assert cfg.geometry[lv].z_total == 6
            assert cfg.geometry[lv].remote_extension == 2
        for lv in (21, 22, 23):
            assert cfg.geometry[lv].z_total == 5
            assert cfg.geometry[lv].s_reserved == 0
            assert cfg.geometry[lv].remote_extension == 2

    def test_64_percent_space(self):
        """Paper: AB achieves ~36% space reduction."""
        ratio = schemes.ab_scheme(24).tree_bytes / schemes.baseline_cb(24).tree_bytes
        assert ratio == pytest.approx(0.645, abs=0.003)

    def test_utilization_near_50(self):
        """Paper: AB improves utilization from 31.2% to 48.5%."""
        assert schemes.ab_scheme(24).space_utilization == pytest.approx(
            0.485, abs=0.003
        )

    def test_deadq_covers_whole_band(self):
        assert schemes.ab_scheme(24).deadq_levels == tuple(range(18, 24))


class TestDrPerf:
    def test_same_space_as_baseline(self):
        assert (schemes.dr_perf_scheme(24).tree_bytes
                == schemes.baseline_cb(24).tree_bytes)

    def test_extends_beyond_baseline_sustain(self):
        cfg = schemes.dr_perf_scheme(24)
        assert cfg.geometry[23].sustain == 9
        assert cfg.geometry[23].sustain_unextended == 7

    def test_deadq_on_band(self):
        cfg = schemes.dr_perf_scheme(24)
        assert cfg.deadq_levels == (18, 19, 20, 21, 22, 23)

    def test_by_name(self):
        assert schemes.by_name("dr-perf", 10).name == "DR-perf"


class TestRingSReduced:
    def test_fig4_variant(self):
        cfg = schemes.ring_s_reduced(24, bottom=3, reduce_by=3)
        assert cfg.geometry[23].s_reserved == 4
        assert cfg.geometry[20].s_reserved == 7

    def test_space_monotone_in_bottom(self):
        sizes = [schemes.ring_s_reduced(24, bottom=x).tree_bytes
                 for x in range(1, 8)]
        assert sizes == sorted(sizes, reverse=True)


class TestLookupAndScaling:
    def test_by_name(self):
        for name in ("baseline", "ir", "dr", "ns", "ab", "ring", "cb"):
            cfg = schemes.by_name(name, 12)
            assert cfg.levels == 12

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            schemes.by_name("nope")

    def test_main_schemes_order(self):
        names = [c.name for c in schemes.main_schemes(24)]
        assert names == ["Baseline", "IR", "DR", "NS", "AB"]

    def test_scaled_trees_valid(self):
        """Every scheme builds at small and odd level counts."""
        for levels in (6, 9, 13, 16):
            for cfg in schemes.main_schemes(levels):
                assert cfg.levels == levels
                assert cfg.n_real_blocks > 0

    def test_space_ratios_stable_across_scales(self):
        """The bottom-level fractions keep ratios ~invariant to L."""
        for levels in (16, 20, 24):
            base = schemes.baseline_cb(levels).tree_bytes
            ab = schemes.ab_scheme(levels).tree_bytes
            assert ab / base == pytest.approx(0.645, abs=0.01)
