"""Property-based tests for the memory substrate (layout + DRAM)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import schemes
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.mem.timing import DDR3_1600


class TestLayoutProperties:
    @settings(max_examples=30, deadline=None)
    @given(levels=st.integers(3, 10), data=st.data())
    def test_slot_addresses_unique_and_aligned(self, levels, data):
        cfg = schemes.ab_scheme(levels)
        lay = TreeLayout(cfg)
        seen = set()
        for _ in range(50):
            b = data.draw(st.integers(0, cfg.n_buckets - 1))
            lv = (b + 1).bit_length() - 1
            s = data.draw(st.integers(0, cfg.geometry[lv].z_total - 1))
            addr = lay.data_addr(b, s)
            assert addr % cfg.block_bytes == 0
            assert 0 <= addr < lay.data_bytes
            key = (b, s)
            if key not in seen:
                # Same (bucket, slot) -> same address; distinct -> distinct.
                assert lay.data_addr(b, s) == addr
            seen.add(key)

    @settings(max_examples=20, deadline=None)
    @given(levels=st.integers(3, 10))
    def test_data_and_metadata_regions_disjoint(self, levels):
        cfg = schemes.dr_scheme(levels)
        lay = TreeLayout(cfg, metadata_blocks=2)
        last_data = lay.data_addr(cfg.n_buckets - 1,
                                  cfg.geometry[-1].z_total - 1)
        assert last_data + cfg.block_bytes <= lay.meta_addr(0)
        assert lay.meta_addr(cfg.n_buckets - 1, 1) < lay.total_bytes

    @settings(max_examples=20, deadline=None)
    @given(levels=st.integers(3, 10))
    def test_whole_tree_is_tiled(self, levels):
        """Bucket spans tile [0, data_bytes) with no gaps or overlaps."""
        cfg = schemes.ns_scheme(levels)
        lay = TreeLayout(cfg)
        cursor = 0
        for b in range(cfg.n_buckets):
            assert lay.data_addr(b, 0) == cursor
            lv = (b + 1).bit_length() - 1
            cursor += cfg.geometry[lv].z_total * cfg.block_bytes
        assert cursor == lay.data_bytes


class TestAddressMappingProperties:
    @settings(max_examples=60, deadline=None)
    @given(addr=st.integers(0, 2**40),
           channels=st.sampled_from([1, 2, 4, 8]),
           banks=st.sampled_from([4, 8, 16]))
    def test_decompose_is_injective_per_line(self, addr, channels, banks):
        """(channel, bank, row, col) uniquely identifies the line."""
        m = AddressMapping(n_channels=channels, n_banks=banks)
        c, b, r, col = m.decompose(addr)
        line = ((r * banks + b) * m.lines_per_row + col) * channels + c
        assert line == (addr // m.line_bytes)

    @settings(max_examples=60, deadline=None)
    @given(addr=st.integers(0, 2**40))
    def test_coordinates_in_range(self, addr):
        m = AddressMapping()
        c, b, r, col = m.decompose(addr)
        assert 0 <= c < m.n_channels
        assert 0 <= b < m.n_banks
        assert 0 <= col < m.lines_per_row
        assert r >= 0


class TestDramProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(reqs=st.lists(
        st.tuples(st.integers(0, 2**20), st.booleans(),
                  st.floats(0, 1e6, allow_nan=False)),
        min_size=1, max_size=40,
    ))
    def test_completion_after_arrival(self, reqs):
        dram = DramModel()
        now = 0.0
        for addr, write, gap in reqs:
            now += gap
            done = dram.access(addr * 64, write, now)
            # Completion is strictly after arrival, by at least the burst.
            assert done >= now + DDR3_1600.burst_ns

    @settings(max_examples=25, deadline=None)
    @given(reqs=st.lists(st.integers(0, 2**16), min_size=2, max_size=40))
    def test_channel_bus_never_double_booked(self, reqs):
        """Completions on one channel are spaced by >= one burst."""
        m = AddressMapping(n_channels=1)
        dram = DramModel(mapping=m)
        times = sorted(dram.access(a * 64, False, 0.0) for a in reqs)
        for t1, t2 in zip(times, times[1:]):
            assert t2 - t1 >= DDR3_1600.burst_ns - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(reqs=st.lists(st.integers(0, 2**16), min_size=1, max_size=30))
    def test_stats_conserved(self, reqs):
        dram = DramModel()
        for a in reqs:
            dram.access(a * 64, False, 0.0)
        st_ = dram.stats
        assert st_.reads == len(reqs)
        assert st_.row_hits + st_.row_misses == len(reqs)
        assert st_.bytes_transferred == 64 * len(reqs)
