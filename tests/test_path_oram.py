"""Unit tests for the Path ORAM controller (repro.oram.path)."""

import numpy as np
import pytest

from repro.oram.path import PathOram, path_oram_config
from repro.oram.stats import CountingSink, OpKind


def make(levels=5, z=4, seed=0, **kw):
    cfg = path_oram_config(levels, z=z, stash_capacity=500)
    return PathOram(cfg, seed=seed, **kw), cfg


class TestConfig:
    def test_standard_shape(self):
        cfg = path_oram_config(5, z=4)
        assert cfg.z_max == 4
        assert all(g.s_reserved == 0 for g in cfg.geometry)

    def test_50_percent_utilization(self):
        cfg = path_oram_config(10, z=4)
        assert cfg.space_utilization == pytest.approx(0.5, abs=0.01)

    def test_rejects_ring_geometry(self):
        from repro.oram.config import OramConfig, uniform_geometry
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 3, 2))
        with pytest.raises(ValueError):
            PathOram(cfg)


class TestDataPath:
    def test_roundtrip(self):
        oram, _ = make(store_data=True)
        oram.write(3, "v")
        assert oram.read(3) == "v"

    def test_many_roundtrips(self):
        oram, cfg = make(store_data=True, seed=2)
        n = min(30, cfg.n_real_blocks)
        for i in range(n):
            oram.write(i, i)
        for i in range(n):
            assert oram.read(i) == i

    def test_out_of_range(self):
        oram, cfg = make()
        with pytest.raises(ValueError):
            oram.access(cfg.n_real_blocks)


class TestAccessCosts:
    def test_reads_full_path(self):
        oram, cfg = make()
        sink = CountingSink(cfg.levels)
        oram.sink = sink
        oram.access(0)
        assert sink.by_kind[OpKind.READ_PATH].data_reads == cfg.levels * 4

    def test_writes_full_path(self):
        oram, cfg = make()
        sink = CountingSink(cfg.levels)
        oram.sink = sink
        oram.access(0)
        assert sink.by_kind[OpKind.EVICT_PATH].data_writes == cfg.levels * 4

    def test_ring_online_cost_is_z_times_cheaper(self):
        """The headline Ring ORAM claim: 1 block/bucket vs Z'/bucket."""
        from conftest import tiny_config
        from repro.oram.ring import RingOram
        ring_cfg = tiny_config(levels=5, treetop_levels=0, evict_rate=10**6)
        ring_sink = CountingSink(5)
        ring = RingOram(ring_cfg, sink=ring_sink)
        ring.access(0)
        path_oram, path_cfg = make(levels=5)
        path_sink = CountingSink(5)
        path_oram.sink = path_sink
        path_oram.access(0)
        ring_online = ring_sink.by_kind[OpKind.READ_PATH].data_reads
        path_online = path_sink.by_kind[OpKind.READ_PATH].data_reads
        assert ring_online * 4 == path_online


class TestInvariants:
    def test_held_through_traffic(self):
        oram, cfg = make(seed=5, store_data=True)
        rng = np.random.default_rng(0)
        shadow = {}
        for i in range(200):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                shadow[blk] = i
                oram.write(blk, i)
            else:
                assert oram.read(blk) == shadow.get(blk)
        oram.check_invariants()

    def test_stash_stays_bounded(self):
        oram, cfg = make(levels=7, seed=3)
        for i in range(300):
            oram.access(i % cfg.n_real_blocks)
        # Path ORAM's celebrated property: tiny stash at 50% load.
        assert oram.stash.occupancy < 40

    def test_access_counter(self):
        oram, _ = make()
        for i in range(5):
            oram.access(i)
        assert oram.accesses == 5
