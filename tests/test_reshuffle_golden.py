"""Golden pins for the vectorized reshuffle write-back path.

The reshuffle hot path (``_refill_bucket`` / ``_early_reshuffle`` /
``_evict_path``) batches whole-bucket sink calls and takes RNG parity
draws instead of per-slot loops; these constants are the simulator's
outputs from *before* that rewrite, recorded at a fixed seed. Any
drift here means the fast path is no longer behaviour-preserving --
the optimization's contract is bit-identical statistics, so a change
in these numbers is a bug (or a deliberate protocol change that must
update the pins and the committed perf baselines together).

``exec_ns`` is included on purpose: it is a pure function of the DRAM
call sequence, so it pins the *order* of sink traffic, which the
counter fields alone would not.
"""

import pytest

from repro.core import schemes as schemes_mod
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace

LEVELS = 9
REQUESTS = 400
SEED = 3

# scheme -> (reshuffles_by_level, stash_peak, dead_blocks,
#            dram_reads, dram_writes, exec_ns)
GOLDEN = {
    "ring": (
        [80, 95, 100, 96, 97, 94, 93, 83, 80],
        30, 861, 6682, 7811, 145383.7544014085,
    ),
    "baseline": (
        [80, 94, 104, 98, 96, 93, 92, 84, 80],
        32, 852, 6670, 6005, 131498.01056338026,
    ),
    "ab": (
        [80, 94, 105, 109, 107, 111, 117, 112, 98],
        56, 397, 7270, 5801, 134647.2535211268,
    ),
    "ns": (
        [80, 94, 104, 96, 101, 92, 90, 100, 85],
        40, 785, 6808, 5842, 126045.25088028169,
    ),
}


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_sim_stats_match_prevectorization_goldens(scheme):
    cfg = schemes_mod.by_name(scheme, LEVELS)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, REQUESTS, seed=SEED)
    result = Simulation(
        cfg, trace, SimConfig(seed=SEED, warmup_requests=0)
    ).run()
    reshuffles, stash_peak, dead, reads, writes, exec_ns = GOLDEN[scheme]
    assert [int(x) for x in result.reshuffles_by_level] == reshuffles
    assert int(result.stash_peak) == stash_peak
    assert int(result.dead_blocks) == dead
    assert int(result.dram_reads) == reads
    assert int(result.dram_writes) == writes
    assert result.exec_ns == pytest.approx(exec_ns, rel=0, abs=1e-6)
