"""Golden pins for the vectorized reshuffle write-back path.

The reshuffle hot path (``_refill_bucket`` / ``_early_reshuffle`` /
``_evict_path``) batches whole-bucket sink calls and takes RNG parity
draws instead of per-slot loops; these constants are the simulator's
outputs from *before* that rewrite, recorded at a fixed seed. Any
drift here means the fast path is no longer behaviour-preserving --
the optimization's contract is bit-identical statistics, so a change
in these numbers is a bug (or a deliberate protocol change that must
update the pins and the committed perf baselines together).

``exec_ns`` is included on purpose: it is a pure function of the DRAM
call sequence, so it pins the *order* of sink traffic, which the
counter fields alone would not.
"""

import pytest

from repro.analysis.deadblocks import LifetimeTracker
from repro.core import schemes as schemes_mod
from repro.core.security import GuessingAttacker
from repro.oram.recovery import RobustnessConfig
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace

LEVELS = 9
REQUESTS = 400
SEED = 3

# scheme -> (reshuffles_by_level, stash_peak, dead_blocks,
#            dram_reads, dram_writes, exec_ns)
GOLDEN = {
    "ring": (
        [80, 95, 100, 96, 97, 94, 93, 83, 80],
        30, 861, 6682, 7811, 145383.7544014085,
    ),
    "baseline": (
        [80, 94, 104, 98, 96, 93, 92, 84, 80],
        32, 852, 6670, 6005, 131498.01056338026,
    ),
    "ab": (
        [80, 94, 105, 109, 107, 111, 117, 112, 98],
        56, 397, 7270, 5801, 134647.2535211268,
    ),
    "ns": (
        [80, 94, 104, 96, 101, 92, 90, 100, 85],
        40, 785, 6808, 5842, 126045.25088028169,
    ),
}


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_sim_stats_match_prevectorization_goldens(scheme):
    cfg = schemes_mod.by_name(scheme, LEVELS)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, REQUESTS, seed=SEED)
    result = Simulation(
        cfg, trace, SimConfig(seed=SEED, warmup_requests=0)
    ).run()
    reshuffles, stash_peak, dead, reads, writes, exec_ns = GOLDEN[scheme]
    assert [int(x) for x in result.reshuffles_by_level] == reshuffles
    assert int(result.stash_peak) == stash_peak
    assert int(result.dead_blocks) == dead
    assert int(result.dram_reads) == reads
    assert int(result.dram_writes) == writes
    assert result.exec_ns == pytest.approx(exec_ns, rel=0, abs=1e-6)


def test_ab_with_telemetry_matches_goldens(tmp_path):
    """Telemetry attached to the golden AB cell changes nothing.

    The TracingSink forwards the identical request stream to the DRAM
    model and the periodic snapshots only read state, so every golden
    pin must hold bit-for-bit with tracing on -- and the exported trace
    must be schema-valid with spans for all three operation classes.
    """
    import importlib.util
    import json
    import os

    from repro.telemetry import Telemetry, load_stream

    cfg = schemes_mod.by_name("ab", LEVELS)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, REQUESTS, seed=SEED)
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "trace.jsonl"
    telemetry = Telemetry(trace_path=str(trace_path),
                          metrics_path=str(metrics_path), metrics_every=100)
    result = Simulation(
        cfg, trace, SimConfig(seed=SEED, warmup_requests=0),
        telemetry=telemetry,
    ).run()
    telemetry.close()

    reshuffles, stash_peak, dead, reads, writes, exec_ns = GOLDEN["ab"]
    assert [int(x) for x in result.reshuffles_by_level] == reshuffles
    assert int(result.stash_peak) == stash_peak
    assert int(result.dead_blocks) == dead
    assert int(result.dram_reads) == reads
    assert int(result.dram_writes) == writes
    assert result.exec_ns == pytest.approx(exec_ns, rel=0, abs=1e-6)

    # The exported trace passes the same schema gate CI runs.
    tools = os.path.join(os.path.dirname(__file__), "..", "tools",
                         "check_trace.py")
    spec = importlib.util.spec_from_file_location("check_trace", tools)
    check_trace = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_trace)
    with open(trace_path) as f:
        doc = json.load(f)
    errors = check_trace.validate_trace(
        doc, require_kinds=("readPath", "evictPath", "earlyReshuffle"))
    assert errors == []

    # The JSONL stream carries the protocol-state snapshots.
    stream = load_stream(str(metrics_path))
    assert len(stream["snapshots"]) == REQUESTS // 100 + 1
    last = stream["snapshots"][-1]
    assert last["stash_peak"] == stash_peak
    assert last["reshuffles_total"] == sum(reshuffles)
    assert last["deadq_depth"]


def test_ab_with_datastore_and_observers_matches_goldens():
    """The AB cell with every optional layer attached, pinned.

    The bare-scheme goldens above run without a datastore or observers,
    which lets the hot path skip payload capture, per-slot observer
    events and integrity bookkeeping entirely. This cell turns all of
    it on -- sealed datastore with the integrity tree, a
    LifetimeTracker and a GuessingAttacker -- so the *general* refill
    path (extension acquire/write_remote, remote consumes, observer
    fan-out) is exercised end to end. The observer and datastore
    counters are pinned alongside the simulator stats: batching a
    reshuffle must not change how many events each layer sees, only
    how they are delivered.
    """
    cfg = schemes_mod.by_name("ab", LEVELS)
    trace = make_trace("spec", "mcf", cfg.n_real_blocks, REQUESTS, seed=SEED)
    tracker = LifetimeTracker(LEVELS)
    attacker = GuessingAttacker(LEVELS, seed=SEED)
    sim = Simulation(cfg, trace, SimConfig(
        seed=SEED, warmup_requests=0,
        robustness=RobustnessConfig(integrity=True),
        observers=[tracker, attacker],
    ))
    result = sim.run()

    # Simulator stats: identical to the bare AB golden -- the datastore
    # and observers are software layers off the DRAM timing path, so
    # attaching them must not move exec_ns by a single ULP.
    assert result.exec_ns == pytest.approx(
        134647.2535211268, rel=0, abs=1e-6)
    assert int(result.stash_peak) == 56
    assert int(result.dead_blocks) == 397

    # Observer counters: one event per reclaimed slot, batched or not.
    assert int(tracker.count.sum()) == 3477
    assert float(tracker.total.sum()) == 93810.0
    assert tracker.pending_dead() == 397
    assert attacker.guesses == 400
    assert attacker.correct == 36
    assert attacker.guess_histogram.tolist() == [
        43, 46, 46, 41, 46, 49, 44, 46, 39]

    # Datastore + integrity tree: seal_many must seal exactly the
    # slots the per-slot path sealed.
    rb = result.robustness
    assert rb["datastore"]["seals"] == 7449
    assert rb["datastore"]["opens"] == 2916
    assert rb["integrity"]["updates"] == 7449
    assert rb["integrity"]["verifications"] == 3316

    sim.oram.check_invariants()
