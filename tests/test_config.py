"""Unit tests for ORAM configuration (repro.oram.config)."""

import pytest

from repro.oram.config import (
    BucketGeometry,
    OramConfig,
    bottom_range,
    override_levels,
    scaled_treetop,
    uniform_geometry,
)


class TestBucketGeometry:
    def test_z_total(self):
        g = BucketGeometry(z_real=5, s_reserved=3)
        assert g.z_total == 8

    def test_sustain_with_overlap(self):
        g = BucketGeometry(5, 3, overlap=4)
        assert g.sustain_unextended == 7
        assert g.sustain == 7

    def test_sustain_with_extension(self):
        g = BucketGeometry(5, 1, overlap=4, remote_extension=2)
        assert g.sustain == 7
        assert g.sustain_unextended == 5

    def test_classic_ring_sustain(self):
        g = BucketGeometry(5, 7)
        assert g.sustain == 7
        assert g.z_total == 12

    def test_shrunk(self):
        g = BucketGeometry(5, 3, overlap=4)
        assert g.shrunk(2).s_reserved == 1
        assert g.shrunk(2).z_total == 6

    def test_shrunk_floors_at_zero(self):
        g = BucketGeometry(5, 3)
        assert g.shrunk(10).s_reserved == 0

    def test_rejects_zero_z_real(self):
        with pytest.raises(ValueError):
            BucketGeometry(0, 3)

    def test_rejects_negative_s(self):
        with pytest.raises(ValueError):
            BucketGeometry(5, -1)

    def test_rejects_overlap_above_z_real(self):
        with pytest.raises(ValueError):
            BucketGeometry(3, 2, overlap=4)

    def test_frozen(self):
        g = BucketGeometry(5, 3)
        with pytest.raises(Exception):
            g.z_real = 4


class TestOramConfigSizes:
    def test_bucket_count(self):
        cfg = OramConfig(levels=5, geometry=uniform_geometry(5, 5, 3))
        assert cfg.n_buckets == 31
        assert cfg.n_leaves == 16

    def test_buckets_at(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3))
        assert [cfg.buckets_at(lv) for lv in range(4)] == [1, 2, 4, 8]

    def test_total_slots_uniform(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3))
        assert cfg.total_slots == 15 * 8

    def test_total_slots_non_uniform(self):
        geom = override_levels(
            uniform_geometry(4, 5, 3), {3: BucketGeometry(5, 1)}
        )
        cfg = OramConfig(levels=4, geometry=geom)
        assert cfg.total_slots == 7 * 8 + 8 * 6

    def test_tree_bytes(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3))
        assert cfg.tree_bytes == 15 * 8 * 64

    def test_paper_tree_size(self):
        """(2^24 - 1) x 8 x 64B = 8GB (paper section VII)."""
        cfg = OramConfig(levels=24, geometry=uniform_geometry(24, 5, 3, overlap=4))
        assert cfg.tree_bytes == ((1 << 24) - 1) * 8 * 64

    def test_default_block_count_rule(self):
        """Half the Z' capacity of all buckets (the 2.5GB rule)."""
        cfg = OramConfig(levels=24, geometry=uniform_geometry(24, 5, 3, overlap=4))
        assert cfg.n_real_blocks == ((1 << 24) - 1) * 5 // 2

    def test_paper_utilization(self):
        cfg = OramConfig(levels=24, geometry=uniform_geometry(24, 5, 3, overlap=4))
        assert cfg.space_utilization == pytest.approx(0.3125, abs=1e-4)

    def test_level_capacity_fractions_sum_to_one(self):
        cfg = OramConfig(levels=6, geometry=uniform_geometry(6, 5, 3))
        total = sum(cfg.level_capacity_fraction(lv) for lv in range(6))
        assert total == pytest.approx(1.0)

    def test_bottom_levels_dominate(self):
        """The last 3 of 24 levels hold 87.5% of capacity (paper IV-B)."""
        cfg = OramConfig(levels=24, geometry=uniform_geometry(24, 5, 3))
        frac = sum(cfg.level_capacity_fraction(lv) for lv in (21, 22, 23))
        assert frac == pytest.approx(0.875, abs=0.001)


class TestOramConfigValidation:
    def test_geometry_length_mismatch(self):
        with pytest.raises(ValueError):
            OramConfig(levels=5, geometry=uniform_geometry(4, 5, 3))

    def test_too_few_levels(self):
        with pytest.raises(ValueError):
            OramConfig(levels=1, geometry=uniform_geometry(1, 5, 3))

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                       utilization=0.0)

    def test_bad_treetop(self):
        with pytest.raises(ValueError):
            OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                       treetop_levels=4)

    def test_bad_deadq_levels(self):
        with pytest.raises(ValueError):
            OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                       deadq_levels=(5,))

    def test_bad_evict_rate(self):
        with pytest.raises(ValueError):
            OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                       evict_rate=0)

    def test_background_threshold_defaults_below_capacity(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                         stash_capacity=300)
        assert 0 < cfg.background_evict_threshold < 300

    def test_explicit_n_real_blocks(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                         n_real_blocks=10)
        assert cfg.n_real_blocks == 10


class TestHelpers:
    def test_override_levels(self):
        geom = override_levels(
            uniform_geometry(4, 5, 3), {2: BucketGeometry(5, 1)}
        )
        assert geom[2].s_reserved == 1
        assert geom[0].s_reserved == 3

    def test_override_out_of_range(self):
        with pytest.raises(ValueError):
            override_levels(uniform_geometry(4, 5, 3), {4: BucketGeometry(5, 1)})

    def test_scaled_treetop_paper_identity(self):
        assert scaled_treetop(24) == 10

    def test_scaled_treetop_half(self):
        assert scaled_treetop(12) == 5

    def test_scaled_treetop_bounds(self):
        for levels in range(2, 30):
            t = scaled_treetop(levels)
            assert 1 <= t < levels

    def test_bottom_range(self):
        assert bottom_range(24, 6) == (18, 19, 20, 21, 22, 23)
        assert bottom_range(24, 2) == (22, 23)

    def test_bottom_range_clamps(self):
        assert bottom_range(4, 10) == (0, 1, 2, 3)
        assert bottom_range(4, 0) == ()

    def test_describe_mentions_spans(self):
        cfg = OramConfig(levels=4, geometry=uniform_geometry(4, 5, 3),
                         name="x")
        text = cfg.describe()
        assert "x" in text
        assert "L0-L3" in text
