"""Tests for the parallel sweep executor (repro.parallel).

The spawn-crossing task functions live in ``repro.parallel.testing``
(workers import tasks by module path; test-local functions cannot
cross the process boundary). Everything here runs on a tiny scale --
the point is the merge/isolation/progress semantics, not throughput.
"""

import json
import time

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.campaign import smoke_config as faults_smoke_config
from repro.parallel import Cell, CellResult, derive_seed, run_cells
from repro.parallel import testing as ptasks
from repro.perf.compare import EXIT_ERROR, compare_reports
from repro.perf.runner import run_perf, smoke_config
from repro.perf.schema import validate_report


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(0, "ring/mcf") == derive_seed(0, "ring/mcf")

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(0, f"cell-{i}") for i in range(64)}
        assert len(seeds) == 64

    def test_base_seed_matters(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_fits_in_nonnegative_int64(self):
        for i in range(32):
            s = derive_seed(i, "k")
            assert 0 <= s < 2**63


class TestRunCells:
    def test_serial_ordered_results(self):
        cells = [Cell(f"c{i}", i) for i in range(5)]
        out = run_cells(ptasks.square_task, cells, workers=1)
        assert [r.value for r in out] == [0, 1, 4, 9, 16]
        assert [r.key for r in out] == [c.key for c in cells]
        assert all(isinstance(r, CellResult) and r.ok for r in out)

    def test_parallel_matches_serial(self):
        cells = [Cell(f"c{i}", i) for i in range(6)]
        serial = run_cells(ptasks.square_task, cells, workers=1)
        par = run_cells(ptasks.square_task, cells, workers=2)
        assert [(r.key, r.ok, r.value) for r in par] == \
            [(r.key, r.ok, r.value) for r in serial]

    def test_seeded_task_is_schedule_independent(self):
        cells = [Cell(f"s{i}", (9, f"s{i}")) for i in range(4)]
        serial = run_cells(ptasks.seeded_task, cells, workers=1)
        par = run_cells(ptasks.seeded_task, cells, workers=2)
        assert [r.value for r in par] == [r.value for r in serial]

    def test_raising_cell_becomes_error_entry(self):
        cells = [Cell("a", "fine"), Cell("b", "boom"), Cell("c", "ok")]
        for workers in (1, 2):
            out = run_cells(ptasks.failing_task, cells, workers=workers)
            assert [r.ok for r in out] == [True, False, True]
            assert "ValueError: requested failure" in out[1].error
            assert out[0].value == "fine" and out[2].value == "ok"

    def test_hard_crash_is_confined_to_its_cell(self):
        # os._exit kills the worker without cleanup -- the pool breaks,
        # and the executor must still finish every other cell and
        # charge the crash to exactly the cell that caused it.
        cells = [Cell("a", 1), Cell("b", "die"), Cell("c", 3), Cell("d", 4)]
        out = run_cells(ptasks.hard_exit_task, cells, workers=2)
        assert [r.key for r in out] == ["a", "b", "c", "d"]
        assert not out[1].ok and "died" in out[1].error
        assert [r.value for r in out if r.ok] == [1, 3, 4]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_cells(ptasks.echo_task, [Cell("x", 1), Cell("x", 2)])

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_cells(ptasks.echo_task, [Cell("x", 1)], workers=0)

    def test_empty_cells(self):
        assert run_cells(ptasks.echo_task, [], workers=2) == []

    def test_progress_lambda_never_pickled(self):
        # A lambda cannot cross a process boundary; delivery proves the
        # callback stayed in the parent and only queue messages crossed.
        msgs = []
        out = run_cells(
            ptasks.progress_task,
            [Cell(f"p{i}", i) for i in range(4)],
            workers=2,
            progress=lambda m: msgs.append(m),
        )
        assert all(r.ok for r in out)
        deadline = time.monotonic() + 5.0
        while len(msgs) < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sorted(msgs) == [f"cell {i} running" for i in range(4)]

    def test_progress_in_serial_mode(self):
        msgs = []
        run_cells(
            ptasks.progress_task,
            [Cell(f"p{i}", i) for i in range(3)],
            workers=1,
            progress=msgs.append,
        )
        assert msgs == [f"cell {i} running" for i in range(3)]


def _tiny_perf(**overrides):
    base = dict(
        schemes=("ring",),
        benchmarks=("mcf",),
        levels=8,
        n_requests=150,
        warmup_requests=30,
    )
    base.update(overrides)
    return smoke_config(**base)


class TestPerfHarness:
    def test_failed_cell_becomes_error_entry(self):
        # An unknown scheme raises inside the cell task; the sweep must
        # finish its other cells and record the failure in place.
        doc = run_perf(_tiny_perf(schemes=("ring", "nosuchscheme")))
        assert validate_report(doc) == []
        by_scheme = {c["scheme"]: c for c in doc["cells"]}
        assert "sim" in by_scheme["ring"]
        assert "error" in by_scheme["nosuchscheme"]
        assert "sim" not in by_scheme["nosuchscheme"]

    def test_error_cell_gates_compare_as_error(self):
        good = run_perf(_tiny_perf())
        bad = json.loads(json.dumps(good))
        bad["cells"][0] = {
            "scheme": bad["cells"][0]["scheme"],
            "trace": bad["cells"][0]["trace"],
            "error": "Boom: worker fell over",
        }
        assert validate_report(bad) == []
        code, messages = compare_reports(good, bad)
        assert code == EXIT_ERROR
        assert any("errored" in m for m in messages)


class TestFaultsHarness:
    def test_parallel_campaign_byte_identical(self):
        # The faults report has no wall-clock fields, so the whole JSON
        # document -- not just per-cell stats -- must match exactly.
        cfg = dict(levels=8, n_requests=120, kinds=("bit_flip", "dropped_write"))
        serial = run_campaign(faults_smoke_config(**cfg))
        par = run_campaign(faults_smoke_config(workers=2, **cfg))
        dump = lambda d: json.dumps(d, indent=1, sort_keys=True)  # noqa: E731
        assert dump(serial) == dump(par)
