"""Tests for trace composition (repro.traces.mix)."""

import pytest

from repro.traces.mix import concat, interleave
from repro.traces.spec import spec_trace
from repro.traces.trace import Trace, TraceRequest


def make(name, n, read_mpki, write_mpki, base=0):
    reqs = [TraceRequest(base + i, i % 2 == 0) for i in range(n)]
    return Trace(name, reqs, read_mpki, write_mpki)


class TestConcat:
    def test_length_is_sum(self):
        t = concat([make("a", 10, 1, 1), make("b", 20, 1, 1)])
        assert len(t) == 30

    def test_order_preserved(self):
        a = make("a", 3, 1, 1, base=0)
        b = make("b", 2, 1, 1, base=100)
        t = concat([a, b])
        assert [r.block for r in t] == [0, 1, 2, 100, 101]

    def test_mpki_weighted_blend(self):
        a = make("a", 100, 10.0, 0.1)
        b = make("b", 300, 2.0, 0.1)
        t = concat([a, b])
        assert t.read_mpki == pytest.approx((10 * 100 + 2 * 300) / 400)

    def test_default_name(self):
        t = concat([make("a", 2, 1, 1), make("b", 2, 1, 1)])
        assert t.name == "a+b"
        assert t.suite == "mix"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])


class TestInterleave:
    def test_single_trace_passthrough(self):
        a = make("a", 5, 1, 1)
        assert interleave([a]) is a

    def test_rates_sum(self):
        a = make("a", 50, 2.0, 1.0)
        b = make("b", 50, 4.0, 1.0)
        t = interleave([a, b])
        assert t.total_mpki == pytest.approx(8.0)

    def test_faster_stream_appears_more_often(self):
        slow = make("slow", 200, 1.0, 0.001, base=0)
        fast = make("fast", 200, 4.0, 0.001, base=1000)
        t = interleave([slow, fast])
        head = t.requests[: len(t) // 2]
        fast_share = sum(1 for r in head if r.block >= 1000) / len(head)
        assert fast_share > 0.6

    def test_both_streams_represented(self):
        a = make("a", 60, 1.0, 0.1, base=0)
        b = make("b", 60, 1.0, 0.1, base=500)
        t = interleave([a, b])
        blocks = {r.block for r in t}
        assert any(x < 500 for x in blocks)
        assert any(x >= 500 for x in blocks)

    def test_drives_simulator(self):
        from repro.core import schemes
        from repro.sim import SimConfig, simulate
        cfg = schemes.ab_scheme(8)
        a = spec_trace("mcf", cfg.n_real_blocks, 100, seed=1)
        b = spec_trace("gcc", cfg.n_real_blocks, 100, seed=2)
        t = interleave([a, b])
        result = simulate(cfg, t, SimConfig(seed=1))
        assert result.exec_ns > 0
        assert result.trace == "mcf||gcc"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave([])
