"""Regression net: every scheme x several scales, invariants + data.

A cheap but wide matrix that catches regressions anywhere in the
protocol stack: each cell runs mixed traffic with a shadow dict and
finishes with the full invariant check. Path ORAM joins via the same
differential harness.
"""

import numpy as np
import pytest

from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.oram.linear import LinearScanOram
from repro.oram.path import PathOram, path_oram_config

SCHEMES = ["baseline", "ir", "dr", "dr-perf", "ns", "ab", "ring"]
LEVELS = [6, 9]


def mixed_traffic(oram, n_blocks, n_ops, seed):
    shadow = {}
    rng = np.random.default_rng(seed)
    for i in range(n_ops):
        blk = int(rng.integers(n_blocks))
        if rng.random() < 0.5:
            shadow[blk] = i
            oram.access(blk, write=True, value=i)
        else:
            assert oram.access(blk) == shadow.get(blk)
    return shadow


class TestSchemeMatrix:
    @pytest.mark.parametrize("levels", LEVELS)
    @pytest.mark.parametrize("name", SCHEMES)
    def test_scheme_sound_under_traffic(self, name, levels):
        cfg = schemes.by_name(name, levels)
        oram = build_oram(cfg, seed=42, store_data=True)
        oram.warm_fill()
        mixed_traffic(oram, cfg.n_real_blocks, 180, seed=7)
        oram.check_invariants()

    @pytest.mark.parametrize("name", SCHEMES)
    def test_scheme_cold_start_sound(self, name):
        """Without warm_fill: blocks materialize on first touch."""
        cfg = schemes.by_name(name, 6)
        oram = build_oram(cfg, seed=1, store_data=True)
        mixed_traffic(oram, cfg.n_real_blocks, 120, seed=3)
        oram.check_invariants()


class TestPathOramDifferential:
    def test_path_oram_matches_scan(self):
        cfg = path_oram_config(6, z=4, stash_capacity=500)
        path = PathOram(cfg, seed=2, store_data=True)
        scan = LinearScanOram(cfg.n_real_blocks)
        rng = np.random.default_rng(5)
        for i in range(250):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                path.write(blk, i)
                scan.write(blk, i)
            else:
                assert path.read(blk) == scan.read(blk)
        path.check_invariants()
