"""Linear-scan ORAM tests + differential oracle checks against Ring.

The scan ORAM is simple enough to be obviously correct, which makes it
the perfect oracle: replay one random workload against the scan and
against Ring ORAM (with and without AB extensions, with and without the
encrypted store) and require identical read results everywhere.
"""

import numpy as np
import pytest

from conftest import tiny_ab_config

from repro.core.ab_oram import build_oram
from repro.oram.datastore import EncryptedTreeStore
from repro.oram.linear import LinearScanOram
from repro.oram.stats import CountingSink, OpKind


class TestLinearScan:
    def test_roundtrip(self):
        oram = LinearScanOram(16)
        oram.write(3, "v")
        assert oram.read(3) == "v"
        assert oram.read(4) is None

    def test_out_of_range(self):
        oram = LinearScanOram(4)
        with pytest.raises(ValueError):
            oram.access(4)
        with pytest.raises(ValueError):
            LinearScanOram(0)

    def test_touches_everything_every_time(self):
        sink = CountingSink(1)
        oram = LinearScanOram(16, sink=sink)
        oram.read(0)
        oram.write(5, 1)
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.data_reads == 2 * 16
        assert c.data_writes == 2 * 16
        assert oram.accesses_per_request == 32

    def test_trace_is_access_independent(self):
        """The defining property: identical traffic for any request."""
        a, b = CountingSink(1), CountingSink(1)
        o1 = LinearScanOram(16, sink=a)
        o2 = LinearScanOram(16, sink=b)
        o1.read(0)
        o2.write(15, "x")
        assert a.summary() == b.summary()


def workload(n_blocks, n_ops, seed):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        blk = int(rng.integers(n_blocks))
        if rng.random() < 0.5:
            ops.append(("w", blk, f"v{i}"))
        else:
            ops.append(("r", blk, None))
    return ops


class TestDifferentialOracle:
    def _check_against_scan(self, ring, n_blocks, to_ring_value,
                            from_ring_value, seed):
        scan = LinearScanOram(n_blocks)
        for op, blk, val in workload(n_blocks, 300, seed):
            if op == "w":
                scan.write(blk, val)
                ring.access(blk, write=True, value=to_ring_value(val))
            else:
                expect = scan.read(blk)
                got = from_ring_value(ring.access(blk))
                assert got == expect, (blk, got, expect)
        ring.check_invariants()

    def test_plain_ring_matches_scan(self, cfg_small):
        ring = build_oram(cfg_small, seed=1, store_data=True)
        ring.warm_fill()
        self._check_against_scan(
            ring, cfg_small.n_real_blocks,
            to_ring_value=lambda v: v,
            from_ring_value=lambda v: v,
            seed=11,
        )

    def test_ab_ring_matches_scan(self, cfg_ab_small):
        ring = build_oram(cfg_ab_small, seed=1, store_data=True)
        ring.warm_fill()
        self._check_against_scan(
            ring, cfg_ab_small.n_real_blocks,
            to_ring_value=lambda v: v,
            from_ring_value=lambda v: v,
            seed=12,
        )

    def test_encrypted_ab_ring_matches_scan(self):
        cfg = tiny_ab_config(levels=5)
        ds = EncryptedTreeStore(cfg, b"oracle test key!", seed=2)
        ring = build_oram(cfg, seed=2, datastore=ds)
        ring.warm_fill()

        def to_ring(v):
            return v.encode()

        def from_ring(raw):
            if raw is None:
                return None
            stripped = bytes(raw).rstrip(b"\x00")
            # A never-written block decrypts to all-zero padding.
            return stripped.decode() if stripped else None

        self._check_against_scan(
            ring, cfg.n_real_blocks,
            to_ring_value=to_ring,
            from_ring_value=from_ring,
            seed=13,
        )


class TestLatencyPercentiles:
    def test_percentiles_populated_and_ordered(self):
        from repro.core import schemes
        from repro.sim import SimConfig, simulate
        from repro.traces.spec import spec_trace
        cfg = schemes.ab_scheme(8)
        trace = spec_trace("mcf", cfg.n_real_blocks, 200, seed=3)
        r = simulate(cfg, trace, SimConfig(seed=3))
        assert 0 < r.readpath_p50_ns <= r.readpath_p99_ns
        assert r.readpath_p99_ns < r.exec_ns
