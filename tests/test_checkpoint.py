"""Tests for crash-resumable simulation (repro.sim.checkpoint)."""

import pickle

import pytest

from repro.core import schemes as schemes_mod
from repro.faults.plan import FaultPlan
from repro.oram.recovery import RobustnessConfig
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace


def _fresh(requests=120, fault_plan=None, robustness=None):
    scheme = schemes_mod.by_name("ring", 7)
    trace = make_trace("spec", "mcf", scheme.n_real_blocks, requests, seed=0)
    sim = SimConfig(seed=0, robustness=robustness, fault_plan=fault_plan)
    return Simulation(scheme, trace, sim)


class TestCheckpointRoundtrip:
    def test_resume_is_bit_identical(self, tmp_path):
        """Stop a run halfway, reload the checkpoint, finish: the result
        dict must equal the uninterrupted run's exactly."""
        baseline = _fresh().run()
        sim = _fresh()
        for _ in range(60):
            sim.step()
        path = tmp_path / "ck.pkl"
        save_checkpoint(sim, path)
        resumed = load_checkpoint(path)
        assert resumed.position == 60
        result = resumed.run()
        assert result.to_dict() == baseline.to_dict()

    def test_resume_with_faults_is_bit_identical(self, tmp_path):
        """The fault wrapper's ledgers (history, outstanding drops,
        outage state) ride inside the checkpoint too."""
        plan = FaultPlan(seed=0, rates={"bit_flip": 0.01})
        rcfg = RobustnessConfig(integrity=True)
        baseline = _fresh(fault_plan=plan, robustness=rcfg).run()
        sim = _fresh(fault_plan=plan, robustness=rcfg)
        for _ in range(50):
            sim.step()
        path = tmp_path / "ck.pkl"
        save_checkpoint(sim, path)
        result = load_checkpoint(path).run()
        assert result.to_dict() == baseline.to_dict()

    def test_run_emits_periodic_checkpoints(self, tmp_path):
        path = tmp_path / "ck.pkl"
        sim = _fresh()
        sim.run(checkpoint_every=40, checkpoint_path=str(path))
        resumed = load_checkpoint(path)
        assert resumed.position == 80  # the last multiple of 40 before done

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint path"):
            _fresh().run(checkpoint_every=10)
        with pytest.raises(ValueError):
            _fresh().run(checkpoint_every=-1, checkpoint_path="x")


class TestCheckpointValidation:
    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"\x00\x01definitely not a pickle")
        with pytest.raises(ValueError, match="not a simulation checkpoint"):
            load_checkpoint(path)

    def test_wrong_payload_rejected(self, tmp_path):
        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(ValueError, match="not a simulation checkpoint"):
            load_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "future.pkl"
        path.write_bytes(pickle.dumps({
            "magic": "repro-sim-checkpoint", "format": 99,
        }))
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            load_checkpoint(path)

    def test_non_simulation_payload_rejected(self, tmp_path):
        path = tmp_path / "shape.pkl"
        path.write_bytes(pickle.dumps({
            "magic": "repro-sim-checkpoint", "format": 1,
            "simulation": "not a Simulation",
        }))
        with pytest.raises(ValueError, match="expected Simulation"):
            load_checkpoint(path)

    def test_atomic_write_leaves_no_temp(self, tmp_path):
        path = tmp_path / "ck.pkl"
        sim = _fresh()
        save_checkpoint(sim, path)
        assert path.exists()
        assert not (tmp_path / "ck.pkl.tmp").exists()


class TestInterruptedCampaignRun:
    def test_crash_mid_fault_campaign_resumes_byte_identical(self, tmp_path):
        """Kill a periodically-checkpointing fault-campaign run partway
        through (as a crash or ctrl-C would), resume from the file it
        left on disk, and require the finished result byte-identical to
        the uninterrupted run -- the ledger state a campaign cell is
        computed from (fault history, outage state, recovery counters)
        must all ride inside the checkpoint."""
        import json

        plan = FaultPlan(
            seed=3, rates={"bit_flip": 0.005, "unavailable": 0.01},
            max_outage_ops=2,
        )
        rcfg = RobustnessConfig(integrity=True, retry_budget=4)
        baseline = _fresh(fault_plan=plan, robustness=rcfg).run()

        sim = _fresh(fault_plan=plan, robustness=rcfg)
        path = tmp_path / "campaign-ck.pkl"
        # The checkpointing loop of Simulation.run, crashed partway
        # between two periodic saves.
        with pytest.raises(KeyboardInterrupt):
            while sim.step():
                if not sim.done and sim.position % 25 == 0:
                    save_checkpoint(sim, path)
                if sim.position > 77:
                    raise KeyboardInterrupt

        resumed = load_checkpoint(path)
        assert 0 < resumed.position < 120
        assert resumed.position % 25 == 0
        result = resumed.run()
        base_bytes = json.dumps(baseline.to_dict(), sort_keys=True).encode()
        res_bytes = json.dumps(result.to_dict(), sort_keys=True).encode()
        assert res_bytes == base_bytes
