"""Tests for the DRAM substrate (repro.mem)."""

import pytest

from repro.core import schemes
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.mem.timing import DDR3_1066, DDR3_1600, IDEAL_BUS, DramTiming


class TestTiming:
    def test_column_latency_read_vs_write(self):
        assert DDR3_1600.column_ns(False) == 13.75
        assert DDR3_1600.column_ns(True) == 10.0

    def test_recovery_only_for_writes(self):
        assert DDR3_1600.recovery_ns(False) == 0.0
        assert DDR3_1600.recovery_ns(True) == 15.0

    def test_turnaround_same_direction_free(self):
        assert DDR3_1600.turnaround_ns(False, False) == 0.0
        assert DDR3_1600.turnaround_ns(True, True) == 0.0

    def test_turnaround_switching(self):
        assert DDR3_1600.turnaround_ns(True, False) == DDR3_1600.t_wtr
        assert DDR3_1600.turnaround_ns(False, True) == DDR3_1600.t_rtw

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DramTiming(t_ck=1, t_cas=-1, t_cwd=1, t_rcd=1, t_rp=1, t_wr=1,
                       burst_ns=1, t_rrd=0, t_wtr=0, t_rtw=0)

    def test_presets_exist(self):
        for preset in (DDR3_1600, DDR3_1066, IDEAL_BUS):
            assert preset.burst_ns > 0

    @pytest.mark.parametrize(
        "preset", [DDR3_1600, DDR3_1066, IDEAL_BUS],
        ids=["ddr3_1600", "ddr3_1066", "ideal_bus"])
    def test_hoisted_model_constants_match_timing_source(self, preset):
        """The hot-path copies in DramModel track mem/timing exactly.

        ``DramModel.__init__`` hoists every timing field (and the
        address-mapping geometry) into ``_``-prefixed attributes so the
        per-access loops skip dataclass attribute lookups. The
        dataclasses in ``repro.mem.timing`` stay the single source of
        truth; this asserts each hoisted copy agrees with its source
        field, so a new timing parameter (or a renamed one) cannot
        silently fork the two definitions.
        """
        mapping = AddressMapping()
        model = DramModel(timing=preset, mapping=mapping)
        for field in ("t_refi", "t_rp", "t_rrd", "t_rcd", "t_cas",
                      "t_cwd", "t_wtr", "t_rtw", "t_wr", "burst_ns"):
            assert getattr(model, f"_{field}") == getattr(preset, field), field
        for field in ("line_bytes", "n_channels", "lines_per_row",
                      "n_banks"):
            assert getattr(model, f"_{field}") == getattr(mapping, field), field


class TestAddressMapping:
    def test_channel_interleaving_at_line_granularity(self):
        m = AddressMapping(n_channels=4)
        channels = [m.channel_of(64 * i) for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_line_same_coordinates(self):
        m = AddressMapping()
        assert m.decompose(100) == m.decompose(64)

    def test_rows_change_after_row_span(self):
        m = AddressMapping(n_channels=1, n_banks=1, row_bytes=256)
        _, _, row0, _ = m.decompose(0)
        _, _, row1, _ = m.decompose(256)
        assert row1 == row0 + 1

    def test_consecutive_lines_in_channel_share_row(self):
        m = AddressMapping(n_channels=2, row_bytes=1024)
        c0, b0, r0, col0 = m.decompose(0)
        c1, b1, r1, col1 = m.decompose(128)  # next line on channel 0
        assert (c0, b0, r0) == (c1, b1, r1)
        assert col1 == col0 + 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping().decompose(-64)

    def test_row_bytes_multiple_of_line(self):
        with pytest.raises(ValueError):
            AddressMapping(row_bytes=100)


class TestDramModel:
    def test_row_miss_then_hit(self):
        dram = DramModel()
        t1 = dram.access(0, False, 0.0)
        t2 = dram.access(64 * 4, False, t1)  # same channel 0, next column
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 1
        # The hit is served faster than the miss.
        assert (t2 - t1) < t1

    def test_different_channels_overlap(self):
        dram = DramModel()
        t1 = dram.access(0, False, 0.0)
        t2 = dram.access(64, False, 0.0)  # channel 1
        assert t2 == pytest.approx(t1)

    def test_same_bank_serializes(self):
        dram = DramModel()
        m = dram.mapping
        # Two lines in the same bank but different rows -> conflict.
        m.n_channels * m.row_bytes * 0  # same row actually
        a = 0
        b = m.n_channels * m.row_bytes * m.n_banks  # same bank, next row
        t1 = dram.access(a, False, 0.0)
        t2 = dram.access(b, False, 0.0)
        assert t2 > t1

    def test_completion_monotonic_per_channel(self):
        dram = DramModel()
        times = [dram.access(64 * 4 * i, False, 0.0) for i in range(10)]
        assert times == sorted(times)

    def test_write_read_turnaround_penalty(self):
        fast = DramModel()
        fast.access(0, True, 0.0)
        t_after_write = fast.access(64 * 4, False, 0.0)
        clean = DramModel()
        clean.access(0, False, 0.0)
        t_after_read = clean.access(64 * 4, False, 0.0)
        assert t_after_write > t_after_read

    def test_activation_throttle(self):
        """Row misses on one channel cannot activate faster than tRRD."""
        dram = DramModel()
        m = dram.mapping
        m.n_channels * m.row_bytes * m.n_banks  # new row, same-ish
        # Hit different banks to avoid bank serialization; all misses.
        addrs = [m.row_bytes * m.n_channels * b for b in range(8)]
        for a in addrs:
            dram.access(a, False, 0.0)
        busy_span = dram.frontier_ns
        assert busy_span >= DDR3_1600.t_rrd * (len(addrs) - 1)

    def test_stats_bytes(self):
        dram = DramModel()
        for i in range(5):
            dram.access(64 * i, False, 0.0)
        assert dram.stats.bytes_transferred == 5 * 64

    def test_burst_batch(self):
        dram = DramModel()
        done = dram.access_burst([0, 64, 128], [False] * 3, 10.0)
        assert done > 10.0
        assert dram.stats.reads == 3

    def test_burst_length_mismatch(self):
        with pytest.raises(ValueError):
            DramModel().access_burst([0], [False, True], 0.0)

    def test_bandwidth(self):
        dram = DramModel()
        dram.access(0, False, 0.0)
        assert dram.bandwidth_gbps(64.0) == pytest.approx(1.0)
        assert dram.bandwidth_gbps(0.0) == 0.0

    def test_refresh_closes_rows(self):
        dram = DramModel()
        t = dram.timing
        dram.access(0, False, 0.0)             # opens a row
        # Same line long after a refresh window: must be a miss again.
        dram.access(0, False, t.t_refi * 2 + 1.0)
        assert dram.stats.row_misses == 2
        assert dram.stats.refreshes >= 1

    def test_refresh_stalls_banks(self):
        dram = DramModel()
        t = dram.timing
        arrival = t.t_refi + 0.5  # just after the refresh fires
        done = dram.access(0, False, arrival)
        assert done >= t.t_refi + t.t_rfc

    def test_no_refresh_when_disabled(self):
        dram = DramModel(IDEAL_BUS)
        dram.access(0, False, 0.0)
        dram.access(0, False, 1e9)
        assert dram.stats.refreshes == 0
        assert dram.stats.row_hits == 1

    def test_ideal_bus_is_faster(self):
        """The ablation profile must strictly lower total latency."""
        real, ideal = DramModel(DDR3_1600), DramModel(IDEAL_BUS)
        addrs = [i * 64 for i in range(64)]
        t_real = max(real.access(a, i % 2 == 0, 0.0) for i, a in enumerate(addrs))
        t_ideal = max(ideal.access(a, i % 2 == 0, 0.0) for i, a in enumerate(addrs))
        assert t_ideal <= t_real


class TestTreeLayout:
    @pytest.fixture
    def cfg(self):
        return schemes.ab_scheme(8)

    def test_slots_contiguous_within_bucket(self, cfg):
        lay = TreeLayout(cfg)
        assert lay.data_addr(0, 1) - lay.data_addr(0, 0) == 64

    def test_buckets_sized_by_level(self, cfg):
        lay = TreeLayout(cfg)
        # Root bucket Z=8 -> next bucket starts 8 lines later.
        assert lay.data_addr(1, 0) - lay.data_addr(0, 0) == 8 * 64

    def test_nonuniform_spans(self, cfg):
        lay = TreeLayout(cfg)
        leaf_first = (1 << (cfg.levels - 1)) - 1
        span = lay.data_addr(leaf_first + 1, 0) - lay.data_addr(leaf_first, 0)
        assert span == cfg.geometry[-1].z_total * 64

    def test_data_bytes_matches_config(self, cfg):
        lay = TreeLayout(cfg)
        assert lay.data_bytes == cfg.tree_bytes

    def test_metadata_after_data(self, cfg):
        lay = TreeLayout(cfg, metadata_blocks=1)
        assert lay.meta_addr(0) == lay.data_bytes
        assert lay.meta_addr(1) - lay.meta_addr(0) == 64

    def test_metadata_blocks_stride(self, cfg):
        lay = TreeLayout(cfg, metadata_blocks=2)
        assert lay.meta_addr(1) - lay.meta_addr(0) == 128
        assert lay.meta_addr(0, block=1) - lay.meta_addr(0) == 64

    def test_total_bytes(self, cfg):
        lay = TreeLayout(cfg, metadata_blocks=1)
        assert lay.total_bytes == lay.data_bytes + cfg.n_buckets * 64

    def test_base_addr_offset(self, cfg):
        lay = TreeLayout(cfg, base_addr=1 << 20)
        assert lay.data_addr(0, 0) == 1 << 20

    def test_bucket_out_of_range(self, cfg):
        lay = TreeLayout(cfg)
        with pytest.raises(ValueError):
            lay.data_addr(cfg.n_buckets, 0)
        with pytest.raises(ValueError):
            lay.meta_addr(-1)

    def test_no_overlapping_buckets(self, cfg):
        from repro.oram.tree import level_of
        lay = TreeLayout(cfg)
        prev_end = 0
        for b in range(min(cfg.n_buckets, 64)):
            start = lay.data_addr(b, 0)
            assert start == prev_end
            prev_end = start + cfg.geometry[level_of(b)].z_total * 64
