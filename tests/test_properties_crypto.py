"""Property-based tests for the crypto boundary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.auth import AuthenticationError
from repro.crypto.chacha import ChaCha20
from repro.crypto.engine import SecureBlockEngine
from repro.crypto.integrity import BucketMerkleTree, IntegrityError

ENGINE = SecureBlockEngine(b"property test master key")

ADDRS = st.integers(0, 2**48)
VERSIONS = st.integers(0, 2**31)
BLOCKS = st.binary(min_size=64, max_size=64)


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(addr=ADDRS, version=VERSIONS, pt=BLOCKS)
    def test_seal_open_roundtrip(self, addr, version, pt):
        ct, tag = ENGINE.seal(addr, version, pt)
        assert ENGINE.open(addr, version, ct, tag) == pt

    @settings(max_examples=60, deadline=None)
    @given(addr=ADDRS, version=VERSIONS, pt=BLOCKS,
           flip=st.integers(0, 63), bit=st.integers(0, 7))
    def test_any_single_bit_flip_detected(self, addr, version, pt, flip, bit):
        ct, tag = ENGINE.seal(addr, version, pt)
        bad = bytearray(ct)
        bad[flip] ^= 1 << bit
        with pytest.raises(AuthenticationError):
            ENGINE.open(addr, version, bytes(bad), tag)

    @settings(max_examples=40, deadline=None)
    @given(addr=ADDRS, version=VERSIONS, pt=BLOCKS, other=ADDRS)
    def test_splice_to_other_address_detected(self, addr, version, pt, other):
        if other == addr:
            other += 64
        ct, tag = ENGINE.seal(addr, version, pt)
        with pytest.raises(AuthenticationError):
            ENGINE.open(other, version, ct, tag)

    @settings(max_examples=40, deadline=None)
    @given(addr=ADDRS, version=st.integers(0, 2**31 - 2), pt=BLOCKS)
    def test_version_replay_detected(self, addr, version, pt):
        ct, tag = ENGINE.seal(addr, version, pt)
        with pytest.raises(AuthenticationError):
            ENGINE.open(addr, version + 1, ct, tag)

    @settings(max_examples=40, deadline=None)
    @given(addr=ADDRS, version=VERSIONS, pt=BLOCKS)
    def test_ciphertext_never_equals_plaintext(self, addr, version, pt):
        ct, _ = ENGINE.seal(addr, version, pt)
        assert ct != pt  # 2^-512 failure probability: effectively never


class TestChaChaProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(min_size=0, max_size=300),
           counter=st.integers(0, 1000))
    def test_xor_is_involution(self, data, counter):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        assert c.xor(c.xor(data, counter), counter) == data

    @settings(max_examples=40, deadline=None)
    @given(c1=st.integers(0, 10**6), c2=st.integers(0, 10**6))
    def test_distinct_counters_distinct_blocks(self, c1, c2):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        if c1 == c2:
            assert c.block(c1) == c.block(c2)
        else:
            assert c.block(c1) != c.block(c2)

    @settings(max_examples=30, deadline=None)
    @given(length=st.integers(0, 500), counter=st.integers(0, 100))
    def test_keystream_length_exact(self, length, counter):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        assert len(c.keystream(length, counter)) == length


class TestMerkleProperties:
    @settings(max_examples=25, deadline=None)
    @given(levels=st.integers(2, 7), data=st.data())
    def test_updates_keep_tree_verifiable(self, levels, data):
        import hashlib
        tree = BucketMerkleTree(levels)
        n = (1 << levels) - 1
        for i in range(data.draw(st.integers(1, 8))):
            bucket = data.draw(st.integers(0, n - 1))
            tree.update_bucket(
                bucket, hashlib.sha256(f"u{i}".encode()).digest()
            )
        for leaf in range(min(4, 1 << (levels - 1))):
            tree.verify_path(leaf)

    @settings(max_examples=25, deadline=None)
    @given(levels=st.integers(2, 6), data=st.data())
    def test_any_content_tamper_detected(self, levels, data):
        import hashlib
        tree = BucketMerkleTree(levels)
        n = (1 << levels) - 1
        victim = data.draw(st.integers(0, n - 1))
        tree.update_bucket(victim, hashlib.sha256(b"legit").digest())
        tree.tamper_content(victim, hashlib.sha256(b"evil").digest())
        with pytest.raises(IntegrityError):
            tree.verify_bucket(victim)
