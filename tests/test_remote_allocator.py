"""Unit tests for remote allocation (repro.core.remote)."""

import pytest


from repro.core.remote import RemoteAllocator
from repro.oram.bucket import CONSUMED, DUMMY, SlotStatus
from repro.oram.ring import RingOram


@pytest.fixture
def setup(cfg_ab_small):
    """An allocator bound to a fresh controller (no traffic yet)."""
    alloc = RemoteAllocator(cfg_ab_small)
    oram = RingOram(cfg_ab_small, extensions=alloc, seed=0)
    return cfg_ab_small, oram, alloc


def leaf_bucket(cfg, pos=0):
    return (1 << (cfg.levels - 1)) - 1 + pos


def make_dead(store, bucket, slots):
    for s in slots:
        store.consume(bucket, s)


class TestGather:
    def test_gathers_dead_slots(self, setup):
        cfg, oram, alloc = setup
        b = leaf_bucket(cfg, 0)
        lv = cfg.levels - 1
        make_dead(oram.store, b, [0, 1])
        queued = alloc.gather(b, lv)
        assert queued == 2
        assert oram.store.get_status(b, 0) == SlotStatus.QUEUED
        assert len(alloc.queues.get(lv)) == 2

    def test_untracked_level_ignored(self, setup):
        cfg, oram, alloc = setup
        make_dead(oram.store, 0, [0])
        assert alloc.gather(0, 0) == 0

    def test_leaves_one_free_slot(self, setup):
        """A bucket never has all its slots ALLOCATED."""
        cfg, oram, alloc = setup
        b = leaf_bucket(cfg, 1)
        lv = cfg.levels - 1
        z = oram.store.z_phys(b)
        make_dead(oram.store, b, range(z))
        queued = alloc.gather(b, lv)
        assert queued == z - 1

    def test_respects_queue_capacity(self, cfg_ab_small):
        import dataclasses
        cfg = dataclasses.replace(cfg_ab_small, deadq_capacity=1,
                                  geometry=cfg_ab_small.geometry)
        alloc = RemoteAllocator(cfg)
        oram = RingOram(cfg, extensions=alloc, seed=0)
        b = leaf_bucket(cfg, 0)
        lv = cfg.levels - 1
        make_dead(oram.store, b, [0, 1])
        assert alloc.gather(b, lv) == 1

    def test_nothing_dead_nothing_queued(self, setup):
        cfg, oram, alloc = setup
        assert alloc.gather(leaf_bucket(cfg), cfg.levels - 1) == 0


class TestAcquire:
    def test_all_or_nothing_shortage(self, setup):
        cfg, oram, alloc = setup
        b = leaf_bucket(cfg, 0)
        lv = cfg.levels - 1
        # Extension r=1 but the queue is empty.
        granted, hosts = alloc.acquire(b, lv)
        assert granted == 0
        assert hosts == []
        assert alloc.extension_attempts == 1
        assert alloc.extension_grants == 0

    def test_grant(self, setup):
        cfg, oram, alloc = setup
        donor = leaf_bucket(cfg, 0)
        renter = leaf_bucket(cfg, 1)
        lv = cfg.levels - 1
        make_dead(oram.store, donor, [0])
        alloc.gather(donor, lv)
        granted, hosts = alloc.acquire(renter, lv)
        assert granted == 1
        assert hosts == [(donor, 0)]
        assert oram.store.get_status(donor, 0) == SlotStatus.IN_USE
        assert alloc.extension_ratio == pytest.approx(1.0)

    def test_never_rents_own_slot(self, setup):
        cfg, oram, alloc = setup
        b = leaf_bucket(cfg, 0)
        lv = cfg.levels - 1
        make_dead(oram.store, b, [0])
        alloc.gather(b, lv)
        granted, hosts = alloc.acquire(b, lv)
        assert granted == 0
        # The entry must still be available for another bucket.
        granted2, hosts2 = alloc.acquire(leaf_bucket(cfg, 1), lv)
        assert granted2 == 1

    def test_grants_follow_gather_fifo_order(self, setup):
        """Acquire hands out hosts oldest-gathered first.

        The SoA DeadQ must preserve the FIFO discipline of the paper's
        on-chip queues end to end: slots gathered earlier (and, within
        one gather, lower slot indices first) are granted before later
        ones, across multiple donors and multiple acquires.
        """
        cfg, oram, alloc = setup
        lv = cfg.levels - 1
        donors = [leaf_bucket(cfg, p) for p in (0, 1, 2)]
        expected = []
        for d in donors:
            make_dead(oram.store, d, [0, 1])
            alloc.gather(d, lv)
            expected.extend([(d, 0), (d, 1)])
        renter = leaf_bucket(cfg, 3)
        r = cfg.geometry[lv].remote_extension
        got = []
        while True:
            granted, hosts = alloc.acquire(renter, lv)
            if not granted:
                break
            assert granted == r
            got.extend(hosts)
            # Release so the next acquire is not capped by the renter;
            # consuming keeps the slot DEAD (not re-queueable here).
            for hb, hs in hosts:
                alloc.consume_remote(renter, (hb, hs))
        assert got == expected[:len(got)]
        assert len(got) >= r  # at least one grant exercised the order

    def test_zero_extension_levels_never_attempt(self, setup):
        cfg, oram, alloc = setup
        granted, hosts = alloc.acquire(0, 0)
        assert granted == 0
        assert alloc.extension_attempts == 0


class TestRentalLifecycle:
    def _rent(self, setup):
        cfg, oram, alloc = setup
        donor = leaf_bucket(cfg, 0)
        renter = leaf_bucket(cfg, 1)
        lv = cfg.levels - 1
        make_dead(oram.store, donor, [0])
        alloc.gather(donor, lv)
        alloc.acquire(renter, lv)
        return cfg, oram, alloc, donor, renter

    def test_write_remote_sets_content(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        alloc.write_remote(renter, (donor, 0), 42)
        assert alloc.find_remote_block(renter, 42) == (donor, 0)

    def test_write_remote_unknown_host_raises(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        with pytest.raises(KeyError):
            alloc.write_remote(renter, (donor, 3), 42)

    def test_consume_remote_returns_content(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        alloc.write_remote(renter, (donor, 0), 42)
        content = alloc.consume_remote(renter, (donor, 0))
        assert content == 42
        assert oram.store.get_status(donor, 0) == SlotStatus.DEAD
        assert oram.store.slots[donor, 0] == CONSUMED
        assert oram.store.count[renter] == 1
        assert alloc.remote_real_reads == 1

    def test_consume_remote_dummy_counts(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        assert alloc.consume_remote(renter, (donor, 0)) == DUMMY
        assert alloc.remote_reads == 1
        assert alloc.remote_real_reads == 0

    def test_consumed_rental_disappears(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        alloc.consume_remote(renter, (donor, 0))
        assert alloc.rentals_of(renter) == []
        assert alloc.active_rentals() == 0

    def test_reclaim_returns_reals_and_requeues(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        alloc.write_remote(renter, (donor, 0), 99)
        reals, released = alloc.reclaim(renter)
        assert reals == [99]
        assert released == [(donor, 0)]
        assert oram.store.get_status(donor, 0) == SlotStatus.QUEUED
        # The slot is rentable again.
        granted, hosts = alloc.acquire(leaf_bucket(cfg, 2), cfg.levels - 1)
        assert granted == 1
        assert hosts == [(donor, 0)]

    def test_reclaim_without_rentals(self, setup):
        cfg, oram, alloc = setup
        assert alloc.reclaim(leaf_bucket(cfg, 3)) == ([], [])

    def test_remote_real_blocks_inventory(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        alloc.write_remote(renter, (donor, 0), 77)
        assert alloc.remote_real_blocks() == [(renter, 77)]

    def test_stats_shape(self, setup):
        cfg, oram, alloc, donor, renter = self._rent(setup)
        s = alloc.stats()
        assert s["extension_grants"] == 1
        assert s["active_rentals"] == 1
        assert cfg.levels - 1 in s["queues"]


class TestUnbound:
    def test_unbound_allocator_raises(self, cfg_ab_small):
        alloc = RemoteAllocator(cfg_ab_small)
        with pytest.raises(RuntimeError):
            _ = alloc.store
