"""Stateful property testing of the oblivious KV store.

Hypothesis drives random put/get/delete sequences against
:class:`~repro.app.kvstore.ObliviousKV` while a plain dict plays the
model; every divergence -- value corruption, ghost keys, leaked or
double-freed blocks -- fails the run with a minimized counterexample.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.app.kvstore import ObliviousKV

KEYS = st.sampled_from([b"a", b"b", b"c", b"d", b"e"])
VALUES = st.binary(min_size=0, max_size=200)


class KVModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        # Plaintext backend keeps the state machine fast; the encrypted
        # data path has its own differential tests.
        self.kv = ObliviousKV.create(scheme="ab", levels=6, seed=5,
                                     encrypted=False)
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.kv.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def get(self, key):
        assert self.kv.get(key) == self.model.get(key)

    @rule(key=KEYS)
    def delete(self, key):
        existed = key in self.model
        assert self.kv.delete(key) == existed
        self.model.pop(key, None)

    @rule(key=KEYS)
    def contains(self, key):
        assert (key in self.kv) == (key in self.model)

    @invariant()
    def sizes_agree(self):
        if not hasattr(self, "kv"):
            return
        assert len(self.kv) == len(self.model)
        assert set(self.kv.keys()) == set(self.model)

    @invariant()
    def block_accounting_consistent(self):
        if not hasattr(self, "kv"):
            return
        chained = sum(len(c) for c in self.kv._directory.values())
        assert chained == self.kv.used_blocks
        assert (self.kv.used_blocks + self.kv.free_blocks
                == self.kv.oram.cfg.n_real_blocks)
        # No block belongs to two chains or to a chain and the free list.
        all_blocks = [b for c in self.kv._directory.values() for b in c]
        all_blocks += self.kv._free
        assert len(all_blocks) == len(set(all_blocks))

    @invariant()
    def oram_invariants_hold(self):
        if not hasattr(self, "kv"):
            return
        self.kv.oram.check_invariants()


KVModel.TestCase.settings = settings(
    max_examples=15,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestKVStateful = KVModel.TestCase
