"""Unit tests for binary-tree addressing (repro.oram.tree)."""

import pytest

from repro.oram import tree


class TestBucketId:
    def test_root(self):
        assert tree.bucket_id(0, 0) == 0

    def test_level_one(self):
        assert tree.bucket_id(1, 0) == 1
        assert tree.bucket_id(1, 1) == 2

    def test_level_three(self):
        assert tree.bucket_id(3, 0) == 7
        assert tree.bucket_id(3, 7) == 14

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            tree.bucket_id(2, 4)

    def test_negative_level(self):
        with pytest.raises(ValueError):
            tree.bucket_id(-1, 0)

    def test_roundtrip_all_small(self):
        for level in range(6):
            for pos in range(1 << level):
                b = tree.bucket_id(level, pos)
                assert tree.level_of(b) == level
                assert tree.position_of(b) == pos


class TestLevelOf:
    def test_root(self):
        assert tree.level_of(0) == 0

    def test_boundaries(self):
        # Last bucket of level l is 2^(l+1) - 2; first is 2^l - 1.
        for lv in range(1, 10):
            assert tree.level_of((1 << lv) - 1) == lv
            assert tree.level_of((1 << (lv + 1)) - 2) == lv

    def test_negative(self):
        with pytest.raises(ValueError):
            tree.level_of(-1)


class TestParentChild:
    def test_parent_of_children(self):
        for b in range(1, 127):
            left, right = tree.children_of(tree.parent_of(b))
            assert b in (left, right)

    def test_children_of_root(self):
        assert tree.children_of(0) == (1, 2)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            tree.parent_of(0)


class TestPathBuckets:
    def test_length_equals_levels(self):
        assert len(tree.path_buckets(0, 5)) == 5

    def test_root_always_first(self):
        for leaf in range(16):
            assert tree.path_buckets(leaf, 5)[0] == 0

    def test_leaf_bucket_last(self):
        levels = 5
        for leaf in range(16):
            assert tree.path_buckets(leaf, levels)[-1] == tree.bucket_id(4, leaf)

    def test_consecutive_parent_links(self):
        path = tree.path_buckets(11, 6)
        for parent, child in zip(path, path[1:]):
            assert tree.parent_of(child) == parent

    def test_leaf_out_of_range(self):
        with pytest.raises(ValueError):
            tree.path_buckets(16, 5)
        with pytest.raises(ValueError):
            tree.path_buckets(-1, 5)

    def test_two_level_tree(self):
        assert tree.path_buckets(0, 2) == [0, 1]
        assert tree.path_buckets(1, 2) == [0, 2]


class TestBucketOnPath:
    def test_all_path_buckets_are_on_path(self):
        levels = 6
        for leaf in (0, 13, 31):
            for b in tree.path_buckets(leaf, levels):
                assert tree.bucket_on_path(b, leaf, levels)

    def test_off_path(self):
        levels = 4
        # leaf 0's path is buckets 0,1,3,7; bucket 2 is off it.
        assert not tree.bucket_on_path(2, 0, levels)
        assert not tree.bucket_on_path(8, 0, levels)

    def test_too_deep_bucket(self):
        assert not tree.bucket_on_path(1 << 10, 0, 4)


class TestIntersectionLevel:
    def test_same_leaf(self):
        assert tree.intersection_level(5, 5, 6) == 5

    def test_adjacent_leaves(self):
        # Leaves 0 and 1 share everything but the last level.
        assert tree.intersection_level(0, 1, 6) == 4

    def test_opposite_halves(self):
        levels = 6
        assert tree.intersection_level(0, (1 << (levels - 1)) - 1, levels) == 0

    def test_matches_path_prefix(self):
        levels = 7
        for a, b in [(0, 63), (10, 42), (33, 35), (12, 12)]:
            pa = tree.path_buckets(a, levels)
            pb = tree.path_buckets(b, levels)
            common = sum(1 for x, y in zip(pa, pb) if x == y)
            assert tree.intersection_level(a, b, levels) == common - 1

    def test_symmetry(self):
        for a in range(8):
            for b in range(8):
                assert (tree.intersection_level(a, b, 4)
                        == tree.intersection_level(b, a, 4))


class TestBitReverse:
    def test_zero(self):
        assert tree.bit_reverse(0, 8) == 0

    def test_one(self):
        assert tree.bit_reverse(1, 4) == 8

    def test_palindrome(self):
        assert tree.bit_reverse(0b1001, 4) == 0b1001

    def test_involution(self):
        for v in range(64):
            assert tree.bit_reverse(tree.bit_reverse(v, 6), 6) == v


class TestReverseLexicographicOrder:
    def test_full_round_covers_all_paths(self):
        levels = 6
        leaves = list(tree.reverse_lexicographic_order(levels))
        assert sorted(leaves) == list(range(1 << (levels - 1)))

    def test_wraps_around(self):
        levels = 5
        period = 1 << (levels - 1)
        assert (tree.reverse_lexicographic_leaf(3, levels)
                == tree.reverse_lexicographic_leaf(3 + period, levels))

    def test_consecutive_evictions_alternate_halves(self):
        """Adjacent evictions diverge at the root (the order's point)."""
        levels = 6
        half = 1 << (levels - 2)
        prev = tree.reverse_lexicographic_leaf(0, levels)
        for g in range(1, 16):
            cur = tree.reverse_lexicographic_leaf(g, levels)
            assert (prev < half) != (cur < half)
            prev = cur

    def test_two_level_tree(self):
        assert tree.reverse_lexicographic_leaf(0, 2) == 0
        assert tree.reverse_lexicographic_leaf(1, 2) == 1


class TestDeepestCommonBucket:
    def test_same_leaf_gives_leaf_bucket(self):
        assert tree.deepest_common_bucket(3, 3, 4) == tree.bucket_id(3, 3)

    def test_opposite_halves_give_root(self):
        assert tree.deepest_common_bucket(0, 7, 4) == 0

    def test_on_both_paths(self):
        levels = 6
        for a, b in [(0, 31), (4, 6), (20, 21)]:
            d = tree.deepest_common_bucket(a, b, levels)
            assert tree.bucket_on_path(d, a, levels)
            assert tree.bucket_on_path(d, b, levels)
