"""Tests for the fault-injection harness (repro.faults)."""

import copy
import dataclasses
import json

import pytest

from conftest import tiny_config

from repro.core import schemes as schemes_mod
from repro.crypto.auth import AuthenticationError
from repro.crypto.integrity import IntegrityError
from repro.faults.campaign import (
    CampaignConfig,
    run_campaign,
    smoke_config,
)
from repro.faults.memory import FaultyMemory
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.faults.report import render_report
from repro.faults.schema import cell_key, validate_report
from repro.oram.datastore import EncryptedTreeStore, pad_block
from repro.oram.recovery import RobustnessConfig, TransientBackendError
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace

KEY = b"test master key."


def _store(with_integrity=True):
    return EncryptedTreeStore(tiny_config(), KEY, seed=1,
                              with_integrity=with_integrity)


def _only(plan_kind, rate=1.0, **kw):
    return FaultPlan(seed=0, rates={plan_kind: rate}, **kw)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rates={"cosmic_ray": 0.1})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rates={"bit_flip": 1.5})

    def test_outage_floor_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(max_outage_ops=0)

    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=7, rates={"bit_flip": 0.3})
        b = FaultPlan(seed=7, rates={"bit_flip": 0.3})
        picks_a = [a.pick_open_fault(op, 5, 1) for op in range(200)]
        picks_b = [b.pick_open_fault(op, 5, 1) for op in range(200)]
        assert picks_a == picks_b
        assert "bit_flip" in picks_a  # the rate actually fires

    def test_seed_changes_draws(self):
        a = FaultPlan(seed=0, rates={"bit_flip": 0.3})
        b = FaultPlan(seed=1, rates={"bit_flip": 0.3})
        assert (
            [a.pick_open_fault(op, 5, 1) for op in range(200)]
            != [b.pick_open_fault(op, 5, 1) for op in range(200)]
        )

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(rates={"bit_flip": 0.0})
        assert not plan.any_enabled
        assert all(
            plan.pick_open_fault(op, b, s) is None
            for op in range(50) for b in range(4) for s in range(4)
        )

    def test_start_op_suppresses_early_faults(self):
        plan = FaultPlan(rates={"bit_flip": 1.0}, start_op=10)
        assert plan.pick_open_fault(9, 0, 0) is None
        assert plan.pick_open_fault(10, 0, 0) == "bit_flip"

    def test_roundtrip(self):
        plan = FaultPlan(seed=3, rates={"replay": 0.25}, start_op=5,
                         max_outage_ops=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_flip_byte_in_range(self):
        plan = _only("bit_flip")
        assert all(0 <= plan.flip_byte(op, 1, 2, 64) < 64
                   for op in range(100))

    def test_outage_ops_bounded(self):
        plan = FaultPlan(max_outage_ops=3)
        lens = {plan.outage_ops(op, 0, 0) for op in range(200)}
        assert lens <= {1, 2, 3}
        assert len(lens) > 1


class TestFaultyMemoryDetection:
    def test_bit_flip_always_detected(self):
        mem = FaultyMemory(_store(), _only("bit_flip"))
        for slot in range(3):
            mem.seal_slot(3, slot, b"payload")
            with pytest.raises(AuthenticationError):
                mem.open_slot(3, slot)
        assert mem.injected["bit_flip"] == 3
        assert mem.detected["bit_flip"] == 3
        assert mem.undetected["bit_flip"] == 0

    def test_replay_always_detected_with_integrity(self):
        mem = FaultyMemory(_store(), _only("replay"))
        mem.seal_slot(3, 1, b"v1")
        mem.seal_slot(3, 1, b"v2")  # history now holds the v1 triple
        with pytest.raises(IntegrityError):
            mem.open_slot(3, 1)
        assert mem.injected["replay"] == 1
        assert mem.detected["replay"] == 1
        assert mem.undetected["replay"] == 0

    def test_replay_undetected_without_integrity(self):
        mem = FaultyMemory(_store(with_integrity=False), _only("replay"))
        mem.seal_slot(3, 1, b"v1")
        mem.seal_slot(3, 1, b"v2")
        value = mem.open_slot(3, 1)  # the stale plaintext comes back
        assert value == pad_block(b"v1", 64)
        assert mem.undetected["replay"] == 1
        assert mem.detected["replay"] == 0

    def test_dropped_write_detected_on_next_read(self):
        mem = FaultyMemory(_store(), _only("dropped_write"))
        mem.seal_slot(3, 1, b"v1")
        mem.seal_slot(3, 1, b"v2")  # this write is dropped
        assert mem.latent_drops == 1
        with pytest.raises((AuthenticationError, IntegrityError)):
            mem.open_slot(3, 1)
        assert mem.detected["dropped_write"] == 1
        assert mem.latent_drops == 0

    def test_dropped_write_masked_by_reseal(self):
        plan = FaultPlan(seed=0, rates={"dropped_write": 1.0}, start_op=2)
        mem = FaultyMemory(_store(), plan)
        mem.seal_slot(3, 1, b"v1")   # op 0: clean
        mem.seal_slot(3, 1, b"v2")   # op 1: clean (start_op)
        mem.seal_slot(3, 1, b"v3")   # op 2: dropped
        assert mem.latent_drops == 1
        plan_off = dataclasses.replace(plan, rates={})
        mem.plan = plan_off
        mem.seal_slot(3, 1, b"v4")   # overwrites the damage
        assert mem.latent_drops == 0
        assert mem.masked_drops == 1
        assert mem.open_slot(3, 1) == pad_block(b"v4", 64)
        assert mem.detected["dropped_write"] == 0

    def test_unavailable_raises_then_drains(self):
        mem = FaultyMemory(_store(), _only("unavailable", max_outage_ops=1))
        mem.seal_slot(3, 1, b"v1")
        with pytest.raises(TransientBackendError):
            mem.open_slot(3, 1)
        assert mem.injected["unavailable"] == 1
        assert mem.detected["unavailable"] == 1  # overt: the error IS it
        mem.plan = FaultPlan()  # outage over; the retry goes through
        assert mem.open_slot(3, 1) == pad_block(b"v1", 64)

    def test_disarmed_wrapper_injects_nothing(self):
        mem = FaultyMemory(_store(), _only("bit_flip"), armed=False)
        mem.seal_slot(3, 1, b"payload")
        assert mem.open_slot(3, 1) == pad_block(b"payload", 64)
        assert sum(mem.injected.values()) == 0

    def test_passthrough_delegates_queries(self):
        mem = FaultyMemory(_store(), FaultPlan())
        mem.seal_slot(3, 1, b"x")
        assert mem.seals == 1  # inner counter, via __getattr__
        with pytest.raises(AttributeError):
            mem._no_such_private  # noqa: B018 -- pickling relies on this

    def test_summary_shape(self):
        mem = FaultyMemory(_store(), FaultPlan())
        s = mem.summary()
        assert set(s) == {"ops", "injected", "detected", "undetected",
                          "masked_drops", "latent_drops"}
        assert set(s["injected"]) == set(FAULT_KINDS)


class TestZeroRatePassthrough:
    def test_zero_rate_run_is_bit_identical(self):
        """A FaultyMemory with all rates zero must not perturb the
        simulation in any way -- same result, same RNG streams."""
        scheme = schemes_mod.by_name("ring", 7)
        trace = make_trace("spec", "mcf", scheme.n_real_blocks, 120, seed=0)
        rcfg = RobustnessConfig(integrity=True)
        plain = Simulation(
            scheme, trace, SimConfig(seed=0, robustness=rcfg)
        ).run()
        wrapped = Simulation(
            scheme, trace,
            SimConfig(seed=0, robustness=rcfg, fault_plan=FaultPlan()),
        ).run()
        a = plain.to_dict()
        b = wrapped.to_dict()
        # The wrapped run additionally reports the (all-zero) fault
        # ledger; everything else must match exactly.
        assert b["robustness"].pop("faults")["injected"] == {
            k: 0 for k in FAULT_KINDS
        }
        a["robustness"].pop("faults", None)
        assert a == b


class TestSimulatedDetection:
    @pytest.mark.parametrize("kind", ["bit_flip", "replay"])
    def test_tampering_faults_fully_detected(self, kind):
        scheme = schemes_mod.by_name("ring", 7)
        trace = make_trace("spec", "mcf", scheme.n_real_blocks, 150, seed=0)
        sim = SimConfig(
            seed=0,
            robustness=RobustnessConfig(integrity=True),
            fault_plan=FaultPlan(seed=0, rates={kind: 0.01}),
        )
        result = Simulation(scheme, trace, sim).run()
        faults = result.robustness["faults"]
        assert faults["injected"][kind] > 0
        assert faults["detected"][kind] == faults["injected"][kind]
        assert faults["undetected"][kind] == 0


class TestCampaign:
    @pytest.fixture(scope="class")
    def smoke_doc(self):
        return run_campaign(smoke_config(
            levels=7, n_requests=120, rates=(0.01,),
        ))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            CampaignConfig(kinds=("bit_rot",))
        with pytest.raises(ValueError, match="rate"):
            CampaignConfig(rates=(2.0,))
        with pytest.raises(ValueError, match="at least one fault rate"):
            CampaignConfig(rates=())

    def test_report_validates(self, smoke_doc):
        assert validate_report(smoke_doc) == []

    def test_one_cell_per_kind_and_rate(self, smoke_doc):
        keys = [cell_key(c) for c in smoke_doc["cells"]]
        assert keys == [f"{k}@0.01" for k in FAULT_KINDS]

    def test_tampering_cells_fully_detected(self, smoke_doc):
        for cell in smoke_doc["cells"]:
            if cell["fault"] in ("bit_flip", "replay"):
                assert cell["detected"] == cell["injected"]
                assert cell["undetected"] == 0
                assert cell["detection_rate"] == 1.0

    def test_recovery_accounted(self, smoke_doc):
        for cell in smoke_doc["cells"]:
            assert cell["unrecovered"] == 0
            assert cell["recovery_rate"] == 1.0
            # Rebuilds reset bucket access counters, so a faulty run can
            # even come in slightly *under* baseline at tiny scales; the
            # ratio just has to be sane.
            assert 0.9 < cell["overhead_x"] < 2.0

    def test_json_roundtrip_and_determinism(self, smoke_doc):
        again = run_campaign(smoke_config(
            levels=7, n_requests=120, rates=(0.01,),
        ))
        assert json.dumps(smoke_doc, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_render_report(self, smoke_doc):
        text = render_report(smoke_doc)
        assert "fault campaign (smoke)" in text
        assert "bit_flip@0.01" in text


class TestSchema:
    def test_rejects_non_dict(self):
        assert validate_report([]) != []

    def test_rejects_wrong_kind(self):
        doc = run_campaign(smoke_config(levels=7, n_requests=60,
                                        kinds=("bit_flip",), rates=(0.02,)))
        bad = copy.deepcopy(doc)
        bad["kind"] = "something-else"
        assert any("kind" in e for e in validate_report(bad))
        bad = copy.deepcopy(doc)
        del bad["cells"][0]["detected"]
        assert any("missing field 'detected'" in e for e in validate_report(bad))
        bad = copy.deepcopy(doc)
        bad["cells"].append(copy.deepcopy(bad["cells"][0]))
        assert any("duplicate" in e for e in validate_report(bad))
        bad = copy.deepcopy(doc)
        bad["cells"][0]["detection_rate"] = 1.5
        assert any("detection_rate" in e for e in validate_report(bad))
