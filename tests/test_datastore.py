"""Tests for the encrypted tree store and the end-to-end secure data
path (controller + EncryptedTreeStore)."""

import numpy as np
import pytest

from conftest import tiny_ab_config, tiny_config

from repro.core.remote import RemoteAllocator
from repro.crypto.auth import AuthenticationError
from repro.crypto.integrity import IntegrityError
from repro.oram.datastore import EncryptedTreeStore, pad_block
from repro.oram.ring import RingOram

KEY = b"test master key."


@pytest.fixture
def store(cfg_small):
    return EncryptedTreeStore(cfg_small, KEY, seed=1)


class TestPadBlock:
    def test_pads_right(self):
        assert pad_block(b"ab", 8) == b"ab" + b"\x00" * 6

    def test_exact_size(self):
        assert pad_block(b"x" * 8, 8) == b"x" * 8

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            pad_block(b"x" * 9, 8)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            pad_block("not bytes")


class TestEncryptedTreeStore:
    def test_seal_open_roundtrip(self, store):
        store.seal_slot(3, 1, b"payload")
        assert store.open_slot(3, 1) == pad_block(b"payload", 64)

    def test_reseal_bumps_version(self, store):
        store.seal_slot(3, 1, b"v1")
        ct1 = store.raw_ciphertext(3, 1)
        store.seal_slot(3, 1, b"v1")
        ct2 = store.raw_ciphertext(3, 1)
        assert ct1 != ct2  # same plaintext, fresh version -> new bytes
        assert store.open_slot(3, 1) == pad_block(b"v1", 64)

    def test_never_sealed_slot_rejected(self, store):
        with pytest.raises(KeyError):
            store.open_slot(0, 0)

    def test_ciphertext_is_not_plaintext(self, store):
        store.seal_slot(0, 0, b"secret")
        assert b"secret" not in store.raw_ciphertext(0, 0)

    def test_dummy_seal_opens_to_noise(self, store):
        store.seal_dummy(2, 0)
        noise = store.open_slot(2, 0)
        assert len(noise) == 64

    def test_payload_tamper_detected(self, store):
        store.seal_slot(3, 1, b"payload")
        store.tamper_payload(3, 1)
        with pytest.raises(AuthenticationError):
            store.open_slot(3, 1)

    def test_version_rollback_detected(self, store):
        store.seal_slot(3, 1, b"v1")
        store.seal_slot(3, 1, b"v2")
        store.tamper_version(3, 1)
        with pytest.raises((AuthenticationError, IntegrityError)):
            store.open_slot(3, 1)

    def test_full_replay_detected_by_merkle_root(self, store):
        """Restore a consistent old (ciphertext, tag, version) triple
        AND rebuild the hash chain: the on-chip root still disagrees."""
        store.seal_slot(3, 1, b"old")
        old_ct = store.raw_ciphertext(3, 1)
        old_tag = store._tags[(3, 1)]
        old_ver = int(store._version[3, 1])
        store.seal_slot(3, 1, b"new")
        # Attacker restores everything off-chip, consistently.
        off = store._offset(3, 1)
        store._memory[off:off + 64] = old_ct
        store._tags[(3, 1)] = old_tag
        store._version[3, 1] = old_ver
        store.integrity.tamper_content(3, store._content_digest(3))
        store.integrity.tamper_rehash(3)
        with pytest.raises(IntegrityError):
            store.open_slot(3, 1)

    def test_without_integrity_tree(self, cfg_small):
        s = EncryptedTreeStore(cfg_small, KEY, with_integrity=False)
        s.seal_slot(0, 0, b"x")
        assert s.open_slot(0, 0) == pad_block(b"x", 64)

    def test_counters(self, store):
        store.seal_slot(0, 0, b"x")
        store.open_slot(0, 0)
        assert store.seals == 1
        assert store.opens == 1


class TestEncryptedOramEndToEnd:
    def _oram(self, cfg, seed=0):
        ds = EncryptedTreeStore(cfg, KEY, seed=seed, with_integrity=True)
        ext = RemoteAllocator(cfg) if cfg.deadq_levels else None
        return RingOram(cfg, seed=seed, extensions=ext, datastore=ds), ds

    def test_roundtrip_through_ciphertext(self):
        cfg = tiny_config(levels=5)
        oram, ds = self._oram(cfg)
        oram.write(3, b"attack at dawn")
        assert oram.read(3) == pad_block(b"attack at dawn", 64)

    def test_values_survive_evictions(self):
        cfg = tiny_config(levels=5)
        oram, ds = self._oram(cfg, seed=2)
        shadow = {}
        rng = np.random.default_rng(0)
        for i in range(120):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                val = f"v{i}".encode()
                shadow[blk] = pad_block(val, 64)
                oram.write(blk, val)
            else:
                got = oram.read(blk)
                if blk in shadow:
                    assert got == shadow[blk]
        oram.check_invariants()
        assert ds.seals > 0 and ds.opens > 0

    def test_values_survive_remote_allocation(self):
        """The AB data path: payloads follow blocks into rented slots."""
        cfg = tiny_ab_config(levels=5)
        oram, ds = self._oram(cfg, seed=3)
        oram.warm_fill()
        shadow = {}
        rng = np.random.default_rng(1)
        for i in range(250):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                val = f"ab{i}".encode()
                shadow[blk] = pad_block(val, 64)
                oram.write(blk, val)
            else:
                got = oram.read(blk)
                if blk in shadow:
                    assert got == shadow[blk]
        assert oram.ext.remote_reads > 0, "remote path never exercised"
        oram.check_invariants()

    def test_warm_fill_seals_residents(self):
        cfg = tiny_config(levels=5)
        oram, ds = self._oram(cfg, seed=4)
        oram.warm_fill()
        # Any resident block can be read back (decrypt+verify passes).
        assert oram.read(0) == bytes(64)

    def test_tamper_is_detected_on_next_touch(self):
        cfg = tiny_config(levels=5)
        oram, ds = self._oram(cfg, seed=5)
        oram.warm_fill()
        # Find some resident real block and flip a ciphertext byte.
        rows = oram.store.slots
        reals = np.argwhere(rows >= 0)
        b, s = map(int, reals[0])
        blk = int(rows[b, s])
        ds.tamper_payload(b, s)
        with pytest.raises(AuthenticationError):
            for _ in range(5):
                oram.read(blk)

    def test_oversize_write_rejected(self):
        cfg = tiny_config(levels=5)
        oram, _ = self._oram(cfg)
        with pytest.raises(ValueError):
            oram.write(0, b"x" * 65)

    def test_non_bytes_write_rejected(self):
        cfg = tiny_config(levels=5)
        oram, _ = self._oram(cfg)
        with pytest.raises(TypeError):
            oram.write(0, 12345)
