"""Unit tests for access accounting (repro.oram.stats)."""

import pytest

from repro.oram.stats import CountingSink, MemorySink, OpKind, TeeSink


@pytest.fixture
def sink():
    return CountingSink(levels=4)


class TestCountingSink:
    def test_ops_counted_per_kind(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.end_op()
        sink.begin_op(OpKind.EVICT_PATH)
        sink.end_op()
        sink.begin_op(OpKind.EVICT_PATH)
        sink.end_op()
        assert sink.by_kind[OpKind.READ_PATH].ops == 1
        assert sink.by_kind[OpKind.EVICT_PATH].ops == 2

    def test_data_reads_and_writes(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.data_access(1, 0, 1, write=True)
        sink.end_op()
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.data_reads == 1
        assert c.data_writes == 1

    def test_per_level_attribution(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.data_access(5, 0, 2, write=False)
        sink.data_access(5, 1, 2, write=True)
        sink.end_op()
        assert sink.data_reads_by_level[0] == 1
        assert sink.data_reads_by_level[2] == 1
        assert sink.data_writes_by_level[2] == 1

    def test_onchip_not_counted_as_traffic(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False, onchip=True)
        sink.end_op()
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.data_reads == 0
        assert c.onchip_accesses == 1

    def test_remote_flag_counted(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False, remote=True)
        sink.end_op()
        assert sink.by_kind[OpKind.READ_PATH].remote_accesses == 1

    def test_metadata_blocks_multiplier(self, sink):
        sink.begin_op(OpKind.EARLY_RESHUFFLE)
        sink.metadata_access(0, 0, write=False, blocks=2)
        sink.end_op()
        assert sink.by_kind[OpKind.EARLY_RESHUFFLE].meta_reads == 2

    def test_nested_op_raises(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        with pytest.raises(RuntimeError):
            sink.begin_op(OpKind.EVICT_PATH)

    def test_end_without_begin_raises(self, sink):
        with pytest.raises(RuntimeError):
            sink.end_op()

    def test_unattributed_accesses_tolerated(self, sink):
        sink.data_access(0, 0, 0, write=False)
        assert sink.unattributed_accesses == 1

    def test_total_offchip_and_bytes(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.metadata_access(0, 0, write=True)
        sink.end_op()
        assert sink.total_offchip == 2
        assert sink.total_bytes == 128

    def test_reset(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.end_op()
        sink.reset()
        assert sink.total_offchip == 0
        assert sink.by_kind[OpKind.READ_PATH].ops == 0

    def test_summary_shape(self, sink):
        sink.begin_op(OpKind.BACKGROUND)
        sink.end_op()
        s = sink.summary()
        assert s["background"]["ops"] == 1
        assert set(s) == {"readPath", "evictPath", "earlyReshuffle",
                          "background", "posMap", "recovery"}


class TestTeeSink:
    def test_fans_out(self):
        a, b = CountingSink(2), CountingSink(2)
        tee = TeeSink(a, b)
        tee.begin_op(OpKind.READ_PATH)
        tee.data_access(0, 0, 0, write=False)
        tee.metadata_access(0, 0, write=True)
        tee.end_op()
        for s in (a, b):
            assert s.by_kind[OpKind.READ_PATH].data_reads == 1
            assert s.by_kind[OpKind.READ_PATH].meta_writes == 1

    def test_requires_a_sink(self):
        with pytest.raises(ValueError):
            TeeSink()


class TestBaseSink:
    def test_base_sink_is_silent(self):
        s = MemorySink()
        s.begin_op(OpKind.READ_PATH)
        s.data_access(0, 0, 0, write=False)
        s.metadata_access(0, 0, write=False)
        s.end_op()


class TestOpBracketGuards:
    """Every sink must surface unbalanced begin_op/end_op bracketing.

    A nested begin_op or an end_op without a matching begin_op is a
    controller bug; historically only CountingSink and DramSink caught
    it, so a misbracketed run against the base sink (or a TeeSink of
    silent sinks) went unnoticed. Now the whole sink family guards.
    """

    def _sinks(self):
        from repro.mem.dram import DramModel
        from repro.mem.layout import TreeLayout
        from repro.sim.engine import DramSink
        from repro.telemetry import Telemetry, TracingSink
        from tests.conftest import tiny_config

        cfg = tiny_config()
        dram = DramSink(TreeLayout(cfg), DramModel())
        return [
            MemorySink(),
            CountingSink(levels=4),
            TeeSink(MemorySink(), MemorySink()),
            dram,
            TracingSink(DramSink(TreeLayout(cfg), DramModel()),
                        Telemetry()),
        ]

    def test_end_without_begin_raises_everywhere(self):
        for s in self._sinks():
            with pytest.raises(RuntimeError, match="without begin_op"):
                s.end_op()

    def test_double_begin_raises_everywhere(self):
        for s in self._sinks():
            s.begin_op(OpKind.READ_PATH)
            with pytest.raises(RuntimeError, match="nested"):
                s.begin_op(OpKind.EVICT_PATH)

    def test_balanced_brackets_recover_after_error(self):
        for s in self._sinks():
            with pytest.raises(RuntimeError):
                s.end_op()
            s.begin_op(OpKind.READ_PATH)
            s.end_op()
            s.begin_op(OpKind.EVICT_PATH)
            s.end_op()
