"""Tests for the chaos-hardened serving layer.

Covers the resilient serving loop (deadlines, admission control,
degraded mode, write-journal replay), the chaos campaign report
machinery (schema, gate, compare), the bounded ``KVServer.close`` fix,
and -- the load-bearing one -- a hypothesis property test proving
per-key FIFO consistency holds across degraded-mode entry and exit,
including the journal replay.
"""

import copy
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.oram.recovery import RobustnessConfig
from repro.serve import (
    DELETE, GET, PUT, BatchScheduler, KVServer, Request, build_stack,
)
from repro.serve.chaos import (
    ChaosCell, ChaosConfig, chaos_check, run_chaos,
)
from repro.serve.compare import (
    EXIT_ERROR, EXIT_OK, EXIT_REGRESSION, compare_chaos_reports,
    compare_files,
)
from repro.serve.loadgen import WorkloadConfig
from repro.serve.request import FAILED, OK, SHED, STATUSES, TIMED_OUT
from repro.serve.resilience import (
    ResilienceConfig, _journal_view, resilient_replay,
)
from repro.serve.schema import (
    CHAOS_REPORT_KIND, deterministic_bytes, validate_chaos_report,
)

LEVELS = 8


# ------------------------------------------------------------------ helpers

def sealed_stack(items, seed=0):
    """A sealed (MAC + Merkle) stack populated through real puts."""
    stack = build_stack(
        levels=LEVELS, seed=seed, observer=False,
        robustness=RobustnessConfig(integrity=True),
    )
    for key, value in items:
        stack.kv.put(key, value)
    return stack


def plain_stack(items, seed=0):
    stack = build_stack(levels=LEVELS, seed=seed, observer=False)
    stack.kv.preload(items)
    return stack


def scheduler_for(stack, seed=0):
    return BatchScheduler(
        stack.kv, policy="batch", seed=seed,
        clock=lambda: stack.dram_sink.now,
    )


def by_rid(completions):
    return {c.rid: c for c in completions}


def shifted(stack, requests):
    """Re-anchor arrivals at "now": populating a sealed stack advances
    the simulated clock, so near-zero arrivals would all be in the past
    (and admitted as one burst) by the time the loop starts."""
    from dataclasses import replace
    t0 = stack.dram_sink.now
    return [replace(r, arrival_ns=r.arrival_ns + t0) for r in requests]


# --------------------------------------------------------- ResilienceConfig

class TestResilienceConfig:
    def test_defaults_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize("kw", [
        {"shed_policy": "oldest-first"},
        {"deadline_ns": -1.0},
        {"queue_limit": -1},
        {"retry_budget": -1},
        {"backoff_base_ns": -1.0},
        {"backoff_factor": 0.5},
        {"journal_limit": -1},
        {"repair_ns": 0.0},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            ResilienceConfig(**kw)

    def test_roundtrip(self):
        cfg = ResilienceConfig(
            deadline_ns=1e6, queue_limit=8, shed_policy="drop-oldest",
            retry_budget=5, backoff_base_ns=100.0, backoff_factor=1.5,
            journal_limit=7, repair_ns=2e5,
        )
        assert ResilienceConfig.from_dict(cfg.to_dict()) == cfg

    def test_with_retry_policy_lifts_oram_ladder(self):
        policy = RobustnessConfig(
            retry_budget=9, backoff_base_ns=77.0, backoff_factor=3.0,
        )
        cfg = ResilienceConfig.with_retry_policy(policy, queue_limit=4)
        assert cfg.retry_budget == 9
        assert cfg.backoff_base_ns == 77.0
        assert cfg.backoff_factor == 3.0
        assert cfg.queue_limit == 4

    def test_with_retry_policy_overrides_win(self):
        policy = RobustnessConfig(retry_budget=9)
        assert ResilienceConfig.with_retry_policy(
            policy, retry_budget=1
        ).retry_budget == 1


# ------------------------------------------------------------- journal view

class TestJournalView:
    def _journal(self):
        return [
            Request(rid=1, op=PUT, key=b"a", value=b"v1", arrival_ns=10.0),
            Request(rid=2, op=PUT, key=b"a", value=b"v2", arrival_ns=20.0),
            Request(rid=3, op=DELETE, key=b"b", arrival_ns=30.0),
        ]

    def test_newest_older_write_wins(self):
        assert _journal_view(self._journal(), b"a", (25.0, 9)) == (True, b"v2")

    def test_cutoff_excludes_newer_writes(self):
        assert _journal_view(self._journal(), b"a", (15.0, 9)) == (True, b"v1")

    def test_cutoff_is_exclusive(self):
        # A write at exactly the cutoff did not arrive *before* it.
        assert _journal_view(self._journal(), b"a", (10.0, 1)) == (False, None)

    def test_delete_yields_none(self):
        assert _journal_view(self._journal(), b"b", (99.0, 9)) == (True, None)

    def test_unjournaled_key(self):
        assert _journal_view(self._journal(), b"z", (99.0, 9)) == (False, None)


# ---------------------------------------------------------------- deadlines

class TestDeadlines:
    def test_slow_queue_times_out_late_requests(self):
        keys = [b"dk%d" % i for i in range(10)]
        stack = plain_stack([(k, b"v-" + k) for k in keys])
        reqs = [
            Request(rid=i, op=GET, key=k, arrival_ns=0.0)
            for i, k in enumerate(keys)
        ]
        result = resilient_replay(
            stack, reqs, scheduler_for(stack),
            ResilienceConfig(deadline_ns=2_000.0), max_batch=32,
        )
        status = result.status_counts()
        assert len(result.completions) == len(reqs)
        # One access takes ~us of simulated DRAM time: the first request
        # is served, the rest expire against a 2us deadline.
        assert status.get(OK, 0) >= 1
        assert status.get(TIMED_OUT, 0) >= 1
        for c in result.completions:
            if c.status == TIMED_OUT:
                assert not c.ok and c.accesses == 0

    def test_no_deadline_serves_everything(self):
        keys = [b"dk%d" % i for i in range(10)]
        stack = plain_stack([(k, b"v-" + k) for k in keys])
        reqs = [
            Request(rid=i, op=GET, key=k, arrival_ns=0.0)
            for i, k in enumerate(keys)
        ]
        result = resilient_replay(
            stack, reqs, scheduler_for(stack), ResilienceConfig(),
        )
        assert result.status_counts() == {OK: len(reqs)}
        for c in result.completions:
            assert c.value == b"v-" + c.key


# --------------------------------------------------------- admission control

class TestAdmissionControl:
    def _burst(self, n=6):
        return [
            Request(rid=i, op=GET, key=b"ak%d" % i, arrival_ns=0.0)
            for i in range(n)
        ]

    def test_reject_new_sheds_latest_arrivals(self):
        stack = plain_stack([(b"ak%d" % i, b"v%d" % i) for i in range(6)])
        result = resilient_replay(
            stack, self._burst(), scheduler_for(stack),
            ResilienceConfig(queue_limit=2, shed_policy="reject-new"),
        )
        comps = by_rid(result.completions)
        shed = {rid for rid, c in comps.items() if c.status == SHED}
        assert shed == {2, 3, 4, 5}
        assert comps[0].status == OK and comps[1].status == OK

    def test_drop_oldest_sheds_queue_head(self):
        stack = plain_stack([(b"ak%d" % i, b"v%d" % i) for i in range(6)])
        result = resilient_replay(
            stack, self._burst(), scheduler_for(stack),
            ResilienceConfig(queue_limit=2, shed_policy="drop-oldest"),
        )
        comps = by_rid(result.completions)
        shed = {rid for rid, c in comps.items() if c.status == SHED}
        assert shed == {0, 1, 2, 3}
        assert comps[4].status == OK and comps[5].status == OK

    def test_shed_completions_carry_no_effect(self):
        stack = plain_stack([(b"ak0", b"old")])
        reqs = [
            Request(rid=0, op=PUT, key=b"ak0", value=b"new", arrival_ns=0.0),
            Request(rid=1, op=GET, key=b"ak0", arrival_ns=0.0),
            Request(rid=2, op=GET, key=b"ak0", arrival_ns=0.0),
        ]
        result = resilient_replay(
            stack, reqs, scheduler_for(stack),
            ResilienceConfig(queue_limit=1, shed_policy="drop-oldest"),
        )
        comps = by_rid(result.completions)
        # The put was dropped from the queue head: the surviving get
        # still sees the pre-burst value.
        assert comps[0].status == SHED
        assert comps[2].status == OK and comps[2].value == b"old"


# ------------------------------------------------------------ degraded mode

class TestDegradedMode:
    def test_episode_journal_and_replay(self):
        ka, kb = b"deg-a", b"deg-b"
        stack = sealed_stack([(ka, b"init-a"), (kb, b"init-b")])
        oram = stack.kv.oram
        # Wound the store before serving: the loop serves its first
        # batch, notices the pending quarantine, and goes degraded.
        oram._quarantine(0)
        reqs = [
            Request(rid=0, op=GET, key=ka, arrival_ns=0.0),
            Request(rid=1, op=PUT, key=kb, value=b"new-b", arrival_ns=50.0),
            Request(rid=2, op=GET, key=kb, arrival_ns=60.0),
            Request(rid=3, op=GET, key=b"deg-absent", arrival_ns=70.0),
            Request(rid=4, op=GET, key=kb, arrival_ns=1_500_000.0),
        ]
        result = resilient_replay(
            stack, shifted(stack, reqs), scheduler_for(stack),
            ResilienceConfig(repair_ns=100_000.0, journal_limit=8),
        )
        comps = by_rid(result.completions)
        assert len(comps) == len(reqs)
        # One full episode: entered, rebuilt the quarantined bucket,
        # replayed the single journaled write.
        assert len(result.episodes) == 1
        ep = result.episodes[0]
        assert ep["rebuilt"] >= 1
        assert ep["journal_replayed"] == 1
        assert ep["exit_ns"] > ep["enter_ns"]
        assert oram.quarantine_pending == 0
        # The degraded read on the journaled key sees the journal.
        assert comps[2].status == OK and comps[2].degraded
        assert comps[2].value == b"new-b" and comps[2].accesses == 0
        # The absent key is answerable client-side (directory miss).
        assert comps[3].status == OK and comps[3].degraded
        assert not comps[3].ok and comps[3].value is None
        # The replayed write completed as a degraded-served put.
        assert comps[1].status == OK and comps[1].degraded
        # After repair the store serves normally and durably.
        assert comps[4].status == OK and not comps[4].degraded
        assert comps[4].value == b"new-b"
        assert result.journal_appends == 1
        assert result.degraded_reads >= 2
        kinds = [e["kind"] for e in result.events]
        assert "degraded_enter" in kinds and "degraded_exit" in kinds

    def test_journal_bound_sheds_writes(self):
        stack = sealed_stack([(b"jb-a", b"va")])
        stack.kv.oram._quarantine(0)
        reqs = [
            Request(rid=0, op=GET, key=b"jb-a", arrival_ns=0.0),
            Request(rid=1, op=PUT, key=b"jb-b", value=b"v1", arrival_ns=50.0),
            Request(rid=2, op=PUT, key=b"jb-c", value=b"v2", arrival_ns=60.0),
            Request(rid=3, op=PUT, key=b"jb-d", value=b"v3", arrival_ns=70.0),
        ]
        result = resilient_replay(
            stack, shifted(stack, reqs), scheduler_for(stack),
            ResilienceConfig(repair_ns=100_000.0, journal_limit=1),
        )
        comps = by_rid(result.completions)
        assert result.journal_appends == 1
        assert result.journal_sheds == 2
        assert comps[1].status == OK          # journaled, then replayed
        assert comps[2].status == SHED
        assert comps[3].status == SHED

    def test_repair_clears_backoffs_so_reads_are_not_overtaken(self):
        """A read parked in retry backoff across a repair must be served
        before any newer same-key write -- the repair clears surviving
        backoffs precisely so the admission-ordered queue drains FIFO."""
        items = [(b"ov-target", b"old")] + [
            (b"ov-fill%d" % i, b"f%d" % i) for i in range(12)
        ]
        stack = sealed_stack(items)
        kv = stack.kv
        # The target key must be cold (evicted into the tree): degraded
        # reads on it are unanswerable and enter the backoff schedule.
        assert kv.resident_value(b"ov-target") == (False, None)
        kv.oram._quarantine(0)
        reqs = shifted(stack, [
            Request(rid=0, op=GET, key=b"ov-fill11", arrival_ns=0.0),
            Request(rid=1, op=GET, key=b"ov-target", arrival_ns=50.0),
            Request(rid=2, op=PUT, key=b"ov-target", value=b"new",
                    arrival_ns=15_000.0),
        ])
        result = resilient_replay(
            stack, reqs, scheduler_for(stack),
            ResilienceConfig(
                retry_budget=6, backoff_base_ns=30_000.0,
                repair_ns=10_000.0,
            ),
        )
        comps = by_rid(result.completions)
        # The put arrives after the repair but before the read's backoff
        # would have expired: FIFO requires the older read still see the
        # pre-put value.
        assert comps[1].status == OK and comps[1].value == b"old"
        assert comps[2].status == OK
        check_per_key_fifo(reqs, result.completions, dict(items))

    def test_unanswerable_read_fails_after_retry_budget(self):
        items = [(b"rx%d" % i, b"val%d" % i) for i in range(24)]
        stack = sealed_stack(items)
        kv = stack.kv
        # Find a key whose chain lives in the tree, not the stash --
        # a degraded server cannot answer it without an access.
        cold = [k for k, _ in items if kv.resident_value(k) == (False, None)]
        assert cold, "population never evicted anything; grow the set"
        target = cold[-1]
        kv.oram._quarantine(0)
        reqs = [
            Request(rid=0, op=GET, key=b"rx0", arrival_ns=0.0),
            Request(rid=1, op=GET, key=target, arrival_ns=50.0),
        ]
        result = resilient_replay(
            stack, shifted(stack, reqs), scheduler_for(stack),
            ResilienceConfig(
                retry_budget=2, backoff_base_ns=1_000.0,
                repair_ns=50_000_000.0,   # repair far beyond the retries
            ),
        )
        comps = by_rid(result.completions)
        assert comps[1].status == FAILED
        assert result.retries == 2


# --------------------------------------- per-key FIFO property (hypothesis)

FIFO_KEYS = [b"fk%d" % i for i in range(4)]
#: The two workload keys are populated *first*, then buried under
#: filler traffic so their chains get evicted into the tree: degraded
#: reads on them are genuinely unanswerable and take the retry path.
FIFO_INITIAL = [(FIFO_KEYS[0], b"init0"), (FIFO_KEYS[1], b"init1")]
FIFO_FILLER = [(b"fill%d" % i, b"fv%d" % i) for i in range(12)]

fifo_ops = st.one_of(
    st.tuples(st.just(GET), st.sampled_from(FIFO_KEYS)),
    st.tuples(st.just(PUT), st.sampled_from(FIFO_KEYS)),
    st.tuples(st.just(DELETE), st.sampled_from(FIFO_KEYS)),
)

fifo_rcfgs = st.builds(
    ResilienceConfig,
    deadline_ns=st.sampled_from([0.0, 300_000.0]),
    queue_limit=st.sampled_from([0, 4]),
    shed_policy=st.sampled_from(["reject-new", "drop-oldest"]),
    retry_budget=st.sampled_from([2, 6]),
    backoff_base_ns=st.just(4_000.0),
    journal_limit=st.sampled_from([1, 8]),
    repair_ns=st.just(20_000.0),
)


def check_per_key_fifo(requests, completions, initial):
    """Every served answer equals the serial-replay answer.

    Replays the *served* operations (``TIMED_OUT``/``SHED``/``FAILED``
    have no store effect) in arrival order against a dict reference;
    every ok get must return exactly the reference value, no matter how
    the loop crossed in and out of degraded mode.
    """
    reqs = {r.rid: r for r in requests}
    assert len(completions) == len(requests)
    assert {c.rid for c in completions} == set(reqs)
    store = dict(initial)
    for c in sorted(completions, key=lambda c: (c.arrival_ns, c.rid)):
        assert c.status in STATUSES
        if c.status != OK:
            assert c.accesses == 0
            continue
        req = reqs[c.rid]
        if req.op == PUT:
            store[req.key] = req.value
        elif req.op == DELETE:
            store.pop(req.key, None)
        else:
            expected = store.get(req.key)
            assert c.value == expected, (
                f"rid {c.rid} read {c.value!r}, serial replay says "
                f"{expected!r} (degraded={c.degraded})"
            )
            assert c.ok == (expected is not None)


class TestPerKeyFifoUnderChaos:
    @given(
        raw=st.lists(fifo_ops, min_size=10, max_size=18),
        gaps=st.lists(st.integers(1, 3_000), min_size=18, max_size=18),
        triggers=st.sets(st.integers(1, 5), min_size=1, max_size=2),
        rcfg=fifo_rcfgs,
        max_batch=st.sampled_from([2, 4]),
    )
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fifo_across_degraded_entry_and_exit(
        self, raw, gaps, triggers, rcfg, max_batch
    ):
        stack = sealed_stack(FIFO_INITIAL + FIFO_FILLER)
        oram = stack.kv.oram
        scheduler = scheduler_for(stack)
        # Deterministic chaos: quarantine a bucket after the N-th served
        # batch -- the loop enters degraded mode exactly there. Journal
        # replay also runs through serve_batch, so a trigger landing on
        # it exercises immediate re-entry after a repair.
        batches = {"n": 0}
        orig = scheduler.serve_batch

        def chaotic_serve(batch):
            out = orig(batch)
            batches["n"] += 1
            if batches["n"] in triggers:
                oram._quarantine(0)
            return out

        scheduler.serve_batch = chaotic_serve
        t = 0.0
        requests = []
        for i, (op, key) in enumerate(raw):
            t += gaps[i]
            requests.append(Request(
                rid=i, op=op, key=key,
                value=b"v%d" % i if op == PUT else None,
                arrival_ns=t,
            ))
        requests = shifted(stack, requests)
        result = resilient_replay(
            stack, requests, scheduler, rcfg, max_batch=max_batch,
        )
        if any(n <= batches["n"] for n in triggers):
            assert result.episodes, "quarantine fired but no episode ran"
        check_per_key_fifo(requests, result.completions, dict(FIFO_INITIAL))
        assert oram.quarantine_pending == 0


# --------------------------------------------------- chaos report machinery

def _mini_workload(name):
    return WorkloadConfig(
        name=name, n_requests=40, n_keys=200, stored_keys=12,
        arrival="poisson", rate_rps=1_000_000.0, zipf_s=0.9,
        read_fraction=0.75, delete_fraction=0.05, value_bytes=24,
        expect_dedup=False,
    )


def _mini_config(**overrides):
    cells = (
        ChaosCell(
            name="mini-base",
            workload=_mini_workload("mini-mix"),
            faults=None,
            resilience=ResilienceConfig(),
            min_availability=1.0,
        ),
        ChaosCell(
            name="mini-tamper",
            workload=_mini_workload("mini-mix"),
            faults=FaultPlan(seed=7, rates={"bit_flip": 0.01}),
            resilience=ResilienceConfig(
                deadline_ns=4_000_000.0, queue_limit=64, retry_budget=6,
                backoff_base_ns=5_000.0, backoff_factor=1.6,
                journal_limit=32, repair_ns=30_000.0,
            ),
        ),
    )
    base = ChaosConfig(levels=LEVELS, cells=cells, smoke=True)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


@pytest.fixture(scope="module")
def mini_chaos_doc():
    return run_chaos(_mini_config())


class TestChaosReport:
    def test_schema_valid_and_gate_clean(self, mini_chaos_doc):
        assert mini_chaos_doc["kind"] == CHAOS_REPORT_KIND
        assert validate_chaos_report(mini_chaos_doc) == []
        assert chaos_check(mini_chaos_doc) == []

    def test_deterministic_across_runs(self, mini_chaos_doc):
        again = run_chaos(_mini_config())
        assert (deterministic_bytes(mini_chaos_doc)
                == deterministic_bytes(again))

    def test_status_accounting(self, mini_chaos_doc):
        for cell in mini_chaos_doc["cells"]:
            sim = cell["sim"]
            assert sum(sim["status"].values()) == sim["completions"]
            assert sim["completions"] == sim["requests"]
            assert 0.0 <= sim["availability"] <= 1.0

    def test_schema_rejects_status_mismatch(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][0]["sim"]["status"]["ok"] += 1
        assert any("status" in e for e in validate_chaos_report(doc))

    def test_schema_rejects_completion_mismatch(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][0]["sim"]["completions"] += 1
        assert validate_chaos_report(doc)

    def test_schema_rejects_bad_availability(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][0]["sim"]["availability"] = 1.5
        assert validate_chaos_report(doc)

    def test_schema_rejects_duplicate_cells(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"].append(copy.deepcopy(doc["cells"][0]))
        assert any("duplicate" in e for e in validate_chaos_report(doc))


class TestChaosCheck:
    def test_availability_floor(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][0]["sim"]["availability"] = 0.5
        assert any("below floor" in p for p in chaos_check(doc))

    def test_detection_gap(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][1]["sim"]["detection"] = {
            "tamper_injected": 2, "tamper_detected": 1, "rate": 0.5,
        }
        assert any("detection gap" in p for p in chaos_check(doc))

    def test_expected_faults_must_fire(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["config"]["cells"][1]["expect_faults"] = True
        sim = doc["cells"][1]["sim"]
        sim["faults"]["injected"] = {
            k: 0 for k in sim["faults"]["injected"]
        }
        assert any("none fired" in p for p in chaos_check(doc))

    def test_expected_episodes_must_occur(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["config"]["cells"][0]["expect_episodes"] = True
        assert any("episodes" in p for p in chaos_check(doc))

    def test_errored_cell_is_a_finding(self, mini_chaos_doc):
        doc = copy.deepcopy(mini_chaos_doc)
        doc["cells"][0] = {"name": "mini-base", "error": "boom"}
        assert any("errored" in p for p in chaos_check(doc))


class TestChaosCompare:
    def test_identical_reports_pass(self, mini_chaos_doc):
        code, messages = compare_chaos_reports(
            mini_chaos_doc, mini_chaos_doc,
        )
        assert code == EXIT_OK
        assert all(m.startswith("OK") for m in messages)

    def test_availability_drop_regresses(self, mini_chaos_doc):
        new = copy.deepcopy(mini_chaos_doc)
        new["cells"][0]["sim"]["availability"] -= 0.05
        code, messages = compare_chaos_reports(mini_chaos_doc, new)
        assert code == EXIT_REGRESSION
        assert any("availability drop" in m for m in messages)

    def test_p99_rise_regresses(self, mini_chaos_doc):
        new = copy.deepcopy(mini_chaos_doc)
        sim = new["cells"][0]["sim"]
        sim["latency_ns"]["p99"] *= 2.0
        code, messages = compare_chaos_reports(mini_chaos_doc, new)
        assert code == EXIT_REGRESSION
        assert any("p99-under-fault" in m for m in messages)

    def test_detection_fall_regresses(self, mini_chaos_doc):
        new = copy.deepcopy(mini_chaos_doc)
        new["cells"][1]["sim"]["detection"] = {
            "tamper_injected": 2, "tamper_detected": 1, "rate": 0.5,
        }
        code, messages = compare_chaos_reports(mini_chaos_doc, new)
        assert code == EXIT_REGRESSION
        assert any("detection fell" in m for m in messages)

    def test_errored_cell_is_an_error(self, mini_chaos_doc):
        new = copy.deepcopy(mini_chaos_doc)
        new["cells"][1] = {"name": "mini-tamper", "error": "worker died"}
        code, messages = compare_chaos_reports(mini_chaos_doc, new)
        assert code == EXIT_ERROR
        assert any("errored in new report" in m for m in messages)

    def test_missing_cell_is_an_error(self, mini_chaos_doc):
        new = copy.deepcopy(mini_chaos_doc)
        del new["cells"][1]
        code, messages = compare_chaos_reports(mini_chaos_doc, new)
        assert code == EXIT_ERROR
        assert any("missing" in m for m in messages)

    def test_compare_files_kind_dispatch(self, mini_chaos_doc, tmp_path):
        import json
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(mini_chaos_doc))
        new.write_text(json.dumps(mini_chaos_doc))
        code, _ = compare_files(str(base), str(new))
        assert code == EXIT_OK
        # A mutated kind must never silently take the wrong gate.
        broken = copy.deepcopy(mini_chaos_doc)
        broken["kind"] = "repro-serve-report"
        new.write_text(json.dumps(broken))
        code, messages = compare_files(str(base), str(new))
        assert code == EXIT_ERROR


class TestChaosCli:
    def test_serve_chaos_writes_report(
        self, mini_chaos_doc, tmp_path, monkeypatch, capsys
    ):
        import json
        import repro.serve.chaos as chaos_mod
        from repro import cli

        def mini_factory(**overrides):
            overrides.pop("progress", None)
            overrides.pop("workers", None)
            return _mini_config(**overrides)

        monkeypatch.setattr(chaos_mod, "smoke_config", mini_factory)
        out = tmp_path / "BENCH_chaos.json"
        rc = cli.main([
            "serve", "chaos", "--smoke", "--out", str(out),
            "--require-detection",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == CHAOS_REPORT_KIND
        assert validate_chaos_report(doc) == []
        captured = capsys.readouterr()
        assert "chaos campaign" in captured.out
        assert "chaos check" in captured.out


# ------------------------------------------------------- KVServer.close fix

class _BrokenPop(dict):
    """A futures table whose pop always explodes: kills the serve loop."""

    def pop(self, *args, **kwargs):
        raise RuntimeError("futures table corrupted")


class TestServerCloseBounded:
    def test_dead_loop_fails_pending_and_close_returns(self):
        stack = plain_stack([(b"sk", b"sv")])
        server = KVServer(stack.kv, max_batch=4)
        with server._work:
            server._futures = _BrokenPop(server._futures)
        future = server.submit(GET, b"sk")
        with pytest.raises(RuntimeError, match="corrupted"):
            future.result(timeout=10)
        # The death is recorded: new submissions refuse immediately.
        with pytest.raises(RuntimeError, match="serve loop died"):
            server.submit(GET, b"sk")
        t0 = time.perf_counter()
        server.close()
        assert time.perf_counter() - t0 < 5.0

    def test_wedged_loop_close_is_bounded(self):
        stack = plain_stack([(b"sk", b"sv")])
        server = KVServer(stack.kv, join_timeout_s=0.3)

        def wedge(batch):
            time.sleep(3.0)
            return []

        server.scheduler.serve_batch = wedge
        future = server.submit(GET, b"sk")
        t0 = time.perf_counter()
        server.close(drain=True)
        elapsed = time.perf_counter() - t0
        assert elapsed < 2.5
        with pytest.raises(RuntimeError, match="unresponsive"):
            future.result(timeout=1)


# --------------------------------------------------- telemetry mirror (PR)

class TestRecoveryTelemetry:
    def test_snapshot_mirrors_recovery_gauges(self):
        from repro.telemetry import Telemetry
        with Telemetry() as t:
            t.record_snapshot({
                "recovery": {"retries": 3, "quarantines": 1},
                "dram_stalled_ns": 42.0,
            })
            reg = t.registry
            assert reg.gauge("recovery.retries").value == 3
            assert reg.gauge("recovery.quarantines").value == 1
            assert reg.gauge("dram.stalled_ns").value == 42.0

    def test_simulation_record_carries_recovery_fields(self):
        from repro.core import schemes as schemes_mod
        from repro.sim.engine import SimConfig, Simulation
        from repro.sim.runner import make_trace
        scheme = schemes_mod.by_name("ring", 7)
        trace = make_trace("spec", "mcf", scheme.n_real_blocks, 20, seed=0)
        sim = Simulation(scheme, trace, SimConfig(
            seed=0, robustness=RobustnessConfig(integrity=True),
        ))
        sim.run()
        record = sim.telemetry_record()
        assert "recovery" in record
        assert "retries" in record["recovery"]
        assert "dram_stalled_ns" in record
