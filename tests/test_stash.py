"""Unit tests for the stash (repro.oram.stash)."""

import pytest

from repro.oram.stash import Stash, StashOverflowError


class TestBasics:
    def test_empty(self):
        s = Stash(10)
        assert len(s) == 0
        assert 3 not in s

    def test_add_and_contains(self):
        s = Stash(10)
        s.add(3, 7)
        assert 3 in s
        assert s.leaf_of(3) == 7
        assert s.occupancy == 1

    def test_add_updates_leaf(self):
        s = Stash(10)
        s.add(3, 7)
        s.add(3, 9)
        assert s.leaf_of(3) == 9
        assert s.occupancy == 1

    def test_remove(self):
        s = Stash(10)
        s.add(3, 7)
        assert s.remove(3) == 7
        assert 3 not in s

    def test_remove_missing_raises(self):
        s = Stash(10)
        with pytest.raises(KeyError):
            s.remove(3)

    def test_remap(self):
        s = Stash(10)
        s.add(3, 7)
        s.remap(3, 1)
        assert s.leaf_of(3) == 1

    def test_remap_missing_raises(self):
        s = Stash(10)
        with pytest.raises(KeyError):
            s.remap(3, 1)

    def test_negative_block_rejected(self):
        s = Stash(10)
        with pytest.raises(ValueError):
            s.add(-1, 0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Stash(0)


class TestOverflowAndPeak:
    def test_overflow_raises(self):
        s = Stash(2)
        s.add(0, 0)
        s.add(1, 0)
        with pytest.raises(StashOverflowError):
            s.add(2, 0)
        assert s.overflow_events == 1

    def test_peak_tracks_maximum(self):
        s = Stash(10)
        for i in range(5):
            s.add(i, 0)
        for i in range(5):
            s.remove(i)
        assert s.peak_occupancy == 5
        assert s.occupancy == 0

    def test_total_inserts_counts_updates(self):
        s = Stash(10)
        s.add(1, 0)
        s.add(1, 1)
        assert s.total_inserts == 2


class TestCandidates:
    def test_same_leaf_block_is_deepest(self):
        s = Stash(10)
        s.add(1, 5)
        cands = s.candidates_for(5, 0, levels=4)
        assert cands == [(1, 3)]

    def test_min_level_filters(self):
        s = Stash(10)
        s.add(1, 0)   # leaf 0
        s.add(2, 7)   # opposite half for evict leaf 0
        cands = s.candidates_for(0, 1, levels=4)
        assert [b for b, _ in cands] == [1]

    def test_sorted_deepest_first(self):
        s = Stash(10)
        s.add(1, 0)
        s.add(2, 1)
        s.add(3, 4)
        cands = s.candidates_for(0, 0, levels=4)
        depths = [d for _, d in cands]
        assert depths == sorted(depths, reverse=True)

    def test_limit(self):
        s = Stash(10)
        for i in range(6):
            s.add(i, 0)
        assert len(s.candidates_for(0, 0, levels=4, limit=3)) == 3

    def test_blocks_iteration(self):
        s = Stash(10)
        s.add(1, 2)
        s.add(3, 4)
        assert dict(s.blocks()) == {1: 2, 3: 4}
