"""Tests for the empirical security analysis (repro.core.security).

The load-bearing test reproduces the paper's Fig. 7 in miniature: an
attacker guessing the real block of every readPath succeeds at ~1/L for
both the Baseline and AB-ORAM, and AB's remote redirections leak no
usable bias.
"""

import numpy as np
import pytest

from conftest import tiny_ab_config, tiny_config

from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker, RemoteMappingCollector


def drive(cfg, n_accesses, seed=0):
    attacker = GuessingAttacker(cfg.levels, seed=seed)
    collector = RemoteMappingCollector()
    oram = build_oram(cfg, seed=seed, observers=[attacker, collector])
    oram.warm_fill()
    rng = np.random.default_rng(seed + 1)
    for _ in range(n_accesses):
        oram.access(int(rng.integers(cfg.n_real_blocks)))
    return oram, attacker, collector


class TestGuessingAttacker:
    def test_baseline_rate_close_to_1_over_l(self):
        cfg = tiny_config(levels=8)
        _, attacker, _ = drive(cfg, 3000)
        assert attacker.success_rate == pytest.approx(1 / 8, abs=0.02)

    def test_ab_rate_matches_baseline(self):
        """Fig. 7: AB-ORAM preserves readPath indistinguishability."""
        base_cfg = tiny_config(levels=8)
        ab_cfg = tiny_ab_config(levels=8)
        _, base_atk, _ = drive(base_cfg, 3000)
        _, ab_atk, _ = drive(ab_cfg, 3000)
        assert ab_atk.success_rate == pytest.approx(base_atk.success_rate,
                                                    abs=0.02)
        assert abs(ab_atk.advantage()) < 0.02

    def test_guesses_count_background_paths_too(self):
        cfg = tiny_config(levels=6, background_evict_threshold=6,
                          evict_rate=10)
        oram, attacker, _ = (None, None, None)
        attacker = GuessingAttacker(cfg.levels, seed=0)
        oram = build_oram(cfg, seed=0, observers=[attacker])
        oram.warm_fill()
        for i in range(150):
            oram.access(i % cfg.n_real_blocks)
        assert attacker.guesses >= 150

    def test_expected_rate(self):
        assert GuessingAttacker(24).expected_rate == pytest.approx(1 / 24)

    def test_empty_reads_ignored(self):
        atk = GuessingAttacker(4)
        atk.on_read_path(0, [], -1)
        assert atk.guesses == 0

    def test_summary_keys(self):
        atk = GuessingAttacker(4)
        assert set(atk.summary()) == {"guesses", "success_rate",
                                      "expected_rate", "advantage"}


class TestRemoteIndistinguishability:
    def test_remote_reads_occur_under_ab(self):
        cfg = tiny_ab_config(levels=8)
        _, _, collector = drive(cfg, 2500)
        assert collector.remote_reads > 0
        assert 0 < collector.remote_fraction < 0.5

    def test_real_blocks_do_appear_remotely(self):
        """If remote slots only held dummies, an attacker could exclude
        them from guessing; real reads must land on remote slots at a
        non-trivial rate."""
        cfg = tiny_ab_config(levels=8)
        _, _, collector = drive(cfg, 4000)
        assert collector.remote_real_hits > 0

    def test_no_remote_reads_under_baseline(self):
        cfg = tiny_config(levels=8)
        _, _, collector = drive(cfg, 500)
        assert collector.remote_reads == 0
        assert collector.remote_fraction == 0.0

    def test_mapping_dictionary_bounded(self):
        collector = RemoteMappingCollector()
        for i in range(5):
            collector.on_read_path(0, [(1, 0, 1, True)], -1)
        assert len(collector.mappings) == 5

    def test_level_conditioned_bias_is_negligible(self):
        """Within one level, remote reads are no likelier to be real
        than local reads (the genuine leak test; aggregate fractions
        only show the public level prior)."""
        cfg = tiny_ab_config(levels=8)
        _, _, collector = drive(cfg, 5000)
        assert abs(collector.weighted_bias()) < 0.06

    def test_level_rows_shape(self):
        cfg = tiny_ab_config(levels=8)
        _, _, collector = drive(cfg, 800)
        rows = collector.level_rows()
        assert rows
        for row in rows:
            assert set(row) == {"level", "real_reads", "P(remote|real)",
                                "dummy_reads", "P(remote|dummy)"}

    def test_level_bias_none_when_unseen(self):
        collector = RemoteMappingCollector()
        assert collector.level_bias(3) is None
        assert collector.weighted_bias() == 0.0


class TestGuessHistograms:
    def test_guess_histogram_spreads_over_levels(self):
        cfg = tiny_config(levels=8)
        _, attacker, _ = drive(cfg, 1500)
        assert (attacker.guess_histogram > 0).all()

    def test_real_histogram_total_matches_found_targets(self):
        cfg = tiny_config(levels=8)
        _, attacker, _ = drive(cfg, 1000)
        assert attacker.real_histogram.sum() <= attacker.guesses
        assert attacker.real_histogram.sum() > 0
