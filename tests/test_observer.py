"""Tests for the controller observer protocol (repro.oram.observer)."""

import numpy as np


from repro.core.ab_oram import build_oram
from repro.oram.observer import BaseObserver
from repro.oram.stats import OpKind


class Recorder(BaseObserver):
    """Observer recording every event for assertions."""

    def __init__(self):
        self.accesses = []
        self.read_paths = []
        self.deaths = []
        self.reclaims = []
        self.reshuffles = []
        self.evictions = []

    def on_access_start(self, access_no):
        self.accesses.append(access_no)

    def on_read_path(self, leaf, reads, target_bucket):
        self.read_paths.append((leaf, list(reads), target_bucket))

    def on_slot_dead(self, bucket, slot, level):
        self.deaths.append((bucket, slot, level))

    def on_slot_reclaimed(self, bucket, slot, level, how):
        self.reclaims.append((bucket, slot, level, how))

    def on_reshuffle(self, bucket, level, kind):
        self.reshuffles.append((bucket, level, kind))

    def on_evict_path(self, leaf):
        self.evictions.append(leaf)


def drive(cfg, n=60, seed=0):
    rec = Recorder()
    oram = build_oram(cfg, seed=seed, observers=[rec])
    oram.warm_fill()
    rng = np.random.default_rng(seed)
    for _ in range(n):
        oram.access(int(rng.integers(cfg.n_real_blocks)))
    return oram, rec


class TestBaseObserver:
    def test_all_hooks_are_noops(self):
        obs = BaseObserver()
        obs.on_access_start(1)
        obs.on_read_path(0, [], -1)
        obs.on_slot_dead(0, 0, 0)
        obs.on_slot_reclaimed(0, 0, 0, "reshuffle")
        obs.on_reshuffle(0, 0, OpKind.EVICT_PATH)
        obs.on_evict_path(0)


class TestEventStream:
    def test_access_numbers_monotone(self, cfg_small):
        _, rec = drive(cfg_small)
        assert rec.accesses == sorted(rec.accesses)
        assert rec.accesses[0] == 1

    def test_one_read_per_level_per_path(self, cfg_small):
        _, rec = drive(cfg_small)
        for _leaf, reads, _tb in rec.read_paths:
            assert len(reads) == cfg_small.levels
            levels = sorted(r[2] for r in reads if not r[3])
            # Non-remote reads cover their own levels exactly once.
            assert len(levels) == len(set(levels))

    def test_target_bucket_is_on_path(self, cfg_small):
        from repro.oram.tree import bucket_on_path
        _, rec = drive(cfg_small)
        found = 0
        for leaf, _reads, tb in rec.read_paths:
            if tb >= 0:
                found += 1
                assert bucket_on_path(tb, leaf, cfg_small.levels)
        assert found > 0

    def test_eviction_count_matches_rate(self, cfg_small):
        oram, rec = drive(cfg_small, n=30)
        expected = (30 + oram.background_accesses) // cfg_small.evict_rate
        assert len(rec.evictions) == expected

    def test_every_death_eventually_reclaimable(self, cfg_small):
        """Reclaim events only ever name slots that died before."""
        _, rec = drive(cfg_small, n=80)
        died = set((b, s) for b, s, _ in rec.deaths)
        for b, s, _lv, _how in rec.reclaims:
            assert (b, s) in died

    def test_reclaim_reasons(self, cfg_ab_small):
        _, rec = drive(cfg_ab_small, n=250, seed=3)
        reasons = {how for _, _, _, how in rec.reclaims}
        assert "reshuffle" in reasons
        assert "remote" in reasons  # rentals happened

    def test_reshuffle_kinds(self, cfg_small):
        _, rec = drive(cfg_small, n=80)
        kinds = {k for _, _, k in rec.reshuffles}
        assert OpKind.EVICT_PATH in kinds

    def test_remote_reads_flagged(self, cfg_ab_small):
        _, rec = drive(cfg_ab_small, n=250, seed=3)
        remote = [r for _, reads, _ in rec.read_paths
                  for r in reads if r[3]]
        assert remote, "no remote reads observed"
        band = set(cfg_ab_small.deadq_levels)
        for _b, _s, lv, _ in remote:
            assert lv in band

    def test_multiple_observers_all_notified(self, cfg_small):
        a, b = Recorder(), Recorder()
        oram = build_oram(cfg_small, seed=0, observers=[a, b])
        for i in range(10):
            oram.access(i % cfg_small.n_real_blocks)
        assert len(a.read_paths) == len(b.read_paths) > 0


class BatchRecorder(BaseObserver):
    """Records raw ``on_slots_reclaimed`` batches without fan-out."""

    def __init__(self):
        self.batches = []

    def on_slots_reclaimed(self, bucket, slots, level, how):
        self.batches.append(
            (int(bucket), [int(s) for s in slots], int(level), how)
        )


class TestBatchedReclaimFanout:
    def test_default_fanout_property(self):
        """The default on_slots_reclaimed is exactly one scalar call
        per slot, in batch order, for any inputs."""
        from hypothesis import given, strategies as st

        @given(
            bucket=st.integers(min_value=0, max_value=10_000),
            slots=st.lists(st.integers(min_value=0, max_value=63),
                           max_size=16),
            level=st.integers(min_value=0, max_value=30),
            how=st.sampled_from(["reshuffle", "remote"]),
        )
        def check(bucket, slots, level, how):
            batched, scalar = Recorder(), Recorder()
            batched.on_slots_reclaimed(bucket, slots, level, how)
            for slot in slots:
                scalar.on_slot_reclaimed(bucket, slot, level, how)
            assert batched.reclaims == scalar.reclaims

        check()

    def test_recorded_ab_reshuffle_batches_replay_to_scalar_stream(
            self, cfg_ab_small):
        """For a real AB run, replaying the controller's coalesced
        reshuffle batches through the default fan-out reproduces the
        scalar observer's reshuffle-reclaim sequence, order included.

        The controller emits remote reclaims as scalar events and
        reshuffle reclaims as batches; both observers ride the same
        run, so the comparison filters the scalar stream down to the
        reshuffle events the batches cover.
        """
        scalar, batch = Recorder(), BatchRecorder()
        oram = build_oram(cfg_ab_small, seed=3, observers=[scalar, batch])
        oram.warm_fill()
        rng = np.random.default_rng(3)
        for _ in range(250):
            oram.access(int(rng.integers(cfg_ab_small.n_real_blocks)))

        assert batch.batches, "run produced no batched reclaims"
        replay = Recorder()
        for bucket, slots, level, how in batch.batches:
            assert how == "reshuffle"  # remote reclaims are never batched
            BaseObserver.on_slots_reclaimed(replay, bucket, slots, level, how)
        expected = [r for r in scalar.reclaims if r[3] == "reshuffle"]
        assert replay.reclaims == expected
