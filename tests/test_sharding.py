"""Tests for the sharded fleet: partition map, routing, control plane.

Three contracts carry the sharding subsystem's correctness story:

1. **The partition map is a keyed PRF** (hypothesis): deterministic
   across instances, always in range, dense local ids, and balanced
   for both uniform and zipf-skewed key populations.
2. **The fleet is N serial shards** by construction: ``run_fleet``'s
   merged per-shard blocks are byte-identical to running each shard
   alone as a serial reference, and byte-identical at any ``--workers``
   width. The same holds for the partitioned trace simulator.
3. **Per-key FIFO survives routing** (hypothesis): against a
   plain-dict reference model replaying operations in arrival order,
   every get through the cross-shard router returns the reference
   value no matter how the window is cut.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import schemes as schemes_mod
from repro.core.sharding.control import (
    DEAD,
    DEGRADED,
    EVENT_KINDS,
    HEALTHY,
    REBUILDING,
    ControlPlane,
    ShardEvent,
    heartbeat_events,
)
from repro.core.sharding.fleet import (
    FleetConfig,
    KillShardDrill,
    _fleet_shard_task,
    build_sharded_stack,
    run_fleet,
    shard_requests,
)
from repro.core.sharding.partition import PartitionMap
from repro.core.sharding.sharded import (
    MIN_SHARD_LEVELS,
    ShardedOram,
    levels_for_blocks,
    run_sharded_sim,
    split_trace,
)
from repro.faults.plan import FaultPlan
from repro.serve import DELETE, GET, PUT, Request
from repro.serve.loadgen import WorkloadConfig
from repro.serve.resilience import ResilienceConfig
from repro.sim.runner import make_trace

settings_kw = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def canon(obj):
    """Canonical JSON bytes -- the byte-identity comparator."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------- partition map

class TestPartitionMap:
    @given(
        key=st.binary(min_size=0, max_size=40),
        seed=st.integers(0, 2**31 - 1),
        shards=st.integers(1, 16),
    )
    @settings(**settings_kw)
    def test_prf_deterministic_across_instances(self, key, seed, shards):
        a = PartitionMap(shards, seed=seed)
        b = PartitionMap(shards, seed=seed)
        got = a.shard_of_bytes(key)
        assert got == b.shard_of_bytes(key)
        assert 0 <= got < shards

    @given(
        block=st.integers(0, 2**24),
        seed=st.integers(0, 1000),
        shards=st.integers(1, 8),
    )
    @settings(**settings_kw)
    def test_block_key_bridge(self, block, seed, shards):
        # Block routing is the byte PRF applied to the canonical
        # b"b|<id>" key -- one routing function, two entry points.
        pmap = PartitionMap(shards, seed=seed)
        assert pmap.shard_of_block(block) == pmap.shard_of_bytes(
            b"b|%d" % block
        )

    @given(
        n=st.integers(0, 2000),
        seed=st.integers(0, 50),
        shards=st.integers(1, 6),
    )
    @settings(**settings_kw)
    def test_split_blocks_dense_local_ids(self, n, seed, shards):
        pmap = PartitionMap(shards, seed=seed)
        shard_ids, local_ids = pmap.split_blocks(n)
        assert len(shard_ids) == len(local_ids) == n
        for s in range(shards):
            mine = local_ids[shard_ids == s]
            # Dense ranks 0..count-1 in global block order.
            assert list(mine) == list(range(len(mine)))
        for block in range(min(n, 64)):
            assert shard_ids[block] == pmap.shard_of_block(block)

    def test_balance_uniform_blocks(self):
        pmap = PartitionMap(4, seed=7)
        shard_ids, _ = pmap.split_blocks(4096)
        counts = np.bincount(shard_ids, minlength=4)
        assert counts.max() / (4096 / 4) < 1.25

    def test_balance_zipf_weighted_keys(self):
        # The routed *load* stays near the even split under the skew
        # the capacity workloads use: the hot shard's share of zipf
        # weight is the even share plus at most one hot key's mass.
        s, n_keys, shards = 0.9, 2000, 4
        pmap = PartitionMap(shards, seed=3)
        ranks = np.arange(1, n_keys + 1, dtype=float)
        weights = ranks ** -s
        weights /= weights.sum()
        share = np.zeros(shards)
        for i, w in enumerate(weights):
            share[pmap.shard_of_bytes(b"key|%d" % i)] += w
        assert share.max() < 0.40

    def test_split_keys_preserves_order(self):
        pmap = PartitionMap(3, seed=1)
        keys = [b"k%d" % i for i in range(60)]
        groups = pmap.split_keys(keys)
        assert sum(len(g) for g in groups) == len(keys)
        for shard, group in enumerate(groups):
            assert group == [
                k for k in keys if pmap.shard_of_bytes(k) == shard
            ]
        occ = pmap.occupancy(keys)
        assert list(occ) == [len(g) for g in groups]

    def test_single_shard_routes_everything_to_zero(self):
        pmap = PartitionMap(1, seed=9)
        assert {pmap.shard_of_block(b) for b in range(128)} == {0}

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            PartitionMap(0)
        with pytest.raises(ValueError):
            PartitionMap(2).split_blocks(-1)

    def test_to_dict_names_the_prf(self):
        d = PartitionMap(4, seed=5).to_dict()
        assert d == {
            "kind": "keyed-prf", "hash": "sha256",
            "num_shards": 4, "seed": 5,
        }


class TestLevelsForBlocks:
    def test_capacity_is_satisfied_and_minimal(self):
        for n in (1, 100, 637, 5000, 2**16):
            levels = levels_for_blocks("ab", n)
            assert schemes_mod.by_name("ab", levels).n_real_blocks >= n
            if levels > MIN_SHARD_LEVELS:
                assert (
                    schemes_mod.by_name("ab", levels - 1).n_real_blocks < n
                )

    def test_floor_is_min_shard_levels(self):
        assert levels_for_blocks("ab", 1) == MIN_SHARD_LEVELS

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            levels_for_blocks("ab", 10**12, max_levels=10)


# -------------------------------------------------------- sharded ORAM

class TestShardedOram:
    def test_routing_and_shape(self):
        oram = ShardedOram("ab", 8, 3, seed=1)
        ref = schemes_mod.by_name("ab", 8)
        assert oram.n_real_blocks == ref.n_real_blocks
        assert sum(oram.shard_blocks) == oram.n_real_blocks
        assert len(oram.stats_by_shard()) == 3
        # Every shard fits its slice at the shared depth.
        assert oram.shard_cfg.n_real_blocks >= max(oram.shard_blocks)
        for block in range(0, oram.n_real_blocks, 97):
            oram.access(block, write=block % 2 == 0)
        d = oram.to_dict()
        assert d["num_shards"] == 3
        assert d["partition"]["kind"] == "keyed-prf"

    def test_out_of_range_access_raises(self):
        oram = ShardedOram("ab", 8, 2, seed=0)
        with pytest.raises(IndexError):
            oram.access(oram.n_real_blocks)
        with pytest.raises(IndexError):
            oram.access(-1)

    def test_invalid_shards_raise(self):
        with pytest.raises(ValueError):
            ShardedOram("ab", 8, 0)


class TestShardedSim:
    def _trace(self, n_blocks, n_requests=240):
        return make_trace("spec", "mcf", n_blocks, n_requests, seed=4)

    def test_split_trace_partitions_and_remaps(self):
        n_blocks = schemes_mod.by_name("ab", 8).n_real_blocks
        trace = self._trace(n_blocks)
        pmap = PartitionMap(3, seed=4)
        subs = split_trace(trace, pmap, n_blocks)
        assert len(subs) == 3
        assert sum(len(s.requests) for s in subs) == len(trace.requests)
        shard_ids, local_ids = pmap.split_blocks(n_blocks)
        counts = np.bincount(shard_ids, minlength=3)
        for i, sub in enumerate(subs):
            assert sub.name == f"{trace.name}@s{i}"
            assert all(0 <= r.block < counts[i] for r in sub.requests)
        # Order within a shard is the program order (stable partition).
        walk = [[] for _ in range(3)]
        for req in trace.requests:
            walk[shard_ids[req.block]].append(
                (int(local_ids[req.block]), req.write)
            )
        for i, sub in enumerate(subs):
            assert [(r.block, r.write) for r in sub.requests] == walk[i]

    def test_merge_is_max_makespan_and_summed_requests(self):
        n_blocks = schemes_mod.by_name("ab", 8).n_real_blocks
        trace = self._trace(n_blocks)
        out = run_sharded_sim("ab", trace, n_blocks, 2, seed=4)
        assert sum(out.shard_requests) == len(trace.requests)
        assert out.exec_ns == max(r.exec_ns for r in out.per_shard)
        merged = out.merged_sim_block()
        assert merged["exec_ns"] == out.exec_ns
        # The merged block carries exactly the serial sim fields.
        from repro.perf.schema import _SIM_FIELDS
        assert set(merged) == set(_SIM_FIELDS)

    def test_run_twice_is_byte_identical(self):
        n_blocks = schemes_mod.by_name("ab", 8).n_real_blocks
        trace = self._trace(n_blocks, n_requests=160)
        a = run_sharded_sim("ab", trace, n_blocks, 2, seed=4)
        b = run_sharded_sim("ab", trace, n_blocks, 2, seed=4)
        assert canon(a.merged_sim_block()) == canon(b.merged_sim_block())

    def test_workers_do_not_change_the_merge(self):
        n_blocks = schemes_mod.by_name("ab", 8).n_real_blocks
        trace = self._trace(n_blocks, n_requests=160)
        serial = run_sharded_sim("ab", trace, n_blocks, 2, seed=4)
        fanned = run_sharded_sim(
            "ab", trace, n_blocks, 2, seed=4, workers=2
        )
        assert canon(serial.merged_sim_block()) == canon(
            fanned.merged_sim_block()
        )

    def test_invalid_shards_raise(self):
        trace = self._trace(100, n_requests=10)
        with pytest.raises(ValueError):
            run_sharded_sim("ab", trace, 100, 0)


# ------------------------------------------------------- fleet serving

def tiny_workload(n_requests=150, stored_keys=64):
    return WorkloadConfig(
        name="tiny",
        n_requests=n_requests,
        n_keys=2000,
        stored_keys=stored_keys,
        arrival="poisson",
        rate_rps=1e8,
        zipf_s=0.7,
        read_fraction=0.8,
        value_bytes=32,
        expect_dedup=False,
    )


def tiny_fleet(**overrides):
    kwargs = dict(
        workload=tiny_workload(), levels=8, num_shards=3, seed=5,
    )
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


class TestFleetVsSerial:
    def test_fleet_equals_independent_serial_shards(self):
        # The headline identity: the merged fleet blocks are
        # byte-identical to each shard run alone as a serial reference.
        cfg = tiny_fleet()
        doc = run_fleet(cfg)
        assert doc["num_shards"] == 3
        worker_cfg = replace(cfg, progress=None, workers=1)
        for shard in range(cfg.num_shards):
            ref = _fleet_shard_task((worker_cfg, shard))
            assert canon(doc["shards"][shard]) == canon(ref["cell"])

    def test_shard_requests_cover_the_workload(self):
        cfg = tiny_fleet()
        wl = cfg.workload
        total_items = total_reqs = 0
        for shard in range(cfg.num_shards):
            items, reqs = shard_requests(cfg, shard)
            total_items += len(items)
            total_reqs += len(reqs)
            # Routing agrees with the fleet's partition map.
            pmap = PartitionMap(cfg.num_shards, seed=cfg.seed)
            assert all(
                pmap.shard_of_bytes(k) == shard for k, _ in items
            )
            assert all(
                pmap.shard_of_bytes(r.key) == shard for r in reqs
            )
        assert total_items == wl.stored_keys
        assert total_reqs == wl.n_requests

    def test_faultless_fleet_serves_everything(self):
        doc = run_fleet(tiny_fleet())
        fleet = doc["fleet"]
        assert fleet["availability"] == 1.0
        assert fleet["completions"] == fleet["requests"] == 150
        assert fleet["makespan_ns"] == max(
            s["sim"]["sim_ns"] for s in doc["shards"]
        )
        assert doc["control"]["all_healthy"] is True

    def test_workers_do_not_change_the_fleet_block(self):
        serial = run_fleet(tiny_fleet())
        fanned = run_fleet(tiny_fleet(workers=2))
        for field in ("num_shards", "shards", "fleet", "control"):
            assert canon(serial[field]) == canon(fanned[field]), field

    def test_drill_shard_validation(self):
        drill = KillShardDrill(
            shard=7,
            faults=FaultPlan(seed=1, rates={"bit_flip": 0.01}),
            resilience=ResilienceConfig(),
        )
        with pytest.raises(ValueError):
            run_fleet(tiny_fleet(drill=drill))


class TestKillShardDrill:
    def test_drill_degrades_detects_and_recovers(self):
        drill = KillShardDrill(
            shard=0,
            faults=FaultPlan(
                seed=202, rates={"bit_flip": 0.01, "replay": 0.008},
            ),
            resilience=ResilienceConfig(
                deadline_ns=4_000_000.0, queue_limit=128,
                retry_budget=8, backoff_base_ns=5_000.0,
                backoff_factor=1.6, journal_limit=96,
                repair_ns=30_000.0,
            ),
            min_availability=0.5,
        )
        cfg = tiny_fleet(
            workload=tiny_workload(n_requests=300, stored_keys=96),
            drill=drill,
        )
        doc = run_fleet(cfg)
        drilled = doc["shards"][0]["sim"]
        assert doc["shards"][0]["drill"] is True
        assert drilled["episodes"]["count"] >= 1
        det = drilled["detection"]
        assert det["tamper_injected"] >= 1
        assert det["tamper_detected"] == det["tamper_injected"]
        assert doc["fleet"]["availability"] >= drill.min_availability
        # The drilled shard's degraded episodes show up in the control
        # timeline and the fleet still ends all-healthy.
        shard0 = doc["control"]["shards"][0]
        states = {t["to"] for t in shard0["transitions"]}
        assert DEGRADED in states
        assert doc["control"]["all_healthy"] is True


# --------------------------------------------------- cross-shard FIFO

FIFO_KEYS = [b"k%d" % i for i in range(6)]

fifo_ops = st.one_of(
    st.tuples(st.just(GET), st.sampled_from(FIFO_KEYS), st.none()),
    st.tuples(st.just(PUT), st.sampled_from(FIFO_KEYS),
              st.binary(min_size=1, max_size=60)),
    st.tuples(st.just(DELETE), st.sampled_from(FIFO_KEYS), st.none()),
)


class TestRouterPerKeyFifo:
    @given(
        raw=st.lists(fifo_ops, min_size=1, max_size=14),
        cuts=st.lists(st.integers(1, 5), max_size=4),
    )
    @settings(**settings_kw)
    def test_matches_dict_reference_model(self, raw, cuts):
        reqs = [
            Request(rid=i, op=op, key=key, value=value, arrival_ns=float(i))
            for i, (op, key, value) in enumerate(raw)
        ]
        stack = build_sharded_stack(
            levels=8, num_shards=3, seed=0, observer=False
        )
        stack.preload([(FIFO_KEYS[0], b"seed0"), (FIFO_KEYS[1], b"seed1")])
        router = stack.router(policy="batch", seed=3)
        model = {FIFO_KEYS[0]: b"seed0", FIFO_KEYS[1]: b"seed1"}

        windows, i = [], 0
        for cut in cuts:
            if i >= len(reqs):
                break
            windows.append(reqs[i:i + cut])
            i += cut
        if i < len(reqs):
            windows.append(reqs[i:])

        for window in windows:
            comps = {c.rid: c for c in router.serve_window(window)}
            assert set(comps) == {r.rid for r in window}
            for req in window:
                comp = comps[req.rid]
                if req.op == GET:
                    expect = model.get(req.key)
                    assert comp.value == expect, (req, comp)
                    assert comp.ok is (expect is not None)
                elif req.op == PUT:
                    model[req.key] = req.value
                    assert comp.ok
                else:
                    existed = req.key in model
                    model.pop(req.key, None)
                    assert comp.ok is existed
        for key in FIFO_KEYS:
            shard = stack.shard_of(key)
            assert stack.stacks[shard].kv.get(key) == model.get(key)

    def test_route_is_a_stable_partition(self):
        stack = build_sharded_stack(
            levels=8, num_shards=3, seed=0, observer=False
        )
        router = stack.router()
        window = [
            Request(rid=i, op=GET, key=b"q%d" % (i % 9), value=None,
                    arrival_ns=float(i))
            for i in range(30)
        ]
        batches = router.route(window)
        assert sum(len(b) for b in batches) == len(window)
        for shard, batch in enumerate(batches):
            assert [r.rid for r in batch] == [
                r.rid for r in window if stack.shard_of(r.key) == shard
            ]


# -------------------------------------------------------- control plane

class TestControlPlane:
    HB = 100.0

    def plane(self):
        return ControlPlane(self.HB, miss_after=3)

    def test_heartbeat_train_shape(self):
        events = heartbeat_events(2, 50.0, 420.0, self.HB)
        assert events[0].kind == "register"
        assert events[-1].kind == "complete"
        assert [e.kind for e in events[1:-1]] == ["heartbeat"] * 3
        assert all(e.shard == 2 for e in events)

    def test_short_window_completes_healthy(self):
        # A run shorter than one heartbeat interval: the completion
        # itself is the evidence of health.
        plane = self.plane()
        plane.run(heartbeat_events(0, 0.0, 40.0, self.HB))
        assert plane.shards[0].state == HEALTHY
        assert plane.all_healthy()

    def test_degraded_cycle_returns_to_healthy(self):
        plane = self.plane()
        plane.run([
            ShardEvent(0, "register", 0.0),
            ShardEvent(0, "heartbeat", 100.0),
            ShardEvent(0, "degraded_enter", 150.0),
            ShardEvent(0, "degraded_exit", 180.0),
            ShardEvent(0, "heartbeat", 200.0),
            ShardEvent(0, "complete", 250.0),
        ])
        walk = [(a, b) for _, a, b, _ in plane.shards[0].transitions]
        assert walk == [
            ("registered", HEALTHY),
            (HEALTHY, DEGRADED),
            (DEGRADED, REBUILDING),
            (REBUILDING, HEALTHY),
        ]
        assert plane.all_healthy()

    def test_silent_shard_is_dead_and_can_rejoin(self):
        plane = self.plane()
        plane.run([
            ShardEvent(0, "register", 0.0),
            ShardEvent(0, "heartbeat", 100.0),
            # Silence past miss_after * heartbeat_ns, then a rejoin.
            ShardEvent(0, "heartbeat", 900.0),
            ShardEvent(0, "heartbeat", 1000.0),
            ShardEvent(0, "complete", 1050.0),
        ])
        states = [b for _, _, b, _ in plane.shards[0].transitions]
        assert DEAD in states
        assert states[states.index(DEAD):] == [DEAD, REBUILDING, HEALTHY]
        assert plane.all_healthy()

    def test_shard_that_never_completes_finalizes_dead(self):
        plane = self.plane()
        plane.run(
            heartbeat_events(0, 0.0, 2000.0, self.HB)
            + [ShardEvent(1, "register", 0.0),
               ShardEvent(1, "heartbeat", 100.0)]
        )
        assert plane.shards[0].state == HEALTHY
        assert plane.shards[1].state == DEAD
        assert not plane.all_healthy()

    def test_tie_break_order_is_exit_before_heartbeat(self):
        # Same timestamp: the degraded_exit processes before the
        # heartbeat that proves the rebuild, so the shard lands HEALTHY.
        assert EVENT_KINDS.index("degraded_exit") < EVENT_KINDS.index(
            "heartbeat"
        )
        plane = self.plane()
        plane.run([
            ShardEvent(0, "register", 0.0),
            ShardEvent(0, "degraded_enter", 10.0),
            ShardEvent(0, "heartbeat", 50.0),
            ShardEvent(0, "degraded_exit", 50.0),
            ShardEvent(0, "complete", 60.0),
        ])
        assert plane.shards[0].state == HEALTHY

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ShardEvent(0, "reboot", 0.0)
        with pytest.raises(ValueError):
            ControlPlane(0.0)
        with pytest.raises(ValueError):
            ControlPlane(100.0, miss_after=0)
        plane = self.plane()
        plane.register(0)
        with pytest.raises(ValueError):
            plane.register(0)
        with pytest.raises(ValueError):
            plane.observe(ShardEvent(5, "heartbeat", 10.0))

    def test_summary_is_deterministic(self):
        def build():
            plane = self.plane()
            plane.run(
                heartbeat_events(1, 0.0, 500.0, self.HB)
                + heartbeat_events(0, 0.0, 450.0, self.HB)
            )
            return plane.summary()
        assert canon(build()) == canon(build())
        assert [s["shard"] for s in build()["shards"]] == [0, 1]


# ------------------------------------------------------ capacity curve

def tiny_scaling_config(**overrides):
    from repro.serve.scaling import ScalingCell, ScalingConfig
    wl = tiny_workload(n_requests=120, stored_keys=48)
    blocks = 2 ** 10
    cells = tuple(
        ScalingCell(
            name="cap-1k", total_blocks=blocks, shards=s, workload=wl,
        )
        for s in (1, 2)
    )
    kwargs = dict(
        measured_levels=8, cells=cells, smoke=True, min_speedup=1.2,
    )
    kwargs.update(overrides)
    return ScalingConfig(**kwargs)


class TestScalingHarness:
    def test_memory_block_invariants(self):
        from repro.serve.scaling import IMBALANCE_MARGIN, memory_block
        total = 2 ** 20
        prev_per_shard = None
        for shards in (1, 2, 4, 8, 16):
            mem = memory_block("ab", total, shards)
            assert mem["fleet_bytes"] == mem["per_shard_bytes"] * shards
            cap = mem["per_shard_capacity"]
            if shards == 1:
                assert cap == total
            else:
                assert cap * shards >= total * IMBALANCE_MARGIN - shards
            levels = mem["shard_levels"]
            assert schemes_mod.by_name("ab", levels).n_real_blocks >= cap
            if prev_per_shard is not None:
                assert mem["per_shard_bytes"] <= prev_per_shard
            prev_per_shard = mem["per_shard_bytes"]
        single = memory_block("ab", total, 1)
        assert single["per_shard_bytes"] == single["single_tree_bytes"]

    def test_tiny_curve_end_to_end(self):
        from repro.serve.report import render_scaling_report
        from repro.serve.scaling import run_scaling, scaling_check
        from repro.serve.schema import (
            deterministic_bytes, validate_scaling_report,
        )
        doc = run_scaling(tiny_scaling_config())
        assert validate_scaling_report(doc) == []
        assert scaling_check(doc) == []
        by_shards = {c["shards"]: c for c in doc["cells"]}
        s1 = by_shards[1]["sim"]["fleet"]["ns_per_request"]
        s2 = by_shards[2]["sim"]["fleet"]["ns_per_request"]
        assert s2 < s1  # two shards drain the window faster than one
        text = render_scaling_report(doc)
        assert "cap-1k" in text
        # The deterministic view is a pure function of the config.
        again = run_scaling(tiny_scaling_config())
        assert deterministic_bytes(doc) == deterministic_bytes(again)

    def test_compare_accepts_self(self):
        from repro.serve.compare import compare_scaling_reports
        from repro.serve.scaling import run_scaling
        doc = run_scaling(tiny_scaling_config())
        rc, lines = compare_scaling_reports(doc, doc)
        assert rc == 0
        assert all(line.startswith("OK") for line in lines)

    def test_speedup_gate_fires_on_a_doctored_report(self):
        from repro.serve.scaling import run_scaling, scaling_check
        cfg = tiny_scaling_config()
        from dataclasses import replace as dc_replace
        from repro.serve.scaling import ScalingCell
        cells = tuple(
            ScalingCell(
                name=c.name, total_blocks=c.total_blocks, shards=s,
                workload=c.workload,
            )
            for c, s in zip(cfg.cells, (1, 4))
        )
        doc = run_scaling(dc_replace(cfg, cells=cells))
        assert scaling_check(doc, min_speedup=1.0) == []
        problems = scaling_check(doc, min_speedup=50.0)
        assert any("below" in p for p in problems)


# ----------------------------------------------------- perf cell keys

class TestPerfShardCells:
    def test_cell_key_spells_out_shards(self):
        from repro.perf.schema import cell_key
        assert cell_key({"scheme": "ab", "trace": "mcf"}) == "ab/mcf"
        assert cell_key(
            {"scheme": "ab", "trace": "mcf", "shards": 4}
        ) == "ab/mcf@s4"
        assert cell_key(
            {"scheme": "ns", "trace": "mcf", "pipeline_depth": 4}
        ) == "ns/mcf@p4"

    def test_configs_prune_extras_outside_the_matrix(self):
        from repro.perf.runner import full_config, smoke_config
        cfg = smoke_config()
        assert ("ab", "mcf", 4) in cfg.shards
        narrowed = smoke_config(schemes=("ring",))
        assert narrowed.shards == ()
        assert narrowed.pipeline == ()
        kept = full_config(benchmarks=("mcf",))
        assert ("ab", "mcf", 4) in kept.shards
