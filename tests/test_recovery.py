"""Tests for the recovery ladder (retry -> quarantine -> rebuild)."""

import pytest

from repro.core import schemes as schemes_mod
from repro.faults.plan import FaultPlan
from repro.oram.recovery import RobustnessConfig, TransientBackendError
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace


def _run(robustness, kind=None, rate=0.01, levels=7, requests=150, **plan_kw):
    scheme = schemes_mod.by_name("ring", levels)
    trace = make_trace("spec", "mcf", scheme.n_real_blocks, requests, seed=0)
    plan = (
        FaultPlan(seed=0, rates={kind: rate}, **plan_kw)
        if kind else None
    )
    sim = SimConfig(seed=0, robustness=robustness, fault_plan=plan,
                    check_invariants=True)
    return Simulation(scheme, trace, sim).run()


class TestRobustnessConfig:
    def test_defaults_valid(self):
        RobustnessConfig()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RobustnessConfig(retry_budget=-1)

    def test_roundtrip(self):
        cfg = RobustnessConfig(integrity=True, retry_budget=5,
                               backoff_base_ns=100.0, quarantine=False)
        assert RobustnessConfig.from_dict(cfg.to_dict()) == cfg


class TestTransientRecovery:
    def test_retries_drain_outages(self):
        result = _run(RobustnessConfig(integrity=True), "unavailable")
        c = result.robustness["counters"]
        assert c["transient_faults"] > 0
        assert c["retries"] >= c["transient_faults"]
        assert c["transient_recovered"] > 0
        assert c["retry_exhausted"] == 0
        assert c["unrecovered"] == 0

    def test_backoff_costs_simulated_time(self):
        slow = _run(RobustnessConfig(integrity=True,
                                     backoff_base_ns=50_000.0),
                    "unavailable")
        fast = _run(RobustnessConfig(integrity=True, backoff_base_ns=1.0),
                    "unavailable")
        assert (slow.robustness["counters"]["retries"]
                == fast.robustness["counters"]["retries"])
        assert slow.exec_ns > fast.exec_ns
        assert (slow.robustness["backoff_stalled_ns"]
                > fast.robustness["backoff_stalled_ns"] > 0)

    def test_zero_budget_escalates_to_quarantine(self):
        result = _run(
            RobustnessConfig(integrity=True, retry_budget=0),
            "unavailable",
        )
        c = result.robustness["counters"]
        assert c["retry_exhausted"] == c["transient_faults"] > 0
        assert c["transient_recovered"] == 0
        assert c["rebuilds"] > 0
        assert c["unrecovered"] == 0  # quarantine still recovers them


class TestQuarantineRebuild:
    def test_corruption_is_rebuilt(self):
        result = _run(RobustnessConfig(integrity=True), "bit_flip")
        c = result.robustness["counters"]
        assert c["auth_failures"] > 0
        assert c["quarantines"] > 0
        assert c["rebuilds"] == c["quarantines"]  # all drained by run end
        assert c["recovered"] >= c["rebuilds"]
        assert c["unrecovered"] == 0

    def test_replay_damage_is_repaired(self):
        """A rebuild reseals the bucket, re-pinning the on-chip root, so
        the simulation finishes despite every replay being detected."""
        result = _run(RobustnessConfig(integrity=True), "replay")
        c = result.robustness["counters"]
        assert c["integrity_failures"] > 0
        assert c["rebuilds"] > 0
        assert c["unrecovered"] == 0
        f = result.robustness["faults"]
        assert f["undetected"]["replay"] == 0

    def test_quarantine_off_counts_unrecovered(self):
        result = _run(
            RobustnessConfig(integrity=True, quarantine=False), "bit_flip",
        )
        c = result.robustness["counters"]
        assert c["rebuilds"] == 0
        assert c["unrecovered"] > 0
        # Reads served from zeroed payloads / the stash, not crashes.
        assert c["payload_resets"] + c["stash_served_reads"] > 0

    def test_fault_free_run_counts_nothing(self):
        result = _run(RobustnessConfig(integrity=True))
        c = result.robustness["counters"]
        assert all(v == 0 for v in c.values())


class TestOptOut:
    def test_no_rungs_left_counts_unrecovered(self):
        """retry_budget=0 + quarantine off: every transient fault falls
        off the bottom of the ladder and is counted unrecovered."""
        result = _run(
            RobustnessConfig(integrity=True, retry_budget=0,
                             quarantine=False),
            "unavailable", rate=0.02,
        )
        assert result.robustness["counters"]["unrecovered"] > 0

    def test_without_policy_faults_propagate(self):
        """No robustness policy means no recovery ladder at all: the
        injected fault's error reaches the caller untouched (the legacy
        tamper-propagation behaviour)."""
        from conftest import tiny_config

        from repro.core.ab_oram import build_oram
        from repro.crypto.auth import AuthenticationError
        from repro.faults.memory import FaultyMemory
        from repro.oram.datastore import EncryptedTreeStore

        cfg = tiny_config()
        store = EncryptedTreeStore(cfg, b"test master key.", seed=1)
        mem = FaultyMemory(
            store, FaultPlan(seed=0, rates={"bit_flip": 1.0}), armed=False,
        )
        oram = build_oram(cfg, seed=0, datastore=mem)  # no robustness
        oram.warm_fill()
        mem.armed = True
        with pytest.raises(AuthenticationError):
            for block in range(20):
                oram.access(block)

    def test_transient_error_is_runtime_error(self):
        assert issubclass(TransientBackendError, RuntimeError)
