"""The fleet observability plane, end to end.

Four layers under test:

1. **Streaming SLO engine** (:mod:`repro.telemetry.slo`): windowed
   folding on the simulated clock, burn-rate alerting, and the merge
   property the fleet depends on -- folding shard-split completion
   streams through :func:`fold_completions` produces exactly the
   records and histogram of a serial in-order fold.
2. **Distributed tracing** (:mod:`repro.telemetry.fleet`): minted
   trace ids agree across process boundaries, and the merged Perfetto
   document carries per-shard process tracks and matched flow-event
   pairs that ``tools/check_trace.py`` validates.
3. **The sharded chaos campaign** (``ChaosConfig.num_shards > 1``):
   the report, the merged trace and both JSONL streams are
   byte-identical between a serial run and a ``--workers 2`` run.
4. **The ops console** (:mod:`repro.telemetry.console`): window
   attribution by completion stamp, deterministic replay, and the
   per-shard ``telemetry view`` columns.
"""

import importlib.util
import json
import os
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding.control import (
    ControlPlane, ShardEvent, control_metrics, heartbeat_events,
)
from repro.serve.chaos import (
    ChaosCell, _mix, chaos_check, run_chaos, smoke_config,
)
from repro.serve.request import Completion
from repro.serve.resilience import ResilienceConfig
from repro.serve.schema import deterministic_bytes, validate_chaos_report
from repro.telemetry import (
    MetricsRegistry,
    OpsSampler,
    ShardFragment,
    SloEngine,
    SloRule,
    default_slo_rules,
    fleet_trace_doc,
    fold_completions,
    frames_from_stream,
    mint_trace_id,
    render_frame,
    render_replay,
)
from repro.telemetry.view import load_stream, render_stream


def _load_check_trace():
    tools = os.path.join(os.path.dirname(__file__), os.pardir,
                         "tools", "check_trace.py")
    spec = importlib.util.spec_from_file_location("check_trace", tools)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _stub_stack(occupancy):
    # The minimal object graph OpsSampler reads: kv.oram.stash.occupancy
    # and kv.oram.ext (None = no DeadQ extension).
    oram = types.SimpleNamespace(
        stash=types.SimpleNamespace(occupancy=occupancy), ext=None,
    )
    return types.SimpleNamespace(kv=types.SimpleNamespace(oram=oram))


def _comp(rid, done_ns, status="ok", arrival_ns=None, latency_ns=100.0):
    arrival = done_ns - latency_ns if arrival_ns is None else arrival_ns
    return Completion(
        rid=rid, op="get", key=b"k%d" % rid, value=b"v",
        ok=status == "ok", arrival_ns=arrival,
        start_ns=arrival + (done_ns - arrival) / 2, done_ns=done_ns,
        accesses=1, status=status,
    )


# ------------------------------------------------------------- SLO engine

class TestSloRules:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO rule kind"):
            SloRule("r", "latency_p42", 1.0)

    def test_fraction_kind_bounded(self):
        with pytest.raises(ValueError, match="fraction"):
            SloRule("r", "availability", 1.5)

    def test_default_rules_clamp_floor(self):
        rules = {r.name: r for r in default_slo_rules(min_availability=1.0)}
        assert rules["availability"].threshold < 1.0
        rules = {r.name: r for r in default_slo_rules(min_availability=0.0)}
        assert rules["availability"].threshold > 0.0

    def test_detection_rule_opt_in(self):
        kinds = {r.kind for r in default_slo_rules(detection=True)}
        assert "detection_rate" in kinds
        kinds = {r.kind for r in default_slo_rules(detection=False)}
        assert "detection_rate" not in kinds


class TestSloEngine:
    def test_windows_close_on_crossing(self):
        eng = SloEngine(default_slo_rules(), window_ns=100.0)
        for ns in (10.0, 20.0, 150.0, 460.0):
            eng.observe(ns, True, 50.0)
        summary = eng.finish(500.0)
        windows = [r for r in eng.records if r["type"] == "slo_window"]
        assert [w["window"] for w in windows] == [0, 1, 4]
        assert [w["requests"] for w in windows] == [2, 1, 1]
        assert summary["windows"] == 3
        assert summary["requests"] == 4
        assert summary["availability"] == 1.0

    def test_out_of_order_rejected(self):
        eng = SloEngine(default_slo_rules(), window_ns=100.0)
        eng.observe(50.0, True, 10.0)
        with pytest.raises(ValueError, match="time-ordered"):
            eng.observe(40.0, True, 10.0)

    def test_availability_burn_alert(self):
        # Floor 0.9 -> budget 0.1. A window at availability 0.5 burns
        # 5x; with burn_alert 1.0 that must alert.
        eng = SloEngine(
            (SloRule("avail", "availability", 0.9),), window_ns=100.0,
        )
        for i in range(10):
            eng.observe(float(i), i < 5, 10.0)
        eng.finish(200.0)
        alerts = [r for r in eng.records if r["type"] == "slo_alert"]
        assert len(alerts) == 1
        assert alerts[0]["rule"] == "avail"
        assert alerts[0]["value"] == 0.5
        assert alerts[0]["burn"] == pytest.approx(5.0)

    def test_no_alert_above_floor(self):
        eng = SloEngine(
            (SloRule("avail", "availability", 0.9),), window_ns=100.0,
        )
        for i in range(20):
            eng.observe(float(i), i != 0, 10.0)   # availability 0.95
        eng.finish(200.0)
        assert eng.alerts == []

    def test_latency_burn_alert(self):
        eng = SloEngine(
            (SloRule("p99", "latency_p99", 1_000.0),), window_ns=100.0,
        )
        for i in range(10):
            eng.observe(float(i), True, 90_000.0)
        eng.finish(200.0)
        assert [a["rule"] for a in eng.alerts] == ["p99"]
        assert eng.alerts[0]["burn"] > 1.0

    def test_detection_alert_at_finish(self):
        eng = SloEngine(default_slo_rules(detection=True), window_ns=100.0)
        eng.observe(10.0, True, 50.0)
        eng.finish(100.0, detection={"tamper_injected": 4,
                                     "tamper_detected": 2, "rate": 0.5})
        assert [a["kind"] for a in eng.alerts] == ["detection_rate"]

    def test_trace_instants_match_alerts(self):
        eng = SloEngine(
            (SloRule("avail", "availability", 0.9),), window_ns=100.0,
        )
        for i in range(10):
            eng.observe(float(i), False, 10.0)
        eng.finish(200.0)
        instants = eng.trace_instants(tid=2)
        assert len(instants) == len(eng.alerts) == 1
        inst = instants[0]
        assert inst["ph"] == "i" and inst["s"] == "t"
        assert inst["cat"] == "fleet.slo"
        assert inst["ts"] == pytest.approx(eng.alerts[0]["ns"] / 1000.0)


@st.composite
def completion_streams(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    comps = []
    for rid in range(n):
        done = draw(st.floats(min_value=0.0, max_value=1_000.0,
                              allow_nan=False, allow_infinity=False))
        ok = draw(st.booleans())
        latency = draw(st.floats(min_value=1.0, max_value=500.0,
                                 allow_nan=False, allow_infinity=False))
        comps.append(_comp(rid, done, "ok" if ok else "failed",
                           latency_ns=latency))
    shard_of = [draw(st.integers(min_value=0, max_value=3)) for _ in comps]
    return comps, shard_of


class TestSloMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(completion_streams())
    def test_fleet_fold_equals_serial_fold(self, stream):
        """The tentpole determinism property, at the SLO layer.

        Partition a completion stream over 4 "shards" arbitrarily,
        hand the engine the shard-concatenated (unsorted) stream via
        ``fold_completions``, and every window record, alert and
        histogram bucket must equal a serial engine fed the globally
        time-ordered stream one completion at a time.
        """
        comps, shard_of = stream
        serial = SloEngine(default_slo_rules(), window_ns=100.0)
        for c in sorted(comps, key=lambda c: (c.done_ns, c.rid)):
            serial.observe(c.done_ns, c.status == "ok", c.latency_ns)
        serial_summary = serial.finish(1_000.0)

        shards = [[] for _ in range(4)]
        for c, s in zip(comps, shard_of):
            shards[s].append(c)
        merged = SloEngine(default_slo_rules(), window_ns=100.0)
        fold_completions(merged, [c for sh in shards for c in sh])
        merged_summary = merged.finish(1_000.0)

        assert merged.records == serial.records
        assert merged_summary == serial_summary
        assert merged.snapshot() == serial.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(completion_streams())
    def test_shard_histograms_sum_to_fleet_histogram(self, stream):
        """Per-shard engines' histograms sum to the fleet histogram."""
        comps, shard_of = stream
        fleet = SloEngine(default_slo_rules(), window_ns=100.0)
        fold_completions(fleet, comps)
        fleet.finish(1_000.0)

        parts = []
        for k in range(4):
            eng = SloEngine(default_slo_rules(), window_ns=100.0)
            fold_completions(
                eng, [c for c, s in zip(comps, shard_of) if s == k],
            )
            eng.finish(1_000.0)
            parts.append(eng.snapshot())
        summed = [
            sum(p["counts"][i] for p in parts)
            for i in range(len(parts[0]["counts"]))
        ]
        assert summed == fleet.snapshot()["counts"]
        assert sum(p["count"] for p in parts) == fleet.snapshot()["count"]


# ------------------------------------------------------ distributed tracing

class TestTraceIds:
    def test_deterministic_across_minters(self):
        assert mint_trace_id(7, 42) == mint_trace_id(7, 42)

    def test_distinct_per_request_and_seed(self):
        ids = {mint_trace_id(seed, rid)
               for seed in range(4) for rid in range(50)}
        assert len(ids) == 200

    def test_id_shape(self):
        tid = mint_trace_id(0, 0)
        assert len(tid) == 16
        int(tid, 16)   # hex


class TestFleetTraceDoc:
    def _fragments(self):
        frags = []
        for shard in range(2):
            comps = [
                _comp(rid, done_ns=100.0 * (rid + 1))
                for rid in range(shard, 6, 2)
            ]
            frags.append(ShardFragment(
                shard=shard,
                completions=comps,
                spans=[("readPath", 10.0 + shard, 40.0)],
                events=[{"kind": "degraded_exit", "ns": 90.0,
                         "enter_ns": 50.0, "rebuilt": 1,
                         "journal_replayed": 0}],
                start_ns=0.0,
                end_ns=700.0,
            ))
        return frags

    def test_validates_with_flows_and_processes(self):
        doc = fleet_trace_doc(self._fragments(), seed=3)
        check = _load_check_trace()
        errors = check.validate_trace(
            doc, require_kinds=["route", "readPath"],
            min_spans=6, require_flows=6,
            require_process=["fleet-router", "shard-0", "shard-1"],
        )
        assert errors == []

    def test_flow_pairs_share_minted_ids(self):
        doc = fleet_trace_doc(self._fragments(), seed=3)
        starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
        assert starts == finishes == {mint_trace_id(3, rid)
                                      for rid in range(6)}

    def test_shard_events_on_own_process(self):
        doc = fleet_trace_doc(self._fragments(), seed=3)
        for e in doc["traceEvents"]:
            if e.get("cat") in ("serve.oram", "serve.queue", "oram"):
                assert e["pid"] == 1 + e["args"].get("shard", e["pid"] - 1)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1, 2}

    def test_control_and_slo_tracks(self):
        control = ControlPlane(heartbeat_ns=100.0)
        events = heartbeat_events(0, 0.0, 700.0, 100.0)
        events += heartbeat_events(1, 0.0, 700.0, 100.0)
        events.append(ShardEvent(0, "degraded_enter", 150.0))
        events.append(ShardEvent(0, "degraded_exit", 250.0))
        control.run(events)
        eng = SloEngine((SloRule("avail", "availability", 0.9),), 100.0)
        for i in range(10):
            eng.observe(float(i), False, 10.0)
        eng.finish(700.0)
        doc = fleet_trace_doc(
            self._fragments(), seed=3,
            control=control.summary(),
            slo_instants=eng.trace_instants(tid=2),
        )
        check = _load_check_trace()
        assert check.validate_trace(doc) == []
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        names = {e["name"] for e in instants}
        assert "shard0:degraded" in names
        assert "slo:avail" in names
        control_instants = [e for e in instants
                            if e.get("cat") == "fleet.control"]
        assert all(e["tid"] == 1 and e["pid"] == 0
                   for e in control_instants)

    def test_merge_is_pure_function_of_fragments(self):
        a = fleet_trace_doc(self._fragments(), seed=3)
        b = fleet_trace_doc(list(reversed(self._fragments())), seed=3)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# -------------------------------------------------------- control metrics

class TestControlMetrics:
    def _summary(self):
        control = ControlPlane(heartbeat_ns=100.0, miss_after=3)
        events = heartbeat_events(0, 0.0, 1000.0, 100.0)
        events.append(ShardEvent(1, "register", 0.0))
        events.append(ShardEvent(1, "heartbeat", 100.0))
        events.append(ShardEvent(1, "degraded_enter", 150.0))
        events.append(ShardEvent(1, "degraded_exit", 250.0))
        events.append(ShardEvent(1, "heartbeat", 300.0))
        # then silence: shard 1 dies when shard 0's timeline advances.
        control.run(events)
        return control.summary()

    def test_transition_counters_and_state_gauges(self):
        summary = self._summary()
        snap = control_metrics(summary, MetricsRegistry()).snapshot()
        counters = snap["counters"]
        assert counters["control.transitions.registered_to_healthy"] == 2
        assert counters["control.transitions.healthy_to_degraded"] == 1
        assert counters["control.transitions.degraded_to_rebuilding"] == 1
        assert counters["control.deaths"] == 1
        assert counters["control.completed"] == 1
        gauges = snap["gauges"]
        assert gauges["control.all_healthy"]["value"] == 0.0
        assert gauges["control.shard.0.state"]["value"] == 1.0  # HEALTHY
        assert gauges["control.shard.1.state"]["value"] == 4.0  # DEAD

    def test_healthy_fleet_gauge(self):
        control = ControlPlane(heartbeat_ns=100.0)
        control.run(heartbeat_events(0, 0.0, 500.0, 100.0))
        snap = control_metrics(control.summary(),
                               MetricsRegistry()).snapshot()
        assert snap["gauges"]["control.all_healthy"]["value"] == 1.0
        assert "control.deaths" not in snap["counters"]


# --------------------------------------------------------- sharded chaos

def tiny_chaos(**overrides):
    """Two fast cells (one faultless, one tampered) on a 2-shard fleet."""
    wl = _mix("obs-mix", 120, 48)
    cells = (
        ChaosCell(
            name="baseline", workload=wl, faults=None,
            resilience=ResilienceConfig(), min_availability=1.0,
        ),
        smoke_config().cells[2],   # the tamper cell: degraded episodes
    )
    return smoke_config(cells=cells, num_shards=2, **overrides)


class TestShardedChaos:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = {}
        for tag, workers in (("serial", 1), ("fanned", 2)):
            d = tmp_path_factory.mktemp(tag)
            cfg = tiny_chaos(
                workers=workers,
                trace_out=str(d / "trace.json"),
                slo_out=str(d / "slo.jsonl"),
                ops_out=str(d / "ops.jsonl"),
            )
            doc = run_chaos(cfg)
            out[tag] = {
                "doc": doc,
                "trace": (d / "trace.json").read_bytes(),
                "slo": (d / "slo.jsonl").read_bytes(),
                "ops": (d / "ops.jsonl").read_bytes(),
                "ops_path": str(d / "ops.jsonl"),
            }
        return out

    def test_report_validates_and_gates(self, artifacts):
        doc = artifacts["serial"]["doc"]
        assert validate_chaos_report(doc) == []
        assert chaos_check(doc) == []

    def test_report_has_fleet_blocks(self, artifacts):
        for cell in artifacts["serial"]["doc"]["cells"]:
            sim = cell["sim"]
            assert [s["shard"] for s in sim["shards"]] == [0, 1]
            assert sim["control"]["all_healthy"] is True
            assert sim["slo"]["requests"] == sim["completions"]
            assert sum(s["requests"] for s in sim["shards"]) \
                == sim["requests"]

    def test_tamper_cell_degrades_and_detects(self, artifacts):
        cells = {c["name"]: c for c in artifacts["serial"]["doc"]["cells"]}
        sim = cells["tamper"]["sim"]
        assert sim["episodes"]["count"] >= 1
        assert sim["detection"]["rate"] == 1.0
        states = {
            t["to"]
            for s in sim["control"]["shards"] for t in s["transitions"]
        }
        assert "degraded" in states and "rebuilding" in states

    def test_serial_vs_workers_byte_identical(self, artifacts):
        serial, fanned = artifacts["serial"], artifacts["fanned"]
        assert deterministic_bytes(serial["doc"]) \
            == deterministic_bytes(fanned["doc"])
        for kind in ("trace", "slo", "ops"):
            assert serial[kind] == fanned[kind], f"{kind} stream differs"

    def test_fleet_trace_validates(self, artifacts):
        doc = json.loads(artifacts["serial"]["trace"])
        check = _load_check_trace()
        errors = check.validate_trace(
            doc, require_kinds=["route"], min_spans=100,
            require_flows=100,
            require_process=["fleet-router", "shard-0", "shard-1"],
        )
        assert errors == []

    def test_replay_console_deterministic(self, artifacts):
        path = artifacts["serial"]["ops_path"]
        first = render_replay(path)
        second = render_replay(path)
        assert first == second
        assert len(first) > 0
        assert "shard" in first[0]

    def test_view_renders_fleet_columns(self, artifacts):
        text = render_stream(artifacts["serial"]["ops_path"])
        assert "Fleet snapshots: baseline" in text
        assert "s0" in text and "s1" in text
        assert "stash (peak)" in text


# ------------------------------------------------------------ ops console

class TestOpsConsole:
    def _stream(self):
        return {
            "meta": {"type": "meta"},
            "snapshots": [
                {"type": "snapshot", "cell": "c", "shard": s, "window": w,
                 "ns": 100.0 * (w + 1), "state": "ok", "queue_depth": s,
                 "stash_occupancy": 2, "deadq_depth": 0,
                 "journal_depth": 0, "window_requests": 4, "window_ok": 4,
                 "throughput_rps": 1e4, "p50_ns": 100.0, "p99_ns": 500.0}
                for w in range(2) for s in (1, 0)
            ],
            "slo": [
                {"type": "slo_alert", "cell": "c", "window": 1,
                 "rule": "avail", "value": 0.5, "threshold": 0.9,
                 "burn": 5.0},
            ],
            "summary": {},
        }

    def test_frames_group_and_sort(self):
        frames = frames_from_stream(self._stream())
        assert [f["window"] for f in frames] == [0, 1]
        assert [s["shard"] for s in frames[0]["shards"]] == [0, 1]
        assert frames[0]["alerts"] == []
        assert [a["rule"] for a in frames[1]["alerts"]] == ["avail"]

    def test_render_frame_has_alert_line(self):
        frames = frames_from_stream(self._stream())
        text = render_frame(frames[1])
        assert "cell c | window 1" in text
        assert "ALERT avail" in text and "5.00x" in text

    def test_sampler_attributes_by_done_ns(self):
        sampler = OpsSampler("c", 0, 100.0, _stub_stack(occupancy=3))
        comps = [_comp(0, 50.0), _comp(1, 250.0), _comp(2, 150.0)]
        sampler.sample(10.0, 1, comps[:1], False, 0)
        # A clock jump over three windows: each completion must land
        # in the window its done_ns falls in, not the first closed.
        sampler.sample(310.0, 0, comps, False, 0)
        sampler.finish(310.0, comps)
        by_window = {r["window"]: r for r in sampler.records}
        assert by_window[0]["window_requests"] == 1   # done 50
        assert by_window[1]["window_requests"] == 1   # done 150
        assert by_window[2]["window_requests"] == 1   # done 250
        assert by_window[2]["requests"] == 3
        assert by_window[0]["stash_occupancy"] == 3

    def test_sampler_never_writes(self):
        # load_stream round-trip: records are pure JSON.
        sampler = OpsSampler("c", 1, 100.0, _stub_stack(occupancy=0))
        sampler.sample(10.0, 0, [], False, 0)
        sampler.finish(110.0, [])
        for record in sampler.records:
            json.dumps(record)


class TestStreamLoader:
    def test_load_stream_accepts_slo_records(self, tmp_path):
        path = tmp_path / "s.jsonl"
        lines = [
            {"type": "meta", "kind": "repro-slo-stream"},
            {"type": "slo_window", "window": 0, "requests": 2},
            {"type": "slo_alert", "window": 0, "rule": "avail"},
            {"type": "summary"},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in lines)
        )
        stream = load_stream(str(path))
        assert [r["type"] for r in stream["slo"]] \
            == ["slo_window", "slo_alert"]

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            load_stream(str(path))

    def test_render_slo_windows_without_alerts(self, tmp_path):
        # A healthy SLO stream (windows closed, nothing alerted) must
        # still render its per-cell window summary, not just the meta.
        path = tmp_path / "s.jsonl"
        lines = [
            {"type": "meta", "kind": "repro-slo-stream"},
            {"type": "slo_window", "cell": "c", "window": 0,
             "requests": 4, "availability": 1.0, "p99_ns": 1500.0,
             "burn": {"latency-p99": 0.25}},
            {"type": "slo_window", "cell": "c", "window": 1,
             "requests": 6, "availability": 0.5, "p99_ns": 500.0,
             "burn": {"latency-p99": 0.75, "availability": 0.9}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        text = render_stream(str(path))
        assert "SLO windows" in text
        assert "0.9x availability" in text     # worst burn across windows
        assert "0.500" in text                 # min availability
        assert "SLO alerts" not in text
