"""Full-stack integration: every optional subsystem enabled at once.

One ORAM instance with the AB extensions (DeadQ + remote allocation),
the encrypted tree store (ChaCha20 + MAC + Merkle), recursive position
map with a tiny PLB, DRAM timing, security observers, and dead-block
analytics -- all running together over a mixed workload, with data
correctness checked against a shadow dict and every subsystem's meters
asserted to have moved.
"""

import numpy as np
import pytest

from repro.analysis.deadblocks import LifetimeTracker
from repro.analysis.stash_stats import StashStats
from repro.core import schemes
from repro.core.remote import RemoteAllocator
from repro.core.security import GuessingAttacker
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.oram.datastore import EncryptedTreeStore, pad_block
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, OpKind, TeeSink
from repro.sim.engine import DramSink


@pytest.fixture(scope="module")
def stack():
    cfg = schemes.ab_scheme(8)
    counting = CountingSink(cfg.levels)
    dram_sink = DramSink(TreeLayout(cfg, metadata_blocks=1), DramModel())
    attacker = GuessingAttacker(cfg.levels, seed=9)
    lifetimes = LifetimeTracker(cfg.levels)
    stash_stats = StashStats()
    oram = RingOram(
        cfg,
        sink=TeeSink(counting, dram_sink),
        seed=9,
        extensions=RemoteAllocator(cfg),
        observers=[attacker, lifetimes],
        datastore=EncryptedTreeStore(cfg, b"full stack master key", seed=9),
        posmap_mode="recursive",
        plb_entries=16,
    )
    stash_stats.attach(oram)
    # Force recursion at this tiny scale.
    oram.posmap_model.__init__(cfg.n_real_blocks, plb_entries=16,
                               onchip_entries=32)
    oram.warm_fill()
    shadow = {}
    rng = np.random.default_rng(99)
    mismatches = 0
    for i in range(400):
        blk = int(rng.integers(cfg.n_real_blocks))
        if rng.random() < 0.5:
            val = f"payload-{i}".encode()
            shadow[blk] = pad_block(val, 64)
            oram.write(blk, val)
        else:
            got = oram.read(blk)
            expect = shadow.get(blk, pad_block(b"", 64))
            if got != expect:
                mismatches += 1
    return {
        "cfg": cfg,
        "oram": oram,
        "counting": counting,
        "dram_sink": dram_sink,
        "attacker": attacker,
        "lifetimes": lifetimes,
        "stash_stats": stash_stats,
        "mismatches": mismatches,
        "shadow": shadow,
    }


class TestFullStack:
    def test_data_correct_throughout(self, stack):
        assert stack["mismatches"] == 0

    def test_invariants_hold(self, stack):
        stack["oram"].check_invariants()

    def test_remote_machinery_exercised(self, stack):
        ext = stack["oram"].ext
        assert ext.extension_grants > 0
        assert ext.remote_reads > 0

    def test_posmap_recursion_exercised(self, stack):
        assert stack["counting"].by_kind[OpKind.POSMAP].ops > 0
        assert stack["oram"].posmap_model.misses > 0

    def test_crypto_exercised(self, stack):
        ds = stack["oram"].datastore
        assert ds.seals > 500
        assert ds.opens > 100
        assert ds.integrity.verifications > 100

    def test_dram_time_advanced(self, stack):
        sink = stack["dram_sink"]
        assert sink.now > 0
        assert sum(sink.time_by_kind.values()) > 0
        assert sink.time_by_kind[OpKind.POSMAP] > 0

    def test_attacker_still_blind(self, stack):
        atk = stack["attacker"]
        # With posmap dummy accesses in the mix the success rate only
        # drops below 1/L (dummy paths are unguessable); it must never
        # exceed it significantly.
        assert atk.success_rate < atk.expected_rate + 0.03

    def test_lifetimes_recorded(self, stack):
        assert stack["lifetimes"].count.sum() > 0

    def test_stash_sampled(self, stack):
        s = stack["stash_stats"].summary()
        assert s["samples"] >= 400
        assert s["max"] < stack["cfg"].stash_capacity

    def test_payloads_never_plaintext_in_memory(self, stack):
        memory = bytes(stack["oram"].datastore._memory)
        assert b"payload-" not in memory
