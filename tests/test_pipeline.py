"""Tests for the transaction pipeline (repro.core.pipeline).

The pipeline's contract has three legs, each tested here:

1. Depth 1 is *bit-identical* to the serial controller -- including
   against the committed ``BENCH_perf_smoke.json`` golden sim blocks.
2. Any depth produces *identical logical results* (protocol counters,
   final stash, final position map); only timing-derived fields move.
3. The windowed DRAM model underneath (interval-ledger bus and bank
   placement, admission window) keeps its own invariants.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import schemes
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.timing import DDR3_1600
from repro.perf.schema import (
    cell_key,
    deterministic_bytes,
    deterministic_view,
    validate_report,
)
from repro.perf.profile import parse_cell
from repro.sim.engine import SimConfig, Simulation
from repro.traces.spec import spec_trace

BASELINE = os.path.join(
    os.path.dirname(__file__), os.pardir,
    "benchmarks", "baselines", "BENCH_perf_smoke.json",
)

#: SimResult scalar fields that depend on *when* DRAM traffic lands;
#: everything else must be depth-invariant.
TIMING_ATTRS = frozenset((
    "exec_ns", "ns_per_access", "row_hit_rate", "bandwidth_gbps",
))


def _run(scheme="ns", levels=8, requests=200, warmup=40, seed=0, depth=1):
    cfg = schemes.by_name(scheme, levels)
    trace = spec_trace("mcf", cfg.n_real_blocks, requests, seed=seed)
    sim = Simulation(cfg, trace, SimConfig(
        seed=seed, warmup_requests=warmup, pipeline_depth=depth,
    ))
    result = sim.run()
    return sim, result


def _logical_fields(result):
    """SimResult numeric fields minus the timing-derived ones."""
    out = {}
    for name in dir(result):
        if name.startswith("_") or name in TIMING_ATTRS:
            continue
        value = getattr(result, name)
        if callable(value):
            continue
        if isinstance(value, (dict, list)):
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # Timing-scalar aggregates (ns totals) also move with depth.
            if name.endswith("_ns") or name.endswith("_s"):
                continue
            out[name] = value
    return out


def _oram_state(sim):
    """Final protocol state: stash content and position map."""
    stash = sorted(sim.oram.stash.blocks())
    posmap = sim.oram.posmap._leaf.tolist()
    return stash, posmap


class TestLogicalIdentity:
    def test_depths_agree_with_serial(self):
        base_sim, base = _run(depth=1)
        base_fields = _logical_fields(base)
        base_state = _oram_state(base_sim)
        assert base_fields, "no logical fields extracted"
        for depth in (2, 4, 8):
            sim, result = _run(depth=depth)
            assert _logical_fields(result) == base_fields, f"depth {depth}"
            assert _oram_state(sim) == base_state, f"depth {depth}"

    def test_pipelining_reduces_exec_ns(self):
        # A reshuffle-heavy ns run must get faster, not just stay legal.
        _, serial = _run(requests=300, warmup=50, depth=1)
        _, piped = _run(requests=300, warmup=50, depth=4)
        assert piped.exec_ns < serial.exec_ns

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(depth=st.integers(2, 8),
           seed=st.integers(0, 3),
           scheme=st.sampled_from(["ns", "ring", "ab"]))
    def test_any_depth_matches_serial_reference(self, depth, seed, scheme):
        ref_sim, ref = _run(scheme=scheme, levels=7, requests=120,
                            warmup=20, seed=seed, depth=1)
        sim, result = _run(scheme=scheme, levels=7, requests=120,
                           warmup=20, seed=seed, depth=depth)
        assert _logical_fields(result) == _logical_fields(ref)
        assert _oram_state(sim) == _oram_state(ref_sim)
        assert result.stash_peak == ref.stash_peak

    def test_depth_one_is_serial_sink(self):
        sim, _ = _run(depth=1)
        from repro.sim.engine import DramSink
        assert type(sim.dram_sink) is DramSink

    def test_bad_depth_rejected(self):
        cfg = schemes.by_name("ns", 7)
        trace = spec_trace("mcf", cfg.n_real_blocks, 10, seed=0)
        with pytest.raises(ValueError, match="pipeline_depth"):
            Simulation(cfg, trace, SimConfig(pipeline_depth=0))


class TestGoldenBitIdentity:
    @pytest.fixture(scope="class")
    def baseline(self):
        with open(BASELINE) as f:
            return json.load(f)

    def test_baseline_validates(self, baseline):
        assert validate_report(baseline) == []

    def test_baseline_has_pipeline_cell(self, baseline):
        keys = {cell_key(c) for c in baseline["cells"]}
        assert "ns/mcf@p4" in keys and "ns/mcf" in keys

    def test_depth1_bit_identical_to_golden_cells(self, baseline):
        """Re-simulating every serial golden cell reproduces its sim
        block exactly -- the pipeline work must not perturb depth 1."""
        from repro.perf.runner import _run_one_cell, _sim_block, smoke_config
        cfg = smoke_config()
        config = baseline["config"]
        assert config["levels"] == cfg.levels
        assert config["n_requests"] == cfg.n_requests
        for cell in baseline["cells"]:
            if (cell.get("pipeline_depth", 1) > 1
                    or cell.get("shards", 1) > 1):
                # Sharded cells have their own byte-identity tests in
                # tests/test_sharding.py.
                continue
            _, result = _run_one_cell(cfg, cell["scheme"], cell["trace"])
            assert _sim_block(result) == cell["sim"], cell_key(cell)

    def test_pipelined_golden_cell_reproduces(self, baseline):
        from repro.perf.runner import _run_one_cell, _sim_block, smoke_config
        cell = next(c for c in baseline["cells"]
                    if cell_key(c) == "ns/mcf@p4")
        _, result = _run_one_cell(smoke_config(), "ns", "mcf", depth=4)
        assert _sim_block(result) == cell["sim"]

    def test_golden_speedup_gate(self, baseline):
        cells = {cell_key(c): c for c in baseline["cells"]}
        serial = cells["ns/mcf"]["sim"]["exec_ns"]
        piped = cells["ns/mcf@p4"]["sim"]["exec_ns"]
        assert serial / piped >= 1.5


class TestWindowedDram:
    def _model(self, window=8):
        return DramModel(DDR3_1600, AddressMapping(), window=window)

    def test_legacy_mode_unchanged_by_window_none(self):
        a = DramModel(DDR3_1600, AddressMapping())
        b = DramModel(DDR3_1600, AddressMapping(), window=None)
        for i in range(200):
            addr = (i * 4096 + (i % 3) * 64) % (1 << 22)
            assert (a.access(addr, i % 2 == 0, i * 10.0)
                    == b.access(addr, i % 2 == 0, i * 10.0))
        assert a.stats.row_hits == b.stats.row_hits

    def test_same_direction_bursts_pack(self):
        m = self._model()
        burst = DDR3_1600.burst_ns
        s0 = m._bus_place(0, 0.0, burst, False)
        s1 = m._bus_place(0, 0.0, burst, False)
        # Same direction: back-to-back, no turnaround spacing.
        assert s1 == pytest.approx(s0 + burst)

    def test_direction_turnaround_spacing(self):
        m = self._model()
        burst = DDR3_1600.burst_ns
        s0 = m._bus_place(0, 0.0, burst, True)
        s1 = m._bus_place(0, 0.0, burst, False)
        # A read after a write waits out the write-to-read turnaround.
        assert s1 >= s0 + burst + DDR3_1600.t_wtr

    def test_backfill_into_gap(self):
        m = self._model()
        burst = DDR3_1600.burst_ns
        m._bus_place(0, 100.0, burst, False)
        before = m.stats.backfills
        s = m._bus_place(0, 0.0, burst, False)
        # The earlier-arriving burst lands in the gap before 100ns.
        assert s + burst <= 100.0
        assert m.stats.backfills == before + 1

    def test_bus_placement_is_disjoint(self):
        m = self._model()
        # Hammer one channel with mixed reads/writes at equal arrival.
        for i in range(64):
            m.access((i % 16) * 64, i % 3 == 0, 0.0)
        for busy in m._busy:
            for prev, cur in zip(busy, busy[1:]):
                assert prev[1] <= cur[0], "bus intervals overlap"

    def test_bank_placement_is_disjoint(self):
        m = self._model()
        for i in range(64):
            m.access(i * 64, False, float(i % 5))
        for ivs in m._bank_iv:
            for prev, cur in zip(ivs, ivs[1:]):
                assert prev[1] <= cur[0], "bank intervals overlap"

    def test_backfill_counted(self):
        m = self._model()
        m.access(0, False, 0.0)       # opens bank 0, row 0
        m.access(256, False, 5000.0)  # same channel, bank 1, far future
        # An early row hit on bank 0 lands on the bus *before* the
        # already-committed 5000ns burst: an out-of-order backfill.
        done = m.access(0, False, 100.0)
        assert done < 5000.0
        assert m.stats.backfills >= 1

    def test_window_admission_delays_when_full(self):
        m = self._model(window=2)
        # Saturate one channel's window with concurrent arrivals.
        comps = [m.access((i % 8) * 64, False, 0.0) for i in range(12)]
        assert m.stats.queue_depth_peak <= 2
        assert comps == sorted(comps)

    def test_queue_depth_sampled(self):
        m = self._model(window=16)
        for i in range(32):
            m.access((i % 8) * 64, False, 0.0)
        assert m.stats.queue_depth_peak >= 1
        assert m.stats.queue_depth_mean > 0


class TestTelemetryMetrics:
    def test_dram_and_pipeline_gauges(self, tmp_path):
        from repro.telemetry.handle import Telemetry
        cfg = schemes.by_name("ns", 8)
        trace = spec_trace("mcf", cfg.n_real_blocks, 150, seed=0)
        stream = str(tmp_path / "metrics.jsonl")
        tel = Telemetry(metrics_path=stream, metrics_every=50)
        sim = Simulation(cfg, trace, SimConfig(
            seed=0, warmup_requests=30, pipeline_depth=4,
        ), telemetry=tel)
        sim.run()
        tel.close()
        snap = tel.registry.snapshot()
        gauges = snap["gauges"]
        assert any(k.startswith("dram.channel_busy_ns") for k in gauges)
        assert "dram.queue_depth_peak" in gauges
        assert "dram.bank_busy_peak_ns" in gauges
        assert gauges["pipeline.depth"]["value"] == 4
        assert gauges["pipeline.inflight_peak"]["max"] >= 2
        assert 0.0 < gauges["pipeline.dram_busy_frac"]["value"] <= 1.0
        # The stream's snapshot records carry the same blocks.
        with open(stream) as f:
            records = [json.loads(line) for line in f]
        snaps = [r for r in records if r.get("type") == "snapshot"]
        assert snaps and "dram" in snaps[-1] and "pipeline" in snaps[-1]
        # And the text view renders the new rows.
        from repro.telemetry.view import render_stream
        text = render_stream(stream)
        assert "dram.queue_depth" in text
        assert "pipeline.inflight" in text

    def test_serial_run_has_no_pipeline_block(self, tmp_path):
        from repro.telemetry.handle import Telemetry
        cfg = schemes.by_name("ring", 7)
        trace = spec_trace("mcf", cfg.n_real_blocks, 60, seed=0)
        stream = str(tmp_path / "serial.jsonl")
        tel = Telemetry(metrics_path=stream, metrics_every=20)
        sim = Simulation(cfg, trace, SimConfig(seed=0), telemetry=tel)
        sim.run()
        tel.close()
        with open(stream) as f:
            snaps = [json.loads(line) for line in f
                     if '"snapshot"' in line]
        assert snaps
        assert all("pipeline" not in s for s in snaps)


class TestSchema:
    def _cell(self, scheme="ns", trace="mcf", depth=None):
        sim = {
            "exec_ns": 1.0, "ns_per_access": 1.0, "stash_peak": 1,
            "reshuffles_total": 0, "reshuffles_by_level": [],
            "dram_reads": 0, "dram_writes": 0, "row_hit_rate": 0.5,
            "online_accesses": 1, "background_accesses": 0,
            "evictions": 0, "dead_blocks": 0, "remote_accesses": 0,
        }
        cell = {"scheme": scheme, "trace": trace, "wall_s": 0.1,
                "accesses_per_s": 10.0, "sim": sim}
        if depth is not None:
            cell["pipeline_depth"] = depth
        return cell

    def _doc(self, cells):
        return {
            "kind": "repro-perf-report", "schema_version": 1,
            "config": {
                "schemes": ["ns"], "benchmarks": ["mcf"], "suite": "spec",
                "levels": 8, "n_requests": 10, "warmup_requests": 2,
                "seed": 0, "repeats": 1, "smoke": True,
            },
            "environment": {"python": "x"},
            "cells": cells,
        }

    def test_cell_key_depth_suffix(self):
        assert cell_key(self._cell()) == "ns/mcf"
        assert cell_key(self._cell(depth=1)) == "ns/mcf"
        assert cell_key(self._cell(depth=4)) == "ns/mcf@p4"

    def test_pipelined_twin_not_duplicate(self):
        doc = self._doc([self._cell(), self._cell(depth=4)])
        assert validate_report(doc) == []

    def test_same_depth_twice_is_duplicate(self):
        doc = self._doc([self._cell(depth=4), self._cell(depth=4)])
        assert any("duplicate" in e for e in validate_report(doc))

    def test_bad_depth_flagged(self):
        for bad in (0, -1, True, 2.5, "4"):
            doc = self._doc([self._cell()])
            doc["cells"][0]["pipeline_depth"] = bad
            assert any("pipeline_depth" in e for e in validate_report(doc)), bad

    def test_pipeline_cells_config_type_checked(self):
        doc = self._doc([self._cell()])
        doc["config"]["pipeline_cells"] = "ns/mcf@p4"
        assert any("pipeline_cells" in e for e in validate_report(doc))
        doc["config"]["pipeline_cells"] = [["ns", "mcf", 4]]
        assert validate_report(doc) == []

    def test_deterministic_view_strips_host_fields(self):
        doc = self._doc([self._cell(depth=4)])
        view = deterministic_view(doc)
        assert "environment" not in view
        assert all("wall_s" not in c and "accesses_per_s" not in c
                   for c in view["cells"])
        assert view["cells"][0]["pipeline_depth"] == 4
        # Byte-stable across wall-time changes.
        doc2 = self._doc([self._cell(depth=4)])
        doc2["cells"][0]["wall_s"] = 99.0
        doc2["environment"] = {"python": "y"}
        assert deterministic_bytes(doc) == deterministic_bytes(doc2)

    def test_parse_cell(self):
        assert parse_cell("ns/mcf") == {
            "scheme": "ns", "benchmark": "mcf", "pipeline_depth": 1}
        assert parse_cell("ns/mcf@p4") == {
            "scheme": "ns", "benchmark": "mcf", "pipeline_depth": 4}
        for bad in ("nsmcf", "ns/", "/mcf", "ns/mcf@px", "ns/mcf@p0"):
            with pytest.raises(ValueError):
                parse_cell(bad)


class TestServeStack:
    def test_pipelined_stack_serves_identically(self):
        from repro.serve.stack import build_stack
        serial = build_stack(scheme="ns", levels=7, seed=0)
        piped = build_stack(scheme="ns", levels=7, seed=0, pipeline_depth=4)
        items = [(f"k{i}".encode(), f"value-{i}".encode()) for i in range(8)]
        for k, v in items:
            serial.kv.put(k, v)
            piped.kv.put(k, v)
        for k, v in items:
            assert serial.kv.get(k) == v
            assert piped.kv.get(k) == v

    def test_bad_depth_rejected(self):
        from repro.serve.stack import build_stack
        with pytest.raises(ValueError, match="pipeline_depth"):
            build_stack(pipeline_depth=0)
