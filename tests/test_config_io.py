"""Tests for configuration serialization (repro.oram.config_io)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schemes
from repro.oram.config import BucketGeometry, OramConfig, override_levels, uniform_geometry
from repro.oram.config_io import (
    config_from_dict,
    config_to_dict,
    geometry_from_dict,
    geometry_to_dict,
    load_config,
    save_config,
)


class TestGeometryRoundtrip:
    def test_simple(self):
        g = BucketGeometry(5, 3, overlap=4, remote_extension=2)
        assert geometry_from_dict(geometry_to_dict(g)) == g

    def test_defaults_tolerated(self):
        g = geometry_from_dict({"z_real": 5, "s_reserved": 3})
        assert g.overlap == 0
        assert g.remote_extension == 0


class TestConfigRoundtrip:
    @pytest.mark.parametrize("name", ["baseline", "ir", "dr", "ns", "ab",
                                      "ring", "dr-perf"])
    def test_paper_schemes(self, name):
        cfg = schemes.by_name(name, 24)
        back = config_from_dict(config_to_dict(cfg))
        assert back == cfg

    def test_scaled_scheme(self):
        cfg = schemes.ab_scheme(9)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_run_length_encoding_compact(self):
        cfg = schemes.baseline_cb(24)  # uniform geometry
        d = config_to_dict(cfg)
        assert len(d["geometry_runs"]) == 1
        assert d["geometry_runs"][0]["count"] == 24

    def test_ab_runs_match_bands(self):
        d = config_to_dict(schemes.ab_scheme(24))
        counts = [r["count"] for r in d["geometry_runs"]]
        assert counts == [18, 3, 3]

    def test_format_checked(self):
        with pytest.raises(ValueError, match="unsupported"):
            config_from_dict({"_format": 99})

    def test_file_roundtrip(self, tmp_path):
        cfg = schemes.dr_scheme(12)
        path = tmp_path / "dr.json"
        save_config(cfg, path)
        assert json.loads(path.read_text())["name"] == "DR"
        assert load_config(path) == cfg

    @settings(max_examples=25, deadline=None)
    @given(
        levels=st.integers(2, 10),
        z_real=st.integers(1, 6),
        s=st.integers(1, 6),
        overlap=st.integers(0, 3),
        override_lv=st.integers(0, 9),
    )
    def test_arbitrary_configs_roundtrip(self, levels, z_real, s, overlap,
                                         override_lv):
        overlap = min(overlap, z_real)
        geom = uniform_geometry(levels, z_real, s, overlap=overlap)
        if override_lv < levels:
            geom = override_levels(
                geom, {override_lv: BucketGeometry(z_real, max(0, s - 1),
                                                   overlap=overlap)}
            )
        cfg = OramConfig(levels=levels, geometry=geom, name="fuzz")
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_loaded_config_builds_oram(self, tmp_path):
        from repro.core.ab_oram import build_oram
        cfg = schemes.ab_scheme(7)
        path = tmp_path / "ab.json"
        save_config(cfg, path)
        oram = build_oram(load_config(path), seed=0)
        oram.access(0)
        oram.check_invariants()
