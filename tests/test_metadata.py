"""Unit tests for the metadata bit budget (repro.oram.metadata, Table I)."""

import pytest

from repro.core import schemes
from repro.oram.metadata import (
    ab_metadata_fields,
    deadq_onchip_bytes,
    metadata_bits,
    metadata_blocks,
    metadata_bytes,
    ring_metadata_fields,
    summarize,
    table1,
)


@pytest.fixture
def paper_cfg():
    """The paper's AB configuration at 24 levels."""
    return schemes.ab_scheme(24)


@pytest.fixture
def paper_baseline():
    return schemes.baseline_cb(24)


class TestRingFields:
    def test_field_names(self, paper_baseline):
        names = {f.name for f in ring_metadata_fields(paper_baseline)}
        assert names == {"count", "addr", "label", "ptr", "valid"}

    def test_valid_is_one_bit_per_slot(self, paper_baseline):
        fields = {f.name: f for f in ring_metadata_fields(paper_baseline)}
        assert fields["valid"].bits == paper_baseline.geometry[-1].z_total

    def test_addr_scales_with_z_real(self, paper_baseline):
        fields = {f.name: f for f in ring_metadata_fields(paper_baseline)}
        assert fields["addr"].bits % paper_baseline.geometry[-1].z_real == 0

    def test_categories(self, paper_baseline):
        for f in ring_metadata_fields(paper_baseline):
            assert f.category in ("block", "slot")


class TestAbFields:
    def test_adds_exactly_five(self, paper_cfg):
        ring = {f.name for f in ring_metadata_fields(paper_cfg)}
        ab = {f.name for f in ab_metadata_fields(paper_cfg)}
        assert ab - ring == {"remote", "remoteAddr", "remoteInd",
                             "dynamicS", "status"}

    def test_status_two_bits_per_slot(self, paper_cfg):
        fields = {f.name: f for f in ab_metadata_fields(paper_cfg)}
        assert fields["status"].bits == 2 * paper_cfg.geometry[-1].z_total

    def test_remote_fields_scale_with_r(self, paper_cfg):
        fields = {f.name: f for f in ab_metadata_fields(paper_cfg)}
        assert fields["remote"].bits == paper_cfg.max_remote_slots

    def test_ab_superset_of_ring_bits(self, paper_cfg):
        assert metadata_bits(ab_metadata_fields(paper_cfg)) > metadata_bits(
            ring_metadata_fields(paper_cfg)
        )


class TestPaperSizing:
    def test_ring_metadata_fits_one_block(self, paper_baseline):
        """Paper section VIII-H: Ring metadata is 33B < 64B."""
        s = summarize(paper_baseline)
        assert s["ring_blocks"] == 1
        assert 28 <= s["ring_bytes"] <= 40

    def test_ab_metadata_fits_one_block(self, paper_cfg):
        """Paper: 33B + 28B = 61B <= 64B with R = 6."""
        s = summarize(paper_cfg)
        assert s["fits_one_block"]
        assert s["ab_blocks"] == 1

    def test_ab_extra_is_about_28_bytes(self, paper_cfg):
        s = summarize(paper_cfg)
        assert 20 <= s["ab_extra_bytes"] <= 32

    def test_metadata_blocks_grows_with_r(self, paper_cfg):
        import dataclasses
        big_r = dataclasses.replace(paper_cfg, max_remote_slots=40,
                                    geometry=paper_cfg.geometry)
        fields = ab_metadata_fields(big_r)
        assert metadata_blocks(big_r, fields) >= 2


class TestTable1:
    def test_rows_cover_all_fields(self, paper_cfg):
        rows = table1(paper_cfg)
        assert set(rows) == {"count", "addr", "label", "ptr", "valid",
                             "remote", "remoteAddr", "remoteInd",
                             "dynamicS", "status"}

    def test_ring_columns_zero_for_ab_only_fields(self, paper_cfg):
        rows = table1(paper_cfg)
        for name in ("remote", "remoteAddr", "remoteInd", "dynamicS", "status"):
            assert rows[name]["ring_bits"] == 0
            assert rows[name]["ab_bits"] > 0

    def test_shared_fields_agree(self, paper_cfg):
        rows = table1(paper_cfg)
        for name in ("addr", "label", "ptr", "valid"):
            assert rows[name]["ring_bits"] == rows[name]["ab_bits"]


class TestDeadqOverhead:
    def test_paper_onchip_budget(self, paper_cfg):
        """Six 1000-entry queues of {bucket id, slot} ~ 21KB."""
        size = deadq_onchip_bytes(paper_cfg)
        assert 18 * 1024 <= size <= 24 * 1024

    def test_zero_without_tracked_levels(self, paper_baseline):
        assert deadq_onchip_bytes(paper_baseline) == 0

    def test_scales_with_capacity(self, paper_cfg):
        import dataclasses
        doubled = dataclasses.replace(paper_cfg, deadq_capacity=2000,
                                      geometry=paper_cfg.geometry)
        assert deadq_onchip_bytes(doubled) == 2 * deadq_onchip_bytes(paper_cfg)


class TestHelpers:
    def test_bytes_rounds_up(self, paper_baseline):
        fields = ring_metadata_fields(paper_baseline)
        assert metadata_bytes(fields) == (metadata_bits(fields) + 7) // 8
