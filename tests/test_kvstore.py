"""Tests for the oblivious key-value store (repro.app.kvstore)."""

import numpy as np
import pytest

from repro.app.kvstore import KVFullError, ObliviousKV


@pytest.fixture(scope="module")
def kv():
    return ObliviousKV.create(scheme="ab", levels=8, seed=1)


def fresh(levels=7, encrypted=True, **kw):
    return ObliviousKV.create(scheme="baseline", levels=levels, seed=2,
                              encrypted=encrypted, **kw)


class TestBasics:
    def test_put_get_roundtrip(self, kv):
        kv.put(b"k1", b"value one")
        assert kv.get(b"k1") == b"value one"

    def test_string_keys_normalized(self, kv):
        kv.put("strkey", b"v")
        assert kv.get(b"strkey") == b"v"
        assert "strkey" in kv

    def test_missing_key(self, kv):
        assert kv.get(b"missing") is None
        assert b"missing" not in kv

    def test_empty_value(self, kv):
        kv.put(b"empty", b"")
        assert kv.get(b"empty") == b""

    def test_len_and_keys(self):
        kv = fresh()
        kv.put(b"a", b"1")
        kv.put(b"b", b"2")
        assert len(kv) == 2
        assert set(kv.keys()) == {b"a", b"b"}

    def test_type_errors(self, kv):
        with pytest.raises(TypeError):
            kv.put(123, b"v")
        with pytest.raises(TypeError):
            kv.put(b"k", "not bytes")


class TestChunking:
    def test_multiblock_value(self):
        kv = fresh()
        value = bytes(range(256)) * 3  # 768 B -> 13 chunks of 60B
        kv.put(b"big", value)
        assert kv.get(b"big") == value
        assert len(kv._directory[b"big"]) == -(-768 // kv.chunk_payload)

    def test_exactly_one_chunk_boundary(self):
        kv = fresh()
        v = b"x" * kv.chunk_payload
        kv.put(b"edge", v)
        assert len(kv._directory[b"edge"]) == 1
        assert kv.get(b"edge") == v

    def test_overwrite_grows_chain(self):
        kv = fresh()
        kv.put(b"g", b"small")
        used1 = kv.used_blocks
        kv.put(b"g", b"y" * 500)
        assert kv.used_blocks > used1
        assert kv.get(b"g") == b"y" * 500

    def test_overwrite_shrinks_chain(self):
        kv = fresh()
        kv.put(b"s", b"y" * 500)
        used1 = kv.used_blocks
        kv.put(b"s", b"tiny")
        assert kv.used_blocks < used1
        assert kv.get(b"s") == b"tiny"

    def test_binary_safety(self):
        kv = fresh()
        value = bytes(np.random.default_rng(0).integers(0, 256, 300,
                                                        dtype=np.uint8))
        kv.put(b"bin", value)
        assert kv.get(b"bin") == value


class TestDelete:
    def test_delete_frees_blocks(self):
        kv = fresh()
        kv.put(b"d", b"z" * 400)
        used = kv.used_blocks
        assert kv.delete(b"d")
        assert kv.used_blocks == used - (-(-400 // kv.chunk_payload))
        assert kv.get(b"d") is None

    def test_delete_missing(self):
        kv = fresh()
        assert not kv.delete(b"never")

    def test_blocks_reused_after_delete(self):
        kv = fresh()
        kv.put(b"a", b"1" * 200)
        chain = list(kv._directory[b"a"])
        kv.delete(b"a")
        kv.put(b"b", b"2" * 200)
        assert set(kv._directory[b"b"]) & set(chain)


class TestCapacity:
    def test_full_store_raises(self):
        kv = fresh(levels=4)  # tiny ORAM
        with pytest.raises(KVFullError):
            for i in range(10**6):
                kv.put(f"k{i}".encode(), b"x" * 300)

    def test_stats_shape(self, kv):
        s = kv.stats()
        for field in ("keys", "used_blocks", "free_blocks", "puts", "gets",
                      "deletes", "oram_accesses", "scheme"):
            assert field in s
        assert s["scheme"] == "AB"


class TestPadding:
    def test_pad_chunks_quantizes_chain_lengths(self):
        kv = fresh(pad_chunks=4)
        kv.put(b"tiny", b"x")
        kv.put(b"mid", b"x" * 150)
        assert len(kv._directory[b"tiny"]) == 4
        assert len(kv._directory[b"mid"]) == 4

    def test_padded_access_counts_identical(self):
        """Two values in the same size bucket are indistinguishable by
        ORAM access count (the padding's purpose)."""
        kv = fresh(pad_chunks=4)
        kv.put(b"a", b"x")
        before = kv.oram.online_accesses
        kv.get(b"a")
        cost_small = kv.oram.online_accesses - before
        kv.put(b"b", b"y" * 200)
        before = kv.oram.online_accesses
        kv.get(b"b")
        cost_big = kv.oram.online_accesses - before
        assert cost_small == cost_big

    def test_bad_pad(self):
        with pytest.raises(ValueError):
            fresh(pad_chunks=0)


class TestUnencryptedBackend:
    def test_plaintext_mode_roundtrip(self):
        kv = fresh(encrypted=False)
        kv.put(b"p", b"plain value" * 10)
        assert kv.get(b"p") == b"plain value" * 10

    def test_encrypted_tree_holds_ciphertext(self):
        kv = fresh(encrypted=True)
        kv.put(b"c", b"SENTINEL-PLAINTEXT")
        ds = kv.oram.datastore
        assert b"SENTINEL-PLAINTEXT" not in bytes(ds._memory)


class TestChurn:
    def test_mixed_workload_consistent(self):
        kv = fresh(levels=8)
        rng = np.random.default_rng(3)
        shadow = {}
        for i in range(150):
            key = f"k{int(rng.integers(12))}".encode()
            roll = rng.random()
            if roll < 0.5:
                value = bytes(rng.integers(0, 256, int(rng.integers(1, 200)),
                                           dtype=np.uint8))
                kv.put(key, value)
                shadow[key] = value
            elif roll < 0.8:
                assert kv.get(key) == shadow.get(key)
            else:
                assert kv.delete(key) == (key in shadow)
                shadow.pop(key, None)
        kv.oram.check_invariants()
        assert kv.used_blocks == sum(
            len(c) for c in kv._directory.values()
        )
