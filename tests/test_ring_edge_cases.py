"""Edge-case tests for the Ring controller and the timing engine."""


import numpy as np
import pytest

from conftest import tiny_ab_config, tiny_config

from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.mem.timing import IDEAL_BUS
from repro.oram.bucket import SlotStatus
from repro.oram.observer import BaseObserver
from repro.oram.ring import ProtocolError, RingOram
from repro.oram.stats import CountingSink, OpKind
from repro.oram.tree import reverse_lexicographic_leaf
from repro.sim import SimConfig, simulate
from repro.traces.spec import spec_trace


class TestMetadataWidth:
    def test_wide_metadata_multiplies_accesses(self):
        cfg = tiny_ab_config(levels=6, max_remote_slots=120)
        sink = CountingSink(cfg.levels)
        oram = build_oram(cfg, sink=sink)
        assert oram.metadata_blocks >= 2
        oram.access(0)
        c = sink.by_kind[OpKind.READ_PATH]
        assert c.meta_reads == oram.metadata_blocks * cfg.levels

    def test_narrow_metadata_single_block(self, cfg_small):
        oram = build_oram(cfg_small)
        assert oram.metadata_blocks == 1


class TestTreetopExtremes:
    def test_all_but_leaf_cached(self):
        cfg = tiny_config(levels=6, treetop_levels=5)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        assert sink.by_kind[OpKind.READ_PATH].data_reads == 1

    def test_no_treetop(self):
        cfg = tiny_config(levels=6, treetop_levels=0)
        sink = CountingSink(cfg.levels)
        oram = RingOram(cfg, sink=sink)
        oram.access(0)
        assert sink.by_kind[OpKind.READ_PATH].data_reads == 6


class TestProtocolErrorPaths:
    def test_unreadable_bucket_raises(self, cfg_small):
        oram = RingOram(cfg_small)
        # Sabotage: consume every slot of the root without resetting
        # its counter bookkeeping.
        z = oram.store.z_phys(0)
        for s in range(z):
            oram.store.consume(0, s)
        oram.store.count[0] = 0  # hide the saturation from maintenance
        with pytest.raises(ProtocolError, match="no readable slot"):
            oram.access(0)

    def test_background_burst_cap(self, monkeypatch):
        import repro.oram.ring as ring_mod
        # An impossible configuration (threshold 0: the just-accessed
        # block always keeps occupancy above it) must hit the safety
        # valve rather than spin; shrink the valve to fire immediately.
        monkeypatch.setattr(ring_mod, "_MAX_BACKGROUND_BURST", 0)
        cfg = tiny_config(levels=5, background_evict_threshold=0,
                          evict_rate=10**9, stash_capacity=2000)
        oram = RingOram(cfg, seed=1)
        oram.warm_fill()
        with pytest.raises(ProtocolError, match="background eviction"):
            oram.access(0)


class TestEvictionOrder:
    def test_evictions_follow_reverse_lex(self, cfg_small):
        seen = []

        class EvictWatcher(BaseObserver):
            def on_evict_path(self, leaf):
                seen.append(leaf)

        oram = build_oram(cfg_small, observers=[EvictWatcher()])
        for i in range(3 * cfg_small.evict_rate):
            oram.access(i % cfg_small.n_real_blocks)
        expect = [reverse_lexicographic_leaf(g, cfg_small.levels)
                  for g in range(len(seen))]
        assert seen == expect


class TestPayloadModes:
    def test_no_store_returns_none(self, cfg_small):
        oram = RingOram(cfg_small)
        assert oram.access(0, write=True, value=b"x") is None
        assert oram.access(0) is None

    def test_dict_mode_keeps_arbitrary_objects(self, cfg_small):
        oram = RingOram(cfg_small, store_data=True)
        payload = {"nested": [1, 2, 3]}
        oram.write(1, payload)
        assert oram.read(1) is payload


class TestSlotStatusBookkeeping:
    def test_no_slot_stuck_in_use_forever(self):
        """Every IN_USE slot belongs to exactly one active rental."""
        cfg = tiny_ab_config(levels=6)
        oram = build_oram(cfg, seed=3)
        oram.warm_fill()
        rng = np.random.default_rng(0)
        for _ in range(300):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        in_use = int((oram.store.status == SlotStatus.IN_USE).sum())
        assert in_use == oram.ext.active_rentals()

    def test_queued_entries_match_queue_or_stale(self):
        cfg = tiny_ab_config(levels=6)
        oram = build_oram(cfg, seed=3)
        oram.warm_fill()
        rng = np.random.default_rng(1)
        for _ in range(200):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        queued_status = int((oram.store.status == SlotStatus.QUEUED).sum())
        # Queue may hold stale entries (fewer live QUEUED slots than
        # entries is impossible; more is, via lazy invalidation).
        assert queued_status <= oram.ext.queues.total_entries() + 1


class TestSimulateVariants:
    @pytest.fixture(scope="class")
    def cfg(self):
        return schemes.ab_scheme(8)

    def test_ideal_timing_runs_faster(self, cfg):
        trace = spec_trace("mcf", cfg.n_real_blocks, 150, seed=4)
        real = simulate(cfg, trace, SimConfig(seed=4))
        ideal = simulate(cfg, trace, SimConfig(seed=4, timing=IDEAL_BUS))
        assert ideal.exec_ns < real.exec_ns

    def test_cold_start_supported(self, cfg):
        trace = spec_trace("mcf", cfg.n_real_blocks, 150, seed=4)
        r = simulate(cfg, trace, SimConfig(seed=4, warm_fill=False))
        assert r.exec_ns > 0

    def test_observers_passed_through(self, cfg):
        from repro.core.security import GuessingAttacker
        atk = GuessingAttacker(cfg.levels, seed=0)
        trace = spec_trace("mcf", cfg.n_real_blocks, 120, seed=4)
        simulate(cfg, trace, SimConfig(seed=4, observers=[atk]))
        assert atk.guesses >= 120

    def test_cpu_gap_scales_exec_time(self, cfg):
        fast = spec_trace("mcf", cfg.n_real_blocks, 150, seed=4)  # high MPKI
        slow = spec_trace("lee", cfg.n_real_blocks, 150, seed=4)  # low MPKI
        r_fast = simulate(cfg, fast, SimConfig(seed=4))
        r_slow = simulate(cfg, slow, SimConfig(seed=4))
        # lee has ~2000x fewer misses per instruction -> far more CPU
        # time between accesses -> much longer wall time.
        assert r_slow.exec_ns > 10 * r_fast.exec_ns
