"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import schemes
from repro.oram.config import BucketGeometry, OramConfig, uniform_geometry


def tiny_config(
    levels: int = 6,
    z_real: int = 3,
    s_reserved: int = 2,
    overlap: int = 2,
    **kw,
) -> OramConfig:
    """A small CB-style config for fast protocol tests."""
    opts = dict(
        levels=levels,
        geometry=uniform_geometry(levels, z_real, s_reserved, overlap=overlap),
        evict_rate=3,
        stash_capacity=500,
        name="tiny",
    )
    opts.update(kw)
    return OramConfig(**opts)


def tiny_ab_config(levels: int = 6, **kw) -> OramConfig:
    """A small config exercising DeadQ + remote extension at the bottom."""
    bottom = tuple(range(levels - 2, levels))
    geometry = list(uniform_geometry(levels, 3, 2, overlap=2))
    for lv in bottom:
        geometry[lv] = BucketGeometry(3, 1, overlap=2, remote_extension=1)
    opts = dict(
        levels=levels,
        geometry=tuple(geometry),
        evict_rate=3,
        stash_capacity=500,
        deadq_levels=bottom,
        deadq_capacity=64,
        name="tiny-ab",
    )
    opts.update(kw)
    return OramConfig(**opts)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def cfg_small():
    return tiny_config()


@pytest.fixture
def cfg_ab_small():
    return tiny_ab_config()


@pytest.fixture
def paper_schemes():
    """The five main schemes at the paper's 24-level geometry."""
    return schemes.main_schemes(24)
