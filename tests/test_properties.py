"""Property-based tests (hypothesis) over core data structures and the
ORAM protocol invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import tiny_ab_config, tiny_config

from repro.core.ab_oram import build_oram
from repro.oram import tree
from repro.oram.config import BucketGeometry, OramConfig, uniform_geometry
from repro.oram.stash import Stash
from repro.sim.results import geomean

LEVELS = st.integers(min_value=2, max_value=12)


class TestTreeProperties:
    @given(levels=LEVELS, data=st.data())
    def test_path_is_ancestor_chain(self, levels, data):
        leaf = data.draw(st.integers(0, (1 << (levels - 1)) - 1))
        path = tree.path_buckets(leaf, levels)
        assert path[0] == 0
        for parent, child in zip(path, path[1:]):
            assert tree.parent_of(child) == parent

    @given(levels=LEVELS, data=st.data())
    def test_bucket_on_path_iff_in_path_list(self, levels, data):
        leaf = data.draw(st.integers(0, (1 << (levels - 1)) - 1))
        bucket = data.draw(st.integers(0, (1 << levels) - 2))
        on = tree.bucket_on_path(bucket, leaf, levels)
        assert on == (bucket in tree.path_buckets(leaf, levels))

    @given(levels=LEVELS, data=st.data())
    def test_intersection_level_bounds(self, levels, data):
        n = 1 << (levels - 1)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        lv = tree.intersection_level(a, b, levels)
        assert 0 <= lv <= levels - 1
        if a == b:
            assert lv == levels - 1

    @given(value=st.integers(0, 2**16 - 1), bits=st.integers(1, 16))
    def test_bit_reverse_involution(self, value, bits):
        value %= 1 << bits
        assert tree.bit_reverse(tree.bit_reverse(value, bits), bits) == value

    @given(levels=LEVELS)
    def test_reverse_lex_is_permutation(self, levels):
        leaves = list(tree.reverse_lexicographic_order(levels))
        assert sorted(leaves) == list(range(1 << (levels - 1)))

    @given(levels=LEVELS, g=st.integers(0, 10**6))
    def test_reverse_lex_leaf_in_range(self, levels, g):
        leaf = tree.reverse_lexicographic_leaf(g, levels)
        assert 0 <= leaf < (1 << (levels - 1))


class TestGeometryProperties:
    @given(
        z_real=st.integers(1, 16),
        s=st.integers(0, 16),
        overlap=st.integers(0, 16),
        ext=st.integers(0, 4),
    )
    def test_sustain_identities(self, z_real, s, overlap, ext):
        if overlap > z_real:
            with pytest.raises(ValueError):
                BucketGeometry(z_real, s, overlap, ext)
            return
        g = BucketGeometry(z_real, s, overlap, ext)
        assert g.z_total == z_real + s
        assert g.sustain == g.sustain_unextended + ext
        assert g.sustain_unextended <= g.z_total  # readability guarantee

    @given(levels=st.integers(2, 16), z_real=st.integers(1, 8),
           s=st.integers(0, 8))
    def test_tree_bytes_formula(self, levels, z_real, s):
        cfg = OramConfig(levels=levels,
                         geometry=uniform_geometry(levels, z_real, s))
        assert cfg.tree_bytes == ((1 << levels) - 1) * (z_real + s) * 64
        assert 0 < cfg.space_utilization <= 1.0


class TestStashProperties:
    @given(ops=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 15), st.booleans()),
        max_size=60,
    ))
    def test_stash_mirrors_a_dict(self, ops):
        stash = Stash(1000)
        shadow = {}
        for block, leaf, remove in ops:
            if remove and block in shadow:
                assert stash.remove(block) == shadow.pop(block)
            else:
                stash.add(block, leaf)
                shadow[block] = leaf
            assert len(stash) == len(shadow)
            for blk, lf in shadow.items():
                assert stash.leaf_of(blk) == lf


class TestProtocolProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10**6),
           accesses=st.integers(20, 120),
           ab=st.booleans())
    def test_no_block_lost_under_random_traffic(self, seed, accesses, ab):
        """The fundamental ORAM invariant, fuzzed: every mapped block
        is in exactly one place and on its mapped path."""
        cfg = tiny_ab_config(levels=5) if ab else tiny_config(levels=5)
        oram = build_oram(cfg, seed=seed, store_data=True)
        rng = np.random.default_rng(seed)
        shadow = {}
        for _ in range(accesses):
            blk = int(rng.integers(cfg.n_real_blocks))
            if rng.random() < 0.5:
                val = int(rng.integers(1000))
                oram.write(blk, val)
                shadow[blk] = val
            else:
                assert oram.read(blk) == shadow.get(blk)
        oram.check_invariants()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10**6))
    def test_counts_bounded_by_sustain(self, seed):
        cfg = tiny_ab_config(levels=5)
        oram = build_oram(cfg, seed=seed)
        oram.warm_fill()
        rng = np.random.default_rng(seed ^ 0xABCD)
        for _ in range(100):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
            assert (oram.store.count <= oram.store.sustain).all()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10**6))
    def test_slot_status_consistent_with_contents(self, seed):
        """IN_USE slots never expose contents to their host bucket:
        they must read as CONSUMED in the host's row."""
        from repro.oram.bucket import SlotStatus
        cfg = tiny_ab_config(levels=5)
        oram = build_oram(cfg, seed=seed)
        oram.warm_fill()
        rng = np.random.default_rng(seed)
        for _ in range(80):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        in_use = np.argwhere(oram.store.status == SlotStatus.IN_USE)
        for b, s in in_use:
            assert oram.store.slots[b, s] == -2  # CONSUMED


class TestAggregationProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20), st.floats(min_value=0.01, max_value=10))
    def test_geomean_scale_equivariant(self, values, k):
        a = geomean([v * k for v in values])
        b = geomean(values) * k
        assert a == pytest.approx(b, rel=1e-6)
