"""Tests for the statistical helpers, plus the protocol randomness
checks they enable."""

import numpy as np
import pytest

from repro.analysis.stattests import (
    binomial_interval,
    chi_square_uniform,
    proportion_gap_significant,
)
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker


class TestChiSquare:
    def test_uniform_counts_pass(self):
        rng = np.random.default_rng(0)
        counts = np.bincount(rng.integers(0, 16, 8000), minlength=16)
        _stat, p = chi_square_uniform(counts)
        assert p > 0.001

    def test_skewed_counts_fail(self):
        counts = [1000] + [10] * 15
        _stat, p = chi_square_uniform(counts)
        assert p < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniform([5])
        with pytest.raises(ValueError):
            chi_square_uniform([-1, 5])
        with pytest.raises(ValueError):
            chi_square_uniform([1, 1, 1])  # too few observations


class TestBinomialInterval:
    def test_contains_true_p(self):
        rng = np.random.default_rng(1)
        trials = 5000
        hits = int(rng.binomial(trials, 0.125))
        lo, hi = binomial_interval(hits, trials)
        assert lo <= 0.125 <= hi

    def test_bounds_clamped(self):
        lo, hi = binomial_interval(0, 10)
        assert lo == 0.0
        lo, hi = binomial_interval(10, 10)
        assert hi == 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = binomial_interval(10, 100)
        lo2, hi2 = binomial_interval(1000, 10000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_interval(1, 0)
        with pytest.raises(ValueError):
            binomial_interval(11, 10)


class TestProportionGap:
    def test_identical_not_significant(self):
        assert not proportion_gap_significant(100, 1000, 105, 1000)

    def test_large_gap_significant(self):
        assert proportion_gap_significant(100, 1000, 300, 1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_gap_significant(1, 0, 1, 10)


class TestProtocolRandomness:
    """The security-relevant distributions, tested properly."""

    def _run(self, scheme, accesses=3000, levels=8, seed=0):
        cfg = schemes.by_name(scheme, levels)
        attacker = GuessingAttacker(cfg.levels, seed=seed)
        oram = build_oram(cfg, seed=seed, observers=[attacker])
        oram.warm_fill()
        rng = np.random.default_rng(seed + 1)
        remap_targets = []
        for _ in range(accesses):
            blk = int(rng.integers(cfg.n_real_blocks))
            oram.access(blk)
            remap_targets.append(oram.posmap.peek(blk))
        return cfg, oram, attacker, remap_targets

    def test_remap_leaf_distribution_uniform(self):
        cfg, _oram, _atk, remaps = self._run("ab")
        counts = np.bincount(remaps, minlength=cfg.n_leaves)
        _stat, p = chi_square_uniform(counts)
        assert p > 1e-4

    def test_attacker_rate_within_binomial_ci(self):
        _cfg, _oram, attacker, _ = self._run("ab")
        lo, hi = binomial_interval(attacker.correct, attacker.guesses)
        assert lo <= attacker.expected_rate <= hi

    def test_ab_vs_baseline_rates_statistically_equal(self):
        _, _, base, _ = self._run("baseline", seed=3)
        _, _, ab, _ = self._run("ab", seed=3)
        assert not proportion_gap_significant(
            base.correct, base.guesses, ab.correct, ab.guesses
        )

    def test_eviction_leaf_coverage_uniform_by_construction(self):
        """One reverse-lex round hits every leaf exactly once."""
        from repro.oram.tree import reverse_lexicographic_order
        leaves = list(reverse_lexicographic_order(9))
        counts = np.bincount(leaves, minlength=1 << 8)
        assert (counts == 1).all()
