"""Smoke tests for the example scripts.

Every example must at least import cleanly and parse ``--help`` (this
catches API drift the moment it happens); the two cheapest ones run end
to end at reduced scale.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestHelp:
    def test_all_examples_present(self):
        assert set(EXAMPLES) >= {
            "quickstart.py",
            "space_explorer.py",
            "secure_trace_replay.py",
            "attacker_analysis.py",
            "oblivious_kv.py",
            "corunner_capacity.py",
            "design_space.py",
            "artifact_workflow.py",
        }

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_help_works(self, name):
        proc = run_example(name, "--help", timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "usage" in proc.stdout.lower()


class TestEndToEnd:
    def test_space_explorer_runs(self):
        proc = run_example("space_explorer.py", "--levels", "16")
        assert proc.returncode == 0, proc.stderr
        assert "saved" in proc.stdout

    def test_quickstart_runs_small(self):
        proc = run_example("quickstart.py", "--levels", "8",
                           "--accesses", "120")
        assert proc.returncode == 0, proc.stderr
        assert "invariants hold" in proc.stdout

    def test_oblivious_kv_runs_small(self):
        proc = run_example("oblivious_kv.py", "--levels", "7")
        assert proc.returncode == 0, proc.stderr
        assert "Store statistics" in proc.stdout

    def test_corunner_runs(self):
        proc = run_example("corunner_capacity.py")
        assert proc.returncode == 0, proc.stderr
        assert "AB-ORAM frees" in proc.stdout

    def test_artifact_workflow_runs(self, tmp_path):
        proc = run_example("artifact_workflow.py", "--outdir",
                           str(tmp_path / "bundle"), "--levels", "8",
                           "--requests", "200")
        assert proc.returncode == 0, proc.stderr
        assert "replay: results identical" in proc.stdout
