"""Tests for the analysis package (space math, dead-block observers,
reporting)."""

import numpy as np
import pytest

from conftest import tiny_ab_config, tiny_config

from repro.analysis.deadblocks import DeadBlockCensus, LifetimeTracker
from repro.analysis.report import (
    format_cell,
    render_bars,
    render_mapping_table,
    render_series,
    render_table,
)
from repro.analysis.stash_stats import StashStats
from repro.analysis.space import (
    level_space_profile,
    normalized_space,
    overhead_report,
    space_table,
    utilization_table,
)
from repro.core import schemes
from repro.core.ab_oram import build_oram


class TestSpaceMath:
    def test_normalized_space_paper_values(self, paper_schemes):
        norm = normalized_space(paper_schemes)
        assert norm["Baseline"] == 1.0
        assert norm["DR"] == pytest.approx(0.754, abs=0.002)
        assert norm["NS"] == pytest.approx(0.8125, abs=0.002)
        assert norm["AB"] == pytest.approx(0.645, abs=0.003)

    def test_explicit_baseline(self, paper_schemes):
        norm = normalized_space(paper_schemes, baseline="AB")
        assert norm["AB"] == 1.0
        assert norm["Baseline"] > 1.0

    def test_missing_baseline(self, paper_schemes):
        with pytest.raises(KeyError):
            normalized_space(paper_schemes, baseline="nope")

    def test_empty(self):
        with pytest.raises(ValueError):
            normalized_space([])

    def test_space_table_savings(self, paper_schemes):
        rows = {r["scheme"]: r for r in space_table(paper_schemes)}
        assert rows["AB"]["saving"] == pytest.approx(0.355, abs=0.003)

    def test_utilization_table(self, paper_schemes):
        rows = {r["scheme"]: r for r in utilization_table(paper_schemes)}
        assert rows["Baseline"]["utilization"] == pytest.approx(0.3125, abs=0.001)
        assert rows["AB"]["utilization"] == pytest.approx(0.485, abs=0.003)

    def test_level_profile_sums_to_one(self):
        prof = level_space_profile(schemes.ab_scheme(10))
        assert sum(r["fraction"] for r in prof) == pytest.approx(1.0)

    def test_top_17_of_24_levels_under_one_percent(self):
        """Paper section VIII-C's justification for DR's level choice."""
        prof = level_space_profile(schemes.baseline_cb(24))
        top17 = sum(r["fraction"] for r in prof[:17])
        assert top17 < 0.01

    def test_overhead_report_paper_budget(self):
        rep = overhead_report(schemes.ab_scheme(24))
        assert 18 * 1024 <= rep["deadq_onchip_bytes"] <= 24 * 1024
        assert rep["ab_metadata_fits_block"]
        assert rep["ring_metadata_bytes"] < rep["ab_metadata_bytes"] <= 64


class TestDeadBlockCensus:
    def test_sampling(self):
        cfg = tiny_config()
        oram = build_oram(cfg, seed=1)
        census = DeadBlockCensus(interval=10).attach(oram)
        for i in range(50):
            oram.access(i % cfg.n_real_blocks)
        assert len(census.samples) == 5
        xs = [x for x, _ in census.samples]
        assert xs == [10, 20, 30, 40, 50]

    def test_population_rises_then_plateaus(self):
        """Fig. 2's shape: early growth, then stabilization."""
        cfg = tiny_config(levels=7)
        oram = build_oram(cfg, seed=1)
        oram.warm_fill()
        census = DeadBlockCensus(interval=25).attach(oram)
        rng = np.random.default_rng(0)
        for _ in range(800):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        pops = [d for _, d in census.samples]
        early = np.mean(pops[:4])
        late = np.mean(pops[-8:])
        very_late = np.mean(pops[-4:])
        assert late > early  # rises
        assert abs(very_late - late) < 0.35 * late  # plateaus

    def test_per_level_snapshot_requires_attach(self):
        with pytest.raises(RuntimeError):
            DeadBlockCensus().per_level_snapshot()

    def test_per_level_snapshot_shape(self):
        cfg = tiny_config()
        oram = build_oram(cfg, seed=1)
        census = DeadBlockCensus(interval=5).attach(oram)
        for i in range(30):
            oram.access(i % cfg.n_real_blocks)
        snap = census.per_level_snapshot()
        assert snap.shape == (cfg.levels,)
        assert snap.sum() == oram.store.total_dead_slots()

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            DeadBlockCensus(interval=0)


class TestLifetimeTracker:
    def test_lifetimes_recorded(self):
        cfg = tiny_config(levels=6)
        tracker = LifetimeTracker(cfg.levels)
        oram = build_oram(cfg, seed=2, observers=[tracker])
        oram.warm_fill()
        for i in range(300):
            oram.access(i % cfg.n_real_blocks)
        rows = tracker.rows()
        assert rows, "no lifetimes recorded"
        for row in rows:
            assert 0 <= row["min"] <= row["avg"] <= row["max"]

    def test_pending_dead_matches_unreclaimed(self):
        cfg = tiny_config(levels=6)
        tracker = LifetimeTracker(cfg.levels)
        oram = build_oram(cfg, seed=2, observers=[tracker])
        for i in range(100):
            oram.access(i % cfg.n_real_blocks)
        assert tracker.pending_dead() == oram.store.total_dead_slots()

    def test_remote_reclaims_counted(self):
        """Under AB, rentals close lifetimes (reason 'remote')."""
        cfg = tiny_ab_config(levels=6)
        tracker = LifetimeTracker(cfg.levels)
        oram = build_oram(cfg, seed=2, observers=[tracker])
        oram.warm_fill()
        for i in range(300):
            oram.access(i % cfg.n_real_blocks)
        assert tracker.count.sum() > 0

    def test_mean_nan_for_untouched_levels(self):
        tracker = LifetimeTracker(4)
        means = tracker.mean()
        assert np.isnan(means).all()


class TestReport:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(1.5) == "1.500"
        assert format_cell(123456.0) == "1.23e+05"
        assert format_cell(float("nan")) == "nan"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_mapping_table(self):
        out = render_mapping_table([{"x": 1, "y": 2}], title="M")
        assert "x" in out and "1" in out

    def test_render_mapping_table_empty(self):
        assert render_mapping_table([], title="E") == "E"

    def test_render_series(self):
        out = render_series("L", {"a": {1: 10, 2: 20}, "b": {2: 5}})
        assert "L" in out
        assert "-" in out  # missing value placeholder


class TestRenderBars:
    def test_scales_to_max(self):
        out = render_bars({"a": 1.0, "b": 0.5}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_reference_marker(self):
        out = render_bars({"a": 2.0, "b": 1.0}, width=10, reference=1.0)
        assert "|" in out

    def test_title_and_empty(self):
        assert render_bars({}, title="T") == "T"
        assert "T" in render_bars({"a": 1.0}, title="T")

    def test_zero_values(self):
        out = render_bars({"a": 0.0})
        assert "#" not in out


class TestStashStats:
    def _drive(self, n=120):
        cfg = tiny_config(levels=6)
        stats = StashStats(timeline_interval=20)
        oram = build_oram(cfg, seed=4)
        stats.attach(oram)
        oram.warm_fill()
        for i in range(n):
            oram.access(i % cfg.n_real_blocks)
        return stats

    def test_one_sample_per_access(self):
        stats = self._drive(n=120)
        assert stats.n_samples == 120

    def test_summary_ordering(self):
        s = self._drive().summary()
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]
        assert s["mean"] >= 0

    def test_timeline_interval(self):
        stats = self._drive(n=100)
        assert [x for x, _ in stats.timeline] == [20, 40, 60, 80, 100]

    def test_histogram_mass(self):
        stats = self._drive(n=100)
        assert stats.histogram().sum() == 100

    def test_percentile(self):
        stats = self._drive()
        assert stats.percentile(0) <= stats.percentile(100)

    def test_empty_raises(self):
        stats = StashStats()
        with pytest.raises(ValueError):
            stats.summary()
        with pytest.raises(ValueError):
            stats.histogram()
        with pytest.raises(ValueError):
            stats.percentile(50)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            StashStats(timeline_interval=-1)
