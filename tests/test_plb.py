"""Tests for the recursive position map / PLB model (repro.oram.plb)."""

import numpy as np
import pytest

from conftest import tiny_config

from repro.oram.plb import RecursivePosMap
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, OpKind


class TestDepth:
    def test_flat_when_map_fits_onchip(self):
        pm = RecursivePosMap(1000, onchip_entries=1000)
        assert pm.is_flat
        assert pm.access(0) == 0

    def test_one_level_of_recursion(self):
        # 10000 entries > 1000 on-chip; 10000/16 = 625 <= 1000.
        pm = RecursivePosMap(10000, onchip_entries=1000, fanout=16)
        assert pm.depth == 1

    def test_paper_scale_depth(self):
        """41.9M blocks, 512KB/4B on-chip -> three PM levels in the tree
        (41.9M -> 2.6M -> 164K -> 10K <= 131K on-chip)."""
        pm = RecursivePosMap(41_943_040, onchip_entries=131072, fanout=16)
        assert pm.depth == 3

    def test_depth_grows_with_block_count(self):
        depths = [RecursivePosMap(10 ** k, onchip_entries=100).depth
                  for k in range(2, 7)]
        assert depths == sorted(depths)


class TestPlbBehaviour:
    def test_cold_miss_then_hit(self):
        pm = RecursivePosMap(10000, onchip_entries=100, plb_entries=64)
        first = pm.access(0)
        assert first == pm.depth  # cold: miss every level
        assert pm.access(0) == 0  # hot: PM0 block cached

    def test_spatial_locality_shares_pm_blocks(self):
        pm = RecursivePosMap(10000, onchip_entries=100, fanout=16)
        pm.access(0)
        assert pm.access(1) == 0  # same PM0 block (block//16)
        assert pm.access(16) >= 1  # next PM0 block

    def test_lru_eviction(self):
        pm = RecursivePosMap(10**6, onchip_entries=10, plb_entries=2,
                             fanout=16)
        pm.access(0)
        pm.access(10**5)  # different PM blocks evict block 0's entries
        pm.access(5 * 10**5)
        assert pm.access(0) > 0

    def test_hit_rate_rises_with_locality(self):
        hot = RecursivePosMap(10**5, onchip_entries=100, plb_entries=256)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            hot.access(int(rng.integers(500)))       # tight working set
        cold = RecursivePosMap(10**5, onchip_entries=100, plb_entries=256)
        for _ in range(2000):
            cold.access(int(rng.integers(10**5)))    # full-range scatter
        assert hot.hit_rate > cold.hit_rate

    def test_stats_shape(self):
        pm = RecursivePosMap(10**4, onchip_entries=100)
        pm.access(7)
        s = pm.stats()
        assert s["depth"] == pm.depth
        assert s["hits"] + s["misses"] >= pm.depth

    def test_validation(self):
        with pytest.raises(ValueError):
            RecursivePosMap(0)
        with pytest.raises(ValueError):
            RecursivePosMap(10, plb_entries=0)
        with pytest.raises(ValueError):
            RecursivePosMap(10, fanout=1)
        with pytest.raises(ValueError):
            RecursivePosMap(10, onchip_entries=0)
        pm = RecursivePosMap(10)
        with pytest.raises(ValueError):
            pm.access(10)


class TestControllerIntegration:
    def test_onchip_mode_issues_no_posmap_ops(self, cfg_small):
        sink = CountingSink(cfg_small.levels)
        oram = RingOram(cfg_small, sink=sink, posmap_mode="onchip")
        for i in range(20):
            oram.access(i % cfg_small.n_real_blocks)
        assert sink.by_kind[OpKind.POSMAP].ops == 0

    def test_recursive_mode_issues_posmap_accesses(self):
        cfg = tiny_config(levels=7)
        sink = CountingSink(cfg.levels)
        # Tiny PLB + tiny on-chip share force recursion traffic.
        oram = RingOram(cfg, sink=sink, posmap_mode="recursive",
                        plb_entries=4)
        oram.posmap_model.onchip_entries = 8
        oram.posmap_model.__init__(cfg.n_real_blocks, plb_entries=4,
                                   onchip_entries=8)
        rng = np.random.default_rng(1)
        for _ in range(60):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        assert sink.by_kind[OpKind.POSMAP].ops > 0
        oram.check_invariants()

    def test_posmap_accesses_advance_evictions(self):
        cfg = tiny_config(levels=7)
        base = RingOram(cfg, seed=0)
        rec = RingOram(cfg, seed=0, posmap_mode="recursive", plb_entries=4)
        rec.posmap_model.__init__(cfg.n_real_blocks, plb_entries=4,
                                  onchip_entries=8)
        for i in range(40):
            base.access(i % cfg.n_real_blocks)
            rec.access(i % cfg.n_real_blocks)
        assert rec.evict_counter > base.evict_counter

    def test_unknown_mode_rejected(self, cfg_small):
        with pytest.raises(ValueError):
            RingOram(cfg_small, posmap_mode="bogus")
