"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["space", "--schemes", "nope"])


class TestSpace:
    def test_prints_paper_ratios(self, capsys):
        assert main(["space", "--levels", "24"]) == 0
        out = capsys.readouterr().out
        assert "0.754" in out   # DR
        assert "0.645" in out   # AB
        assert "0.485" in out   # AB utilization

    def test_small_levels(self, capsys):
        assert main(["space", "--levels", "8",
                     "--schemes", "baseline", "ab"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "AB" in out


class TestSchemes:
    def test_describes_geometry(self, capsys):
        assert main(["schemes", "--levels", "12", "--schemes", "ab"]) == 0
        out = capsys.readouterr().out
        assert "AB" in out
        assert "sustain" in out


class TestSimulate:
    def test_runs_and_reports(self, capsys):
        rc = main(["simulate", "--scheme", "ab", "--bench", "gcc",
                   "--levels", "9", "--requests", "200",
                   "--warmup", "50", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Simulation result" in out
        assert "Memory-time breakdown" in out
        assert "readPath" in out

    def test_parsec_suite(self, capsys):
        rc = main(["simulate", "--suite", "parsec", "--bench", "canneal",
                   "--scheme", "dr", "--levels", "9",
                   "--requests", "150", "--warmup", "50"])
        assert rc == 0
        assert "canneal" in capsys.readouterr().out


class TestSweep:
    def test_matrix_shape(self, capsys):
        rc = main(["sweep", "--schemes", "baseline", "ab",
                   "--benchmarks", "gcc", "mcf",
                   "--levels", "9", "--requests", "200", "--warmup", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf" in out
        assert "normalized to Baseline" in out


class TestSecurity:
    def test_rates_near_1_over_l(self, capsys):
        rc = main(["security", "--levels", "8", "--accesses", "1500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Guessing attacker" in out
        assert "0.125" in out  # expected_1_over_L column


class TestDoctor:
    def test_paper_schemes_clean(self, capsys):
        rc = main(["doctor", "--levels", "24", "--schemes", "ab", "dr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AB (L=24):" in out

    def test_reports_findings(self, capsys):
        main(["doctor", "--levels", "24", "--schemes", "baseline"])
        out = capsys.readouterr().out
        assert "stash-headroom" in out or "no findings" in out


class TestFigures:
    def test_all_figures_render(self, capsys):
        rc = main(["figures", "--levels", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 8a" in out and "Table I" in out and "0.645" in out

    def test_single_figure(self, capsys):
        rc = main(["figures", "--which", "fig13", "--levels", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L2-S2" in out
        assert "Fig 8a" not in out


class TestSimulateRobustness:
    def test_integrity_flag_reports_events(self, capsys):
        rc = main(["simulate", "--scheme", "ring", "--levels", "7",
                   "--requests", "80", "--warmup", "0", "--integrity"])
        assert rc == 0
        assert "Robustness events" in capsys.readouterr().out

    def test_checkpoint_every_requires_path(self, capsys):
        rc = main(["simulate", "--scheme", "ring", "--levels", "7",
                   "--requests", "40", "--checkpoint-every", "10"])
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_resume_bit_identical(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.pkl")
        args = ["simulate", "--scheme", "ring", "--levels", "7",
                "--requests", "90", "--warmup", "0", "--integrity"]
        assert main(args + ["--checkpoint", ck,
                            "--checkpoint-every", "30"]) == 0
        full = capsys.readouterr().out
        # The last checkpoint sits at request 60; resuming finishes the
        # final 30 requests and must print the identical result tables.
        assert main(["simulate", "--resume", ck]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == full
        assert "resumed" in resumed.err

    def test_resume_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"not a checkpoint")
        rc = main(["simulate", "--resume", str(bad)])
        assert rc == 2
        assert "not a simulation checkpoint" in capsys.readouterr().err


class TestFaultsCli:
    def test_smoke_campaign_with_detection_gate(self, capsys, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        rc = main(["faults", "run", "--smoke", "--levels", "7",
                   "--requests", "80", "--kinds", "bit_flip", "replay",
                   "--rates", "0.02", "--out", str(out),
                   "--require-detection"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "detection check: all tampering faults detected" in text
        assert out.exists()

    def test_run_sugar_inserted(self, capsys, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        rc = main(["faults", "--smoke", "--levels", "7", "--requests", "60",
                   "--kinds", "bit_flip", "--rates", "0.02",
                   "--out", str(out)])
        assert rc == 0
        assert "fault campaign (smoke)" in capsys.readouterr().out

    def test_bad_rate_rejected(self, capsys, tmp_path):
        rc = main(["faults", "run", "--smoke", "--rates", "3.0",
                   "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_no_integrity_breaks_detection_gate(self, capsys, tmp_path):
        """Replays sail through without the Merkle tree; the CI gate
        must catch that configuration."""
        out = tmp_path / "BENCH_faults.json"
        rc = main(["faults", "run", "--smoke", "--levels", "7",
                   "--requests", "80", "--kinds", "replay",
                   "--rates", "0.02", "--no-integrity", "--out", str(out),
                   "--require-detection"])
        assert rc == 1
        assert "DETECTION GAP" in capsys.readouterr().out


class TestTelemetryCli:
    def _simulate(self, tmp_path, *extra):
        trace_out = str(tmp_path / "trace.json")
        rc = main(["simulate", "--scheme", "ab", "--levels", "9",
                   "--requests", "200", "--warmup", "0",
                   "--trace-out", trace_out, *extra])
        return rc, trace_out

    def test_trace_out_writes_both_files(self, capsys, tmp_path):
        import json
        rc, trace_out = self._simulate(tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "spans" in out and "snapshots" in out
        doc = json.loads(open(trace_out).read())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"readPath", "evictPath"} <= names
        # The JSONL stream defaults next to the trace file.
        jsonl = trace_out[:-len(".json")] + ".jsonl"
        lines = [json.loads(ln) for ln in open(jsonl)]
        assert lines[0]["type"] == "meta" and lines[0]["scheme"] == "ab"
        assert lines[-1]["type"] == "summary"

    def test_view_renders_stream(self, capsys, tmp_path):
        rc, trace_out = self._simulate(tmp_path)
        assert rc == 0
        capsys.readouterr()
        jsonl = trace_out[:-len(".json")] + ".jsonl"
        assert main(["telemetry", "view", jsonl]) == 0
        out = capsys.readouterr().out
        assert "Operation spans" in out
        assert "readPath" in out

    def test_view_missing_file_errors(self, capsys, tmp_path):
        assert main(["telemetry", "view",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_telemetry_rejects_checkpointing(self, capsys, tmp_path):
        rc, _ = self._simulate(
            tmp_path, "--checkpoint", str(tmp_path / "c.pkl"),
            "--checkpoint-every", "50")
        assert rc == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_perf_telemetry_block(self, capsys, tmp_path):
        import json
        out_path = str(tmp_path / "perf.json")
        rc = main(["perf", "run", "--smoke", "--schemes", "ab",
                   "--requests", "120", "--warmup", "30",
                   "--telemetry", "--out", out_path])
        assert rc == 0
        doc = json.loads(open(out_path).read())
        # ab/mcf plus its sharded twin ab/mcf@s4 (the smoke matrix's
        # tracked shard cell survives the --schemes narrowing).
        assert doc["telemetry"]["counters"]["perf.cells"] == 2
        # The config block stays telemetry-free (baseline stability).
        assert "telemetry" not in doc["config"]
