"""Tests for the AbOram facade (repro.core.ab_oram)."""

import pytest

from repro.core.ab_oram import AbOram, build_oram, needs_extensions
from repro.core.remote import RemoteAllocator
from repro.oram.ring import RingOram


class TestNeedsExtensions:
    def test_plain_config(self, cfg_small):
        assert not needs_extensions(cfg_small)

    def test_ab_config(self, cfg_ab_small):
        assert needs_extensions(cfg_ab_small)


class TestBuildOram:
    def test_plain_build_has_no_ext(self, cfg_small):
        oram = build_oram(cfg_small)
        assert isinstance(oram, RingOram)
        assert oram.ext is None

    def test_ab_build_attaches_allocator(self, cfg_ab_small):
        oram = build_oram(cfg_ab_small)
        assert isinstance(oram.ext, RemoteAllocator)

    def test_metadata_width_reflects_extensions(self, cfg_small, cfg_ab_small):
        plain = build_oram(cfg_small)
        ab = build_oram(cfg_ab_small)
        assert ab.metadata_blocks >= plain.metadata_blocks


class TestFacade:
    def test_from_scheme(self):
        oram = AbOram.from_scheme("ab", levels=8)
        assert oram.cfg.name == "AB"
        assert oram.n_blocks == oram.cfg.n_real_blocks
        assert oram.block_bytes == 64

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            AbOram.from_scheme("bogus", levels=8)

    def test_read_write(self, cfg_ab_small):
        oram = AbOram(cfg_ab_small, store_data=True)
        oram.write(1, "payload")
        assert oram.read(1) == "payload"

    def test_warm_start(self, cfg_ab_small):
        oram = AbOram(cfg_ab_small, warm=True)
        oram.check()
        resident = len(oram.oram.store.real_blocks_resident())
        assert resident + oram.oram.stash.occupancy == cfg_ab_small.n_real_blocks

    def test_space_report(self, cfg_ab_small):
        rep = AbOram(cfg_ab_small).space_report()
        assert rep["scheme"] == "tiny-ab"
        assert rep["tree_bytes"] == cfg_ab_small.tree_bytes
        assert 0 < rep["space_utilization"] < 1

    def test_runtime_report_counts(self, cfg_ab_small):
        oram = AbOram(cfg_ab_small, warm=True)
        for i in range(60):
            oram.read(i % oram.n_blocks)
        rep = oram.runtime_report()
        assert rep["online_accesses"] == 60
        assert rep["evictions"] == 60 // cfg_ab_small.evict_rate
        assert "remote" in rep
        assert "memory" in rep
        assert len(rep["reshuffles_by_level"]) == cfg_ab_small.levels

    def test_runtime_report_plain_scheme_has_no_remote(self, cfg_small):
        oram = AbOram(cfg_small)
        oram.read(0)
        assert "remote" not in oram.runtime_report()

    def test_allocator_property(self, cfg_ab_small, cfg_small):
        assert AbOram(cfg_ab_small).allocator is not None
        assert AbOram(cfg_small).allocator is None

    def test_check_delegates(self, cfg_ab_small):
        oram = AbOram(cfg_ab_small, warm=True)
        for i in range(40):
            oram.read(i % oram.n_blocks)
        oram.check()
