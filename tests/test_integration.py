"""Cross-module integration tests: the paper's claims, in miniature.

Each test runs the full stack (traces -> schemes -> controller -> DRAM
model) at reduced scale and asserts the *shape* of the paper's results:
exact space ratios, bounded performance overhead, more reshuffles where
S shrinks, extension ratios ordering, and security preservation.
"""

import numpy as np
import pytest

from repro.analysis.space import normalized_space
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker
from repro.sim import SimConfig, simulate
from repro.sim.runner import run_schemes
from repro.traces.spec import spec_trace

LEVELS = 12
N_REQUESTS = 900
WARMUP = 300


@pytest.fixture(scope="module")
def matrix():
    cfgs = schemes.main_schemes(LEVELS)
    trace = spec_trace("mcf", cfgs[0].n_real_blocks, N_REQUESTS, seed=3)
    return run_schemes(cfgs, trace, SimConfig(seed=3, warmup_requests=WARMUP))


class TestSpaceClaims:
    def test_space_ordering(self, matrix):
        """AB < DR < NS < IR <= Baseline (Fig. 8a)."""
        t = {k: v.tree_bytes for k, v in matrix.items()}
        assert t["AB"] < t["DR"] < t["NS"] < t["IR"] <= t["Baseline"]

    def test_space_reduction_magnitudes(self):
        norm = normalized_space(schemes.main_schemes(24))
        assert norm["AB"] == pytest.approx(0.645, abs=0.005)
        assert norm["DR"] == pytest.approx(0.754, abs=0.005)

    def test_utilization_ordering(self, matrix):
        u = {k: v.space_utilization for k, v in matrix.items()}
        assert u["AB"] > u["DR"] > u["NS"] > u["Baseline"]


class TestPerformanceClaims:
    def test_overheads_are_low(self, matrix):
        """The paper's headline: space savings at <= ~5% slowdown.

        Our memory model sits within ~10% of Baseline either way for
        every scheme (see EXPERIMENTS.md for the per-figure account).
        """
        base = matrix["Baseline"].exec_ns
        for name in ("DR", "NS", "AB"):
            ratio = matrix[name].exec_ns / base
            assert 0.85 < ratio < 1.15, f"{name} ratio {ratio}"

    def test_dr_pays_for_remote_accesses(self, matrix):
        """DR is the slowest of the AB family (remote row misses)."""
        assert matrix["DR"].exec_ns >= matrix["NS"].exec_ns * 0.97

    def test_bandwidth_overhead_small(self, matrix):
        """Fig. 9: AB's extra bandwidth demand ~1%."""
        base = matrix["Baseline"].bytes_transferred
        ab = matrix["AB"].bytes_transferred
        assert abs(ab / base - 1.0) < 0.15


class TestReshuffleClaims:
    def test_ns_reshuffles_more_at_bottom(self, matrix):
        """Fig. 10: NS's reduced-S levels reshuffle more."""
        base = np.array(matrix["Baseline"].reshuffles_by_level, dtype=float)
        ns = np.array(matrix["NS"].reshuffles_by_level, dtype=float)
        bottom = slice(LEVELS - 2, LEVELS)
        assert ns[bottom].sum() > base[bottom].sum()

    def test_dr_reshuffles_close_to_baseline(self, matrix):
        """Fig. 10: S-extension keeps DR's reshuffles near Baseline."""
        base = np.array(matrix["Baseline"].reshuffles_by_level, dtype=float)
        dr = np.array(matrix["DR"].reshuffles_by_level, dtype=float)
        bottom = slice(LEVELS - 6, LEVELS)
        assert dr[bottom].sum() < 1.6 * base[bottom].sum()


class TestExtensionClaims:
    def test_dr_extends_more_than_ab(self):
        """Fig. 14: DR ~100%, AB lower (fewer dead blocks available)."""
        cfgs = {c.name: c for c in schemes.main_schemes(LEVELS)}
        trace = spec_trace("mcf", cfgs["DR"].n_real_blocks, 1200, seed=5)
        dr = simulate(cfgs["DR"], trace, SimConfig(seed=5, warmup_requests=600))
        ab = simulate(cfgs["AB"], trace, SimConfig(seed=5, warmup_requests=600))
        assert dr.extension_ratio > 0.5
        assert dr.extension_ratio >= ab.extension_ratio - 0.05

    def test_dead_blocks_reduced_by_reclaim(self, matrix):
        """DR/AB hold fewer dead blocks than Baseline at any instant."""
        assert matrix["DR"].dead_blocks < matrix["Baseline"].dead_blocks
        assert matrix["AB"].dead_blocks < matrix["Baseline"].dead_blocks


class TestSecurityClaim:
    def test_attacker_blind_for_baseline_and_ab(self):
        """Fig. 7 in miniature: success ~ 1/L for both."""
        rates = {}
        for name in ("baseline", "ab"):
            cfg = schemes.by_name(name, 8)
            atk = GuessingAttacker(cfg.levels, seed=0)
            oram = build_oram(cfg, seed=0, observers=[atk])
            oram.warm_fill()
            rng = np.random.default_rng(2)
            for _ in range(2500):
                oram.access(int(rng.integers(cfg.n_real_blocks)))
            rates[name] = atk.success_rate
        assert rates["baseline"] == pytest.approx(1 / 8, abs=0.02)
        assert rates["ab"] == pytest.approx(rates["baseline"], abs=0.02)


class TestEndToEndData:
    def test_values_survive_across_all_schemes(self):
        for cfg in schemes.main_schemes(8):
            oram = build_oram(cfg, seed=1, store_data=True)
            oram.warm_fill()
            shadow = {}
            rng = np.random.default_rng(4)
            for i in range(250):
                blk = int(rng.integers(cfg.n_real_blocks))
                if rng.random() < 0.4:
                    shadow[blk] = (cfg.name, i)
                    oram.write(blk, (cfg.name, i))
                else:
                    assert oram.read(blk) == shadow.get(blk), cfg.name
            oram.check_invariants()
