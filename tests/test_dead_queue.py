"""Unit tests for DeadQ FIFOs (repro.core.dead_queue)."""

import pytest

from repro.core.dead_queue import DeadQueue, DeadQueueSet
from repro.oram.bucket import BucketStore, SlotStatus


@pytest.fixture
def store(cfg_ab_small):
    return BucketStore(cfg_ab_small)


def kill_slot(store, bucket, slot, queued=True):
    """Make (bucket, slot) a DEAD (optionally QUEUED) slot."""
    store.consume(bucket, slot)
    if queued:
        store.set_status(bucket, slot, SlotStatus.QUEUED)
    return store.slot_generation(bucket, slot)


class TestDeadQueue:
    def test_fifo_order(self, store):
        q = DeadQueue(10)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        assert q.pop_valid(store) == (31, 0)
        assert q.pop_valid(store) == (32, 0)

    def test_capacity_enforced(self, store):
        q = DeadQueue(2)
        assert q.push(31, 0, 0)
        assert q.push(31, 1, 0)
        assert not q.push(31, 2, 0)
        assert q.dropped_full == 1
        assert q.is_full

    def test_pop_empty_returns_none(self, store):
        q = DeadQueue(4)
        assert q.pop_valid(store) is None

    def test_stale_generation_discarded(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        store.generation[31, 0] += 1  # host reshuffled the slot away
        assert q.pop_valid(store) is None
        assert q.stale_discarded == 1

    def test_non_queued_status_discarded(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        store.set_status(31, 0, SlotStatus.REFRESHED)
        assert q.pop_valid(store) is None

    def test_pop_skips_stale_then_returns_valid(self, store):
        q = DeadQueue(4)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        store.generation[31, 0] += 1
        assert q.pop_valid(store) == (32, 0)

    def test_requeue_front(self, store):
        q = DeadQueue(4)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        hb, hs = q.pop_valid(store)
        q.requeue_front(hb, hs, store.slot_generation(hb, hs))
        assert q.pop_valid(store) == (31, 0)

    def test_counters(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        q.pop_valid(store)
        assert q.pushed == 1
        assert q.popped == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeadQueue(0)


class TestDeadQueueSet:
    def test_one_queue_per_level(self):
        qs = DeadQueueSet([4, 5], capacity=8)
        assert 4 in qs
        assert 5 in qs
        assert 3 not in qs
        assert qs.get(3) is None

    def test_tracked_levels_sorted(self):
        qs = DeadQueueSet([5, 4], capacity=8)
        assert qs.tracked_levels() == (4, 5)

    def test_total_entries(self, store):
        qs = DeadQueueSet([4, 5], capacity=8)
        qs.get(4).push(15, 0, 0)
        qs.get(5).push(31, 0, 0)
        qs.get(5).push(32, 0, 0)
        assert qs.total_entries() == 3

    def test_stats_shape(self):
        qs = DeadQueueSet([4], capacity=8)
        s = qs.stats()
        assert set(s[4]) == {"size", "pushed", "popped", "dropped_full",
                             "stale_discarded"}
