"""Unit tests for DeadQ FIFOs (repro.core.dead_queue)."""

from collections import deque

import numpy as np
import pytest

from repro.core.dead_queue import DeadQueue, DeadQueueSet
from repro.oram.bucket import BucketStore, SlotStatus


@pytest.fixture
def store(cfg_ab_small):
    return BucketStore(cfg_ab_small)


def kill_slot(store, bucket, slot, queued=True):
    """Make (bucket, slot) a DEAD (optionally QUEUED) slot."""
    store.consume(bucket, slot)
    if queued:
        store.set_status(bucket, slot, SlotStatus.QUEUED)
    return store.slot_generation(bucket, slot)


class TestDeadQueue:
    def test_fifo_order(self, store):
        q = DeadQueue(10)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        assert q.pop_valid(store) == (31, 0)
        assert q.pop_valid(store) == (32, 0)

    def test_capacity_enforced(self, store):
        q = DeadQueue(2)
        assert q.push(31, 0, 0)
        assert q.push(31, 1, 0)
        assert not q.push(31, 2, 0)
        assert q.dropped_full == 1
        assert q.is_full

    def test_pop_empty_returns_none(self, store):
        q = DeadQueue(4)
        assert q.pop_valid(store) is None

    def test_stale_generation_discarded(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        store.generation[31, 0] += 1  # host reshuffled the slot away
        assert q.pop_valid(store) is None
        assert q.stale_discarded == 1

    def test_non_queued_status_discarded(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        store.set_status(31, 0, SlotStatus.REFRESHED)
        assert q.pop_valid(store) is None

    def test_pop_skips_stale_then_returns_valid(self, store):
        q = DeadQueue(4)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        store.generation[31, 0] += 1
        assert q.pop_valid(store) == (32, 0)

    def test_requeue_front(self, store):
        q = DeadQueue(4)
        g1 = kill_slot(store, 31, 0)
        g2 = kill_slot(store, 32, 0)
        q.push(31, 0, g1)
        q.push(32, 0, g2)
        hb, hs = q.pop_valid(store)
        q.requeue_front(hb, hs, store.slot_generation(hb, hs))
        assert q.pop_valid(store) == (31, 0)

    def test_counters(self, store):
        q = DeadQueue(4)
        gen = kill_slot(store, 31, 0)
        q.push(31, 0, gen)
        q.pop_valid(store)
        assert q.pushed == 1
        assert q.popped == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeadQueue(0)


class TestDeadQueueFifoProperties:
    """Model-based FIFO checks for the struct-of-arrays ring buffer.

    The SoA rewrite replaced a per-entry object deque with three
    preallocated numpy columns plus head/size indices; these tests
    replay randomized push/push_many/pop/requeue interleavings against
    a ``collections.deque`` reference so wrap-around and batch-split
    bookkeeping can never silently reorder or drop entries. The store
    is a stand-in whose (generation, QUEUED) checks always pass, so
    every pop must return exactly the reference's head.
    """

    class _AlwaysValidStore:
        """Minimal BucketStore facade: every entry validates."""

        class _Zero:
            def __getitem__(self, key):
                return 0

        class _Queued:
            def __getitem__(self, key):
                return int(SlotStatus.QUEUED)

        generation = _Zero()
        status = _Queued()

    @pytest.mark.parametrize("capacity", [1, 2, 7, 64])
    def test_random_interleaving_matches_deque_model(self, capacity):
        rng = np.random.default_rng(capacity)
        q = DeadQueue(capacity)
        model = deque()
        store = self._AlwaysValidStore()
        next_id = 0
        for _ in range(2000):
            op = rng.integers(4)
            if op == 0:  # push
                ok = q.push(7, next_id, 0)
                assert ok == (len(model) < capacity)
                if ok:
                    model.append(next_id)
                next_id += 1
            elif op == 1:  # push_many of a random batch, limited to space
                n = int(rng.integers(0, capacity + 1))
                n = min(n, q.space)
                slots = list(range(next_id, next_id + n))
                q.push_many(7, slots, [0] * n)
                model.extend(slots)
                next_id += n
            elif op == 2:  # pop
                got = q.pop_valid(store)
                if model:
                    assert got == (7, model.popleft())
                else:
                    assert got is None
            else:  # pop then requeue_front (the undo path)
                got = q.pop_valid(store)
                if model:
                    assert got == (7, model.popleft())
                    q.requeue_front(got[0], got[1], 0)
                    model.appendleft(got[1])
                else:
                    assert got is None
            assert len(q) == len(model)
            assert [s for _, s, _ in q.entries()] == list(model)

    def test_push_many_overflow_rejected(self):
        q = DeadQueue(4)
        q.push_many(7, [0, 1, 2], [0, 0, 0])
        with pytest.raises(ValueError):
            q.push_many(7, [3, 4], [0, 0])
        # A rejected batch must leave the queue untouched.
        assert [s for _, s, _ in q.entries()] == [0, 1, 2]

    def test_push_many_equivalent_to_pushes_across_wrap(self):
        """A batch split by the wrap point equals one push per slot."""
        store = self._AlwaysValidStore()
        for drain in range(6):
            batched, scalar = DeadQueue(6), DeadQueue(6)
            # Advance both heads so a later batch straddles the end.
            for i in range(drain):
                batched.push(7, i, 0)
                scalar.push(7, i, 0)
                batched.pop_valid(store)
                scalar.pop_valid(store)
            slots = list(range(100, 100 + 5))
            batched.push_many(7, slots, [0] * 5)
            for s in slots:
                scalar.push(7, s, 0)
            assert batched.entries() == scalar.entries()


class TestDeadQueueSet:
    def test_one_queue_per_level(self):
        qs = DeadQueueSet([4, 5], capacity=8)
        assert 4 in qs
        assert 5 in qs
        assert 3 not in qs
        assert qs.get(3) is None

    def test_tracked_levels_sorted(self):
        qs = DeadQueueSet([5, 4], capacity=8)
        assert qs.tracked_levels() == (4, 5)

    def test_total_entries(self, store):
        qs = DeadQueueSet([4, 5], capacity=8)
        qs.get(4).push(15, 0, 0)
        qs.get(5).push(31, 0, 0)
        qs.get(5).push(32, 0, 0)
        assert qs.total_entries() == 3

    def test_stats_shape(self):
        qs = DeadQueueSet([4], capacity=8)
        s = qs.stats()
        assert set(s[4]) == {"size", "pushed", "popped", "dropped_full",
                             "stale_discarded"}
