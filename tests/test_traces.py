"""Tests for the workload substrate (repro.traces)."""

import numpy as np
import pytest

from repro.traces.generator import SyntheticTraceGenerator
from repro.traces.parsec import PARSEC, parsec_benchmarks, parsec_trace
from repro.traces.spec import SPEC_CPU2017, spec_benchmarks, spec_trace
from repro.traces.trace import Trace, TraceRequest


class TestTrace:
    def make(self, reqs=None, r=1.0, w=1.0):
        reqs = reqs or [TraceRequest(0, False), TraceRequest(1, True)]
        return Trace("t", reqs, read_mpki=r, write_mpki=w)

    def test_len_and_iter(self):
        t = self.make()
        assert len(t) == 2
        assert [r.block for r in t] == [0, 1]

    def test_mpki_aggregates(self):
        t = self.make(r=2.0, w=6.0)
        assert t.total_mpki == 8.0
        assert t.write_fraction == pytest.approx(0.75)

    def test_cpu_gap_inverse_in_mpki(self):
        slow = self.make(r=0.1, w=0.0)
        fast = self.make(r=10.0, w=0.0)
        assert slow.cpu_gap_ns > fast.cpu_gap_ns * 50

    def test_instructions_per_access(self):
        t = self.make(r=1.0, w=1.0)
        assert t.instructions_per_access == pytest.approx(500.0)

    def test_rejects_zero_mpki(self):
        with pytest.raises(ValueError):
            self.make(r=0.0, w=0.0)

    def test_rejects_negative_mpki(self):
        with pytest.raises(ValueError):
            self.make(r=-1.0, w=2.0)

    def test_truncated(self):
        t = self.make()
        short = t.truncated(1)
        assert len(short) == 1
        assert short.name == t.name


class TestGenerator:
    def test_length(self):
        gen = SyntheticTraceGenerator(1000, seed=1)
        t = gen.generate("x", 500, 1.0, 1.0)
        assert len(t) == 500

    def test_blocks_in_range(self):
        gen = SyntheticTraceGenerator(100, seed=1)
        t = gen.generate("x", 1000, 1.0, 1.0)
        assert all(0 <= r.block < 100 for r in t)

    def test_working_set_respected(self):
        gen = SyntheticTraceGenerator(1000, working_set_fraction=0.1, seed=1)
        t = gen.generate("x", 3000, 1.0, 1.0)
        assert len({r.block for r in t}) <= 100

    def test_write_fraction_tracks_mpki_split(self):
        gen = SyntheticTraceGenerator(1000, seed=1)
        t = gen.generate("x", 4000, 1.0, 3.0)
        frac = sum(r.write for r in t) / len(t)
        assert frac == pytest.approx(0.75, abs=0.05)

    def test_deterministic_per_seed(self):
        gen = SyntheticTraceGenerator(1000, seed=7)
        a = gen.generate("x", 200, 1.0, 1.0)
        b = gen.generate("x", 200, 1.0, 1.0)
        assert [(r.block, r.write) for r in a] == [(r.block, r.write) for r in b]

    def test_different_seeds_differ(self):
        gen = SyntheticTraceGenerator(1000, seed=7)
        a = gen.generate("x", 200, 1.0, 1.0, seed=1)
        b = gen.generate("x", 200, 1.0, 1.0, seed=2)
        assert [r.block for r in a] != [r.block for r in b]

    def test_zipf_skews_popularity(self):
        gen = SyntheticTraceGenerator(
            1000, zipf_alpha=1.2, stride_prob=0.0, seed=3
        )
        t = gen.generate("x", 5000, 1.0, 1.0)
        counts = np.bincount([r.block for r in t], minlength=1000)
        top = np.sort(counts)[::-1]
        # The hottest 10 blocks draw far more than 10/500 of traffic.
        assert top[:10].sum() > 0.15 * len(t)

    def test_stride_runs_produce_sequential_pairs(self):
        gen = SyntheticTraceGenerator(
            10000, stride_prob=0.9, zipf_alpha=0.0, seed=3
        )
        t = gen.generate("x", 2000, 1.0, 1.0)
        # With heavy striding, consecutive rank-neighbours are common;
        # blocks are permuted so check reuse-distance instead: many
        # repeats of +1 steps exist in rank space is hard to see, but
        # the stream must still stay within the working set.
        assert len(t) == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(10, working_set_fraction=0.0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(10, stride_prob=1.0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(10, zipf_alpha=-1)
        gen = SyntheticTraceGenerator(10)
        with pytest.raises(ValueError):
            gen.generate("x", 0, 1.0, 1.0)


class TestSpec:
    def test_table_iv_complete(self):
        """All 17 benchmarks of the paper's Table IV."""
        assert len(SPEC_CPU2017) == 17
        assert "mcf" in SPEC_CPU2017
        assert SPEC_CPU2017["mcf"] == (28.2, 0.2)
        assert SPEC_CPU2017["xz"][1] == 15.5

    def test_spec_trace_builds(self):
        t = spec_trace("gcc", n_oram_blocks=500, n_requests=100)
        assert t.suite == "SPEC CPU2017"
        assert t.read_mpki == 0.1
        assert len(t) == 100

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            spec_trace("nope", 100, 10)

    def test_benchmarks_listing(self):
        assert spec_benchmarks()[0] == "gcc"
        assert len(spec_benchmarks()) == 17

    def test_per_benchmark_seeds_differ(self):
        a = spec_trace("gcc", 500, 50, seed=0)
        b = spec_trace("mcf", 500, 50, seed=0)
        assert [r.block for r in a] != [r.block for r in b]

    def test_deterministic(self):
        a = spec_trace("gcc", 500, 50, seed=3)
        b = spec_trace("gcc", 500, 50, seed=3)
        assert [(r.block, r.write) for r in a] == [(r.block, r.write) for r in b]


class TestParsec:
    def test_suite_nonempty(self):
        assert len(PARSEC) >= 8
        assert "canneal" in PARSEC

    def test_parsec_trace_builds(self):
        t = parsec_trace("canneal", n_oram_blocks=500, n_requests=60)
        assert t.suite == "PARSEC"
        assert len(t) == 60

    def test_unknown(self):
        with pytest.raises(KeyError):
            parsec_trace("nope", 100, 10)

    def test_listing_matches_table(self):
        assert set(parsec_benchmarks()) == set(PARSEC)
