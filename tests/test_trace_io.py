"""Tests for USIMM-format trace I/O (repro.traces.io)."""

import pytest

from repro.traces.io import load_trace, save_trace
from repro.traces.spec import spec_trace
from repro.traces.trace import Trace, TraceRequest


class TestSave:
    def test_format(self, tmp_path):
        t = Trace("t", [TraceRequest(3, False), TraceRequest(7, True)],
                  read_mpki=1.0, write_mpki=1.0)
        path = tmp_path / "t.trc"
        n = save_trace(t, path)
        assert n == 2
        lines = path.read_text().splitlines()
        assert lines[0] == "500 R 0xc0"
        assert lines[1] == "500 W 0x1c0"

    def test_roundtrip_preserves_requests(self, tmp_path):
        t = spec_trace("mcf", 4096, 300, seed=1)
        path = tmp_path / "mcf.trc"
        save_trace(t, path)
        back = load_trace(path, "mcf", 4096)
        assert [(r.block, r.write) for r in back] == [
            (r.block, r.write) for r in t
        ]

    def test_roundtrip_recovers_mpki(self, tmp_path):
        t = spec_trace("x264", 4096, 400, seed=1)
        path = tmp_path / "x.trc"
        save_trace(t, path)
        back = load_trace(path, "x264", 4096)
        assert back.total_mpki == pytest.approx(t.total_mpki, rel=0.05)
        assert back.write_fraction == pytest.approx(t.write_fraction,
                                                    abs=0.02)


class TestLoad:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.trc"
        path.write_text("# header\n\n100 R 0x40\n")
        t = load_trace(path, "c", 100)
        assert len(t) == 1
        assert t.requests[0].block == 1

    def test_addresses_folded_into_range(self, tmp_path):
        path = tmp_path / "f.trc"
        path.write_text("10 R 0xFFFFFFC0\n")
        t = load_trace(path, "f", n_oram_blocks=100)
        assert 0 <= t.requests[0].block < 100

    def test_all_read_trace_valid(self, tmp_path):
        path = tmp_path / "r.trc"
        path.write_text("10 R 0x0\n10 R 0x40\n")
        t = load_trace(path, "r", 100)
        assert t.write_mpki > 0  # epsilon keeps Trace invariants
        assert t.write_fraction < 1e-6

    def test_bad_op_rejected(self, tmp_path):
        path = tmp_path / "b.trc"
        path.write_text("10 X 0x0\n")
        with pytest.raises(ValueError, match="bad op"):
            load_trace(path, "b", 100)

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "s.trc"
        path.write_text("10 R\n")
        with pytest.raises(ValueError, match="expected"):
            load_trace(path, "s", 100)

    def test_negative_gap_rejected(self, tmp_path):
        path = tmp_path / "n.trc"
        path.write_text("-1 R 0x0\n")
        with pytest.raises(ValueError, match="negative"):
            load_trace(path, "n", 100)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "g.trc"
        path.write_text("abc R 0x0\n")
        with pytest.raises(ValueError):
            load_trace(path, "g", 100)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "e.trc"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no requests"):
            load_trace(path, "e", 100)

    def test_loaded_trace_drives_simulator(self, tmp_path):
        from repro.core import schemes
        from repro.sim import SimConfig, simulate
        cfg = schemes.ab_scheme(8)
        t = spec_trace("gcc", cfg.n_real_blocks, 150, seed=2)
        path = tmp_path / "gcc.trc"
        save_trace(t, path)
        back = load_trace(path, "gcc", cfg.n_real_blocks)
        result = simulate(cfg, back, SimConfig(seed=2))
        assert result.exec_ns > 0
        assert result.requests == 150
