"""Tests for the crypto boundary (repro.crypto).

The ChaCha20 implementation is validated against the official RFC 8439
test vectors; the authenticator, engine, and Merkle tree are tested for
round-trips and -- more importantly -- for *detection*: every modelled
attack (bit flips, splicing, version rollback, consistent replay) must
raise.
"""

import hashlib

import pytest

from repro.crypto.auth import AuthenticationError, BlockAuthenticator
from repro.crypto.chacha import ChaCha20, chacha20_xor
from repro.crypto.engine import SecureBlockEngine
from repro.crypto.integrity import BucketMerkleTree, IntegrityError


class TestChaCha20Rfc8439:
    """Official test vectors from RFC 8439."""

    def test_block_function_vector(self):
        """RFC 8439 section 2.3.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = ChaCha20(key, nonce).block(1)
        expect = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expect

    def test_encryption_vector(self):
        """RFC 8439 section 2.4.2: the sunscreen plaintext."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = ChaCha20(key, nonce).xor(plaintext, counter=1)
        expect = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert ciphertext == expect

    def test_keystream_block_zero_vector(self):
        """RFC 8439 section 2.3.2 uses counter=1; appendix A.1 test
        vector #1 is the all-zero state at counter 0."""
        block = ChaCha20(bytes(32), bytes(12)).block(0)
        expect = bytes.fromhex(
            "76b8e0ada0f13d90405d6ae55386bd28"
            "bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a37"
            "6a43b8f41518a11cc387b669b2ee6586"
        )
        assert block == expect


class TestChaCha20Api:
    def test_xor_roundtrip(self):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        msg = b"hello oram world" * 5
        assert c.xor(c.xor(msg)) == msg

    def test_one_shot_helper(self):
        key, nonce = b"k" * 32, b"n" * 12
        ct = chacha20_xor(key, nonce, b"data")
        assert chacha20_xor(key, nonce, ct) == b"data"

    def test_different_counters_differ(self):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        assert c.block(0) != c.block(1)

    def test_different_nonces_differ(self):
        a = ChaCha20(b"k" * 32, b"a" * 12).block(0)
        b = ChaCha20(b"k" * 32, b"b" * 12).block(0)
        assert a != b

    def test_keystream_prefix_property(self):
        c = ChaCha20(b"k" * 32, b"n" * 12)
        assert c.keystream(100)[:64] == c.block(0)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"short", b"n" * 12)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"k" * 32, b"short")

    def test_bad_counter(self):
        with pytest.raises(ValueError):
            ChaCha20(b"k" * 32, b"n" * 12).block(-1)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"k" * 32, b"n" * 12).keystream(-1)


class TestBlockAuthenticator:
    def test_roundtrip(self):
        auth = BlockAuthenticator(b"x" * 32)
        tag = auth.tag(0x1000, 3, b"c" * 64)
        auth.verify(0x1000, 3, b"c" * 64, tag)

    def test_tampered_ciphertext_rejected(self):
        auth = BlockAuthenticator(b"x" * 32)
        tag = auth.tag(0x1000, 3, b"c" * 64)
        with pytest.raises(AuthenticationError):
            auth.verify(0x1000, 3, b"d" + b"c" * 63, tag)

    def test_spliced_address_rejected(self):
        auth = BlockAuthenticator(b"x" * 32)
        tag = auth.tag(0x1000, 3, b"c" * 64)
        with pytest.raises(AuthenticationError):
            auth.verify(0x2000, 3, b"c" * 64, tag)

    def test_rolled_back_version_rejected(self):
        auth = BlockAuthenticator(b"x" * 32)
        tag = auth.tag(0x1000, 3, b"c" * 64)
        with pytest.raises(AuthenticationError):
            auth.verify(0x1000, 2, b"c" * 64, tag)

    def test_tag_is_truncated(self):
        auth = BlockAuthenticator(b"x" * 32)
        assert len(auth.tag(0, 0, b"")) == auth.TAG_BYTES

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            BlockAuthenticator(b"tiny")

    def test_negative_inputs_rejected(self):
        auth = BlockAuthenticator(b"x" * 32)
        with pytest.raises(ValueError):
            auth.tag(-1, 0, b"")


class TestSecureBlockEngine:
    def test_seal_open_roundtrip(self):
        eng = SecureBlockEngine(b"master key bytes")
        pt = bytes(range(64))
        ct, tag = eng.seal(0xABC0, 7, pt)
        assert eng.open(0xABC0, 7, ct, tag) == pt

    def test_ciphertext_differs_from_plaintext(self):
        eng = SecureBlockEngine(b"master key bytes")
        ct, _ = eng.seal(0, 1, bytes(64))
        assert ct != bytes(64)

    def test_same_plaintext_two_versions_unrelated(self):
        eng = SecureBlockEngine(b"master key bytes")
        ct1, _ = eng.seal(0, 1, bytes(64))
        ct2, _ = eng.seal(0, 2, bytes(64))
        assert ct1 != ct2

    def test_same_plaintext_two_addresses_unrelated(self):
        eng = SecureBlockEngine(b"master key bytes")
        ct1, _ = eng.seal(64, 1, bytes(64))
        ct2, _ = eng.seal(128, 1, bytes(64))
        assert ct1 != ct2

    def test_wrong_size_rejected(self):
        eng = SecureBlockEngine(b"master key bytes")
        with pytest.raises(ValueError):
            eng.seal(0, 0, b"short")
        with pytest.raises(ValueError):
            eng.open(0, 0, b"short", b"t" * 8)

    def test_tamper_detected(self):
        eng = SecureBlockEngine(b"master key bytes")
        ct, tag = eng.seal(0, 1, bytes(64))
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(AuthenticationError):
            eng.open(0, 1, bad, tag)

    def test_short_master_key_rejected(self):
        with pytest.raises(ValueError):
            SecureBlockEngine(b"short")


class TestBucketMerkleTree:
    def make(self, levels=4):
        return BucketMerkleTree(levels)

    def digest(self, label: bytes) -> bytes:
        return hashlib.sha256(label).digest()

    def test_fresh_tree_verifies(self):
        t = self.make()
        for leaf in range(8):
            t.verify_path(leaf)

    def test_update_then_verify(self):
        t = self.make()
        t.update_bucket(9, self.digest(b"bucket 9"))
        for leaf in range(8):
            t.verify_path(leaf)
        assert t.updates == 1

    def test_root_changes_on_update(self):
        t = self.make()
        before = t.root
        t.update_bucket(0, self.digest(b"new"))
        assert t.root != before

    def test_tampered_content_detected(self):
        t = self.make()
        t.update_bucket(9, self.digest(b"legit"))
        t.tamper_content(9, self.digest(b"evil"))
        with pytest.raises(IntegrityError):
            t.verify_bucket(9)

    def test_tampered_digest_detected(self):
        t = self.make()
        t.tamper_digest(4, self.digest(b"evil"))
        # Bucket 4's parent chain no longer matches.
        with pytest.raises(IntegrityError):
            t.verify_bucket(4)

    def test_consistent_replay_caught_at_root(self):
        """The strongest off-chip attack: rewrite a whole consistent
        hash chain. The on-chip root still disagrees."""
        t = self.make()
        t.update_bucket(9, self.digest(b"v1"))
        old_content = t.stored_content(9)
        t.update_bucket(9, self.digest(b"v2"))
        # Attacker restores the old content and re-hashes consistently.
        t.tamper_content(9, old_content)
        t.tamper_rehash(9)
        with pytest.raises(IntegrityError):
            t.verify_bucket(9)

    def test_update_validates_args(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.update_bucket(100, bytes(32))
        with pytest.raises(ValueError):
            t.update_bucket(0, b"short")

    def test_two_level_tree(self):
        t = BucketMerkleTree(2)
        t.update_bucket(1, self.digest(b"x"))
        t.verify_path(0)
        t.verify_path(1)
