"""Unit tests for the bucket store (repro.oram.bucket)."""

import pytest

from repro.oram.bucket import CONSUMED, DUMMY, UNALLOCATED, BucketStore, SlotStatus
from repro.oram.config import BucketGeometry, OramConfig, override_levels, uniform_geometry


@pytest.fixture
def store(cfg_small):
    return BucketStore(cfg_small)


@pytest.fixture
def nonuniform_store():
    geom = override_levels(
        uniform_geometry(4, 3, 2, overlap=2), {3: BucketGeometry(3, 0, overlap=2)}
    )
    cfg = OramConfig(levels=4, geometry=geom, name="nu")
    return BucketStore(cfg)


class TestGeometry:
    def test_levels_assigned(self, store):
        assert store.level(0) == 0
        assert store.level(1) == 1
        assert store.level(2) == 1
        assert store.level(store.cfg.n_buckets - 1) == store.cfg.levels - 1

    def test_z_phys_uniform(self, store):
        assert store.z_phys(0) == 5

    def test_z_phys_nonuniform(self, nonuniform_store):
        assert nonuniform_store.z_phys(0) == 5
        assert nonuniform_store.z_phys(7) == 3  # leaf level Z'=3, S=0

    def test_padding_columns_unallocated(self, nonuniform_store):
        leaf_bucket = 7
        assert all(
            nonuniform_store.slots[leaf_bucket, 3:] == UNALLOCATED
        )

    def test_initial_contents_all_dummies(self, store):
        for b in (0, 3, 17):
            assert (store.row(b) == DUMMY).all()

    def test_initial_sustain_unextended(self, store):
        # tiny config: S=2, Y=2 -> sustain 4.
        assert (store.sustain == 4).all()


class TestConsume:
    def test_consume_returns_content(self, store):
        assert store.consume(0, 0) == DUMMY
        assert store.slots[0, 0] == CONSUMED

    def test_consume_increments_count(self, store):
        store.consume(0, 0)
        store.consume(0, 1)
        assert store.count[0] == 2

    def test_consume_sets_dead_status(self, store):
        store.consume(0, 0)
        assert store.get_status(0, 0) == SlotStatus.DEAD

    def test_double_consume_raises(self, store):
        store.consume(0, 0)
        with pytest.raises(RuntimeError):
            store.consume(0, 0)

    def test_consume_out_of_range_slot(self, store):
        with pytest.raises(ValueError):
            store.consume(0, 5)

    def test_consume_real_block(self, store):
        store.slots[2, 1] = 42
        assert store.consume(2, 1) == 42


class TestQueries:
    def test_find_block(self, store):
        store.slots[3, 2] = 9
        assert store.find_block(3, 9) == 2
        assert store.find_block(3, 8) == -1

    def test_valid_dummy_slots_excludes_consumed(self, store):
        store.consume(0, 0)
        assert 0 not in store.valid_dummy_slots(0)

    def test_valid_dummy_slots_excludes_allocated(self, store):
        store.set_status(0, 1, SlotStatus.QUEUED)
        store.set_status(0, 2, SlotStatus.IN_USE)
        dummies = store.valid_dummy_slots(0)
        assert 1 not in dummies
        assert 2 not in dummies

    def test_valid_real_slots(self, store):
        store.slots[4, 0] = 10
        store.slots[4, 3] = 11
        assert list(store.valid_real_slots(4)) == [0, 3]

    def test_real_count(self, store):
        store.slots[4, 0] = 10
        store.slots[4, 3] = 11
        assert store.real_count(4) == 2

    def test_dead_slots(self, store):
        store.consume(1, 0)
        store.consume(1, 2)
        assert list(store.dead_slots(1)) == [0, 2]

    def test_usable_slots_excludes_in_use_only(self, store):
        store.set_status(5, 0, SlotStatus.IN_USE)
        store.set_status(5, 1, SlotStatus.QUEUED)
        usable = list(store.usable_slots(5))
        assert 0 not in usable
        assert 1 in usable


class TestRefresh:
    def test_refresh_resets_count_and_contents(self, store):
        store.consume(0, 0)
        store.consume(0, 1)
        written = store.refresh(0, [7, 8])
        assert store.count[0] == 0
        assert set(written) == set(range(5))
        row = store.row(0)
        assert sorted(x for x in row if x >= 0) == [7, 8]
        assert (row != CONSUMED).all()

    def test_refresh_restores_status(self, store):
        store.consume(0, 0)
        store.refresh(0, [])
        assert store.get_status(0, 0) == SlotStatus.REFRESHED

    def test_refresh_bumps_generation_of_queued(self, store):
        store.consume(0, 0)
        gen = store.slot_generation(0, 0)
        store.set_status(0, 0, SlotStatus.QUEUED)
        store.refresh(0, [])
        assert store.slot_generation(0, 0) == gen + 1

    def test_refresh_skips_in_use(self, store):
        store.slots[0, 0] = CONSUMED
        store.set_status(0, 0, SlotStatus.IN_USE)
        written = store.refresh(0, [])
        assert 0 not in written
        assert store.slots[0, 0] == CONSUMED
        assert store.get_status(0, 0) == SlotStatus.IN_USE

    def test_refresh_sustain_with_extension(self, store):
        store.refresh(0, [], granted_extension=2)
        assert store.sustain[0] == 4 + 2

    def test_refresh_sustain_capped_by_rented_slots(self, store):
        # Rent out 2 of 5 slots: usable = 3 < sustain_unextended 4.
        store.set_status(0, 0, SlotStatus.IN_USE)
        store.set_status(0, 1, SlotStatus.IN_USE)
        store.refresh(0, [])
        assert store.sustain[0] == 3

    def test_refresh_too_many_reals_raises(self, store):
        with pytest.raises(RuntimeError):
            store.refresh(0, list(range(6)))

    def test_refresh_counts_reshuffles_per_level(self, store):
        store.refresh(3, [])
        store.refresh(4, [])
        store.refresh(0, [])
        assert store.reshuffles_by_level[2] == 2
        assert store.reshuffles_by_level[0] == 1

    def test_needs_reshuffle(self, store):
        assert not store.needs_reshuffle(0)
        for s in range(4):
            store.consume(0, s)
        assert store.needs_reshuffle(0)


class TestGlobalScans:
    def test_total_dead_slots(self, store):
        store.consume(0, 0)
        store.consume(3, 1)
        assert store.total_dead_slots() == 2

    def test_queued_counts_as_dead(self, store):
        store.consume(0, 0)
        store.set_status(0, 0, SlotStatus.QUEUED)
        assert store.total_dead_slots() == 1

    def test_in_use_not_dead(self, store):
        store.consume(0, 0)
        store.set_status(0, 0, SlotStatus.IN_USE)
        assert store.total_dead_slots() == 0

    def test_dead_slots_by_level(self, store):
        store.consume(0, 0)       # level 0
        store.consume(1, 0)       # level 1
        store.consume(2, 0)       # level 1
        per = store.dead_slots_by_level()
        assert per[0] == 1
        assert per[1] == 2
        assert per.sum() == 3

    def test_real_blocks_resident(self, store):
        store.slots[0, 0] = 5
        store.slots[8, 2] = 6
        assert sorted(store.real_blocks_resident()) == [5, 6]

    def test_write_dummy(self, store):
        store.slots[0, 0] = CONSUMED
        store.write_dummy(0, 0)
        assert store.slots[0, 0] == DUMMY
