"""Tests for the simulation harness (repro.sim)."""

import pytest

from repro.core import schemes
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.oram.stats import OpKind
from repro.sim.engine import DramSink, SimConfig, simulate
from repro.sim.results import breakdown_fractions, geomean, normalize
from repro.sim.runner import make_trace, run_schemes, run_suite, suite_benchmarks
from repro.traces.spec import spec_trace


@pytest.fixture(scope="module")
def small_schemes():
    return schemes.main_schemes(8)


@pytest.fixture(scope="module")
def small_trace(small_schemes):
    return spec_trace("mcf", small_schemes[0].n_real_blocks, 300, seed=2)


@pytest.fixture(scope="module")
def one_result(small_schemes, small_trace):
    return simulate(small_schemes[0], small_trace, SimConfig(seed=1))


class TestDramSink:
    @pytest.fixture
    def sink(self, small_schemes):
        cfg = small_schemes[0]
        return DramSink(TreeLayout(cfg), DramModel())

    def test_clock_advances_with_ops(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.end_op()
        assert sink.now > 0
        assert sink.time_by_kind[OpKind.READ_PATH] > 0
        assert sink.ops_by_kind[OpKind.READ_PATH] == 1

    def test_onchip_costs_nothing(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False, onchip=True)
        sink.metadata_access(0, 0, write=False, onchip=True)
        sink.end_op()
        assert sink.now == 0.0

    def test_phase_ordering_serializes_reads_before_writes(self, sink):
        sink.begin_op(OpKind.EVICT_PATH)
        sink.data_access(0, 0, 0, write=False)
        t_read_done = sink._op_end
        sink.data_access(0, 1, 0, write=True)
        sink.end_op()
        # The write phase started only after the read completed.
        assert sink.now > t_read_done

    def test_remote_accesses_counted(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(5, 0, 2, write=False, remote=True)
        sink.end_op()
        assert sink.remote_accesses == 1

    def test_advance(self, sink):
        sink.advance(100.0)
        assert sink.now == 100.0
        with pytest.raises(ValueError):
            sink.advance(-1.0)

    def test_nested_op_rejected(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        with pytest.raises(RuntimeError):
            sink.begin_op(OpKind.READ_PATH)

    def test_reset_measurement_keeps_clock(self, sink):
        sink.begin_op(OpKind.READ_PATH)
        sink.data_access(0, 0, 0, write=False)
        sink.end_op()
        now = sink.now
        start = sink.reset_measurement()
        assert start == now
        assert sink.time_by_kind[OpKind.READ_PATH] == 0.0
        assert sink.dram.stats.reads == 0


class TestSimulate:
    def test_result_is_populated(self, one_result, small_trace):
        r = one_result
        assert r.scheme == "Baseline"
        assert r.trace == "mcf"
        assert r.requests == len(small_trace)
        assert r.exec_ns > 0
        assert r.dram_reads > 0 and r.dram_writes > 0
        assert 0 < r.row_hit_rate < 1
        assert r.online_accesses == len(small_trace)
        assert r.bandwidth_gbps > 0
        assert sum(r.reshuffles_by_level) > 0

    def test_time_breakdown_sums_sensibly(self, one_result):
        fr = breakdown_fractions(one_result)
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["readPath"] > 0
        assert fr["evictPath"] > 0

    def test_warmup_excluded(self, small_schemes, small_trace):
        cfg = small_schemes[0]
        full = simulate(cfg, small_trace, SimConfig(seed=1))
        part = simulate(cfg, small_trace,
                        SimConfig(seed=1, warmup_requests=150))
        assert part.requests == len(small_trace) - 150
        assert part.exec_ns < full.exec_ns

    def test_deterministic(self, small_schemes, small_trace):
        cfg = small_schemes[0]
        a = simulate(cfg, small_trace, SimConfig(seed=9))
        b = simulate(cfg, small_trace, SimConfig(seed=9))
        assert a.exec_ns == b.exec_ns
        assert a.dram_reads == b.dram_reads

    def test_extension_ratio_only_for_ab_schemes(self, small_schemes,
                                                 small_trace):
        by_name = {c.name: c for c in small_schemes}
        base = simulate(by_name["Baseline"], small_trace, SimConfig(seed=1))
        ab = simulate(by_name["AB"], small_trace, SimConfig(seed=1))
        assert base.extension_ratio is None
        assert ab.extension_ratio is not None

    def test_check_invariants_flag(self, small_schemes, small_trace):
        simulate(small_schemes[-1], small_trace,
                 SimConfig(seed=1, check_invariants=True))

    def test_remote_accesses_only_under_dr(self, small_schemes, small_trace):
        by_name = {c.name: c for c in small_schemes}
        ns = simulate(by_name["NS"], small_trace, SimConfig(seed=1))
        dr = simulate(by_name["DR"], small_trace, SimConfig(seed=1))
        assert ns.remote_accesses == 0
        assert dr.remote_accesses > 0

    def test_to_dict(self, one_result):
        d = one_result.to_dict()
        assert d["scheme"] == "Baseline"
        assert "bandwidth_gbps" in d


class TestAggregation:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_normalize(self, small_schemes, small_trace):
        results = run_schemes(small_schemes[:2], small_trace, SimConfig(seed=1))
        wrapped = {k: {"mcf": v} for k, v in results.items()}
        norm = normalize(wrapped, "exec_ns")
        assert norm["Baseline"]["mcf"] == pytest.approx(1.0)
        assert norm["Baseline"]["geomean"] == pytest.approx(1.0)
        assert norm["IR"]["mcf"] > 0

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({}, "exec_ns")


class TestRunner:
    def test_suite_benchmarks(self):
        assert "mcf" in suite_benchmarks("spec")
        assert "canneal" in suite_benchmarks("parsec")
        with pytest.raises(KeyError):
            suite_benchmarks("nope")

    def test_make_trace(self):
        t = make_trace("parsec", "canneal", 100, 20)
        assert len(t) == 20
        with pytest.raises(KeyError):
            make_trace("nope", "x", 100, 20)

    def test_run_suite_shape(self, small_schemes):
        results = run_suite(small_schemes[:2], suite="spec",
                            benchmarks=["gcc", "mcf"], n_requests=120,
                            sim=SimConfig(seed=1))
        assert set(results) == {"Baseline", "IR"}
        assert set(results["Baseline"]) == {"gcc", "mcf"}

    def test_run_suite_rejects_mismatched_blocks(self, small_schemes):
        other = schemes.baseline_cb(9)
        with pytest.raises(ValueError):
            run_suite([small_schemes[0], other], benchmarks=["gcc"],
                      n_requests=10)

    def test_run_suite_requires_schemes(self):
        with pytest.raises(ValueError):
            run_suite([], benchmarks=["gcc"])

    def test_run_suite_parallel_matches_serial(self, small_schemes):
        kw = dict(suite="spec", benchmarks=["gcc"], n_requests=80,
                  sim=SimConfig(seed=2))
        serial = run_suite(small_schemes[:2], workers=1, **kw)
        parallel = run_suite(small_schemes[:2], workers=2, **kw)
        for scheme in serial:
            assert parallel[scheme]["gcc"] == serial[scheme]["gcc"]

    def test_run_suite_parallel_rejects_observers(self, small_schemes):
        from repro.core.security import GuessingAttacker
        with pytest.raises(ValueError, match="observers"):
            run_suite(small_schemes[:1], benchmarks=["gcc"], n_requests=10,
                      workers=2,
                      sim=SimConfig(observers=[GuessingAttacker(8)]))

    def test_run_suite_rejects_bad_workers(self, small_schemes):
        with pytest.raises(ValueError, match="workers"):
            run_suite(small_schemes[:1], benchmarks=["gcc"], n_requests=10,
                      workers=0)
