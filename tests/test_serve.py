"""Tests for the serving subsystem (repro.serve)."""

from __future__ import annotations

import importlib.util
import json
import os

import numpy as np
import pytest

from repro.serve import (
    DELETE,
    GET,
    PUT,
    BatchScheduler,
    KVServer,
    Request,
    build_stack,
)
from repro.serve.bench import dedup_check, run_serve, smoke_config
from repro.serve.loadgen import (
    WorkloadConfig,
    generate_requests,
    initial_items,
    key_name,
    value_for,
    with_seed,
)
from repro.serve.replay import replay
from repro.serve.schema import (
    deterministic_bytes,
    deterministic_view,
    validate_report,
)
from repro.serve.tracing import assign_lanes, request_trace_doc


def small_stack(levels: int = 8, seed: int = 0, observer: bool = False):
    return build_stack(levels=levels, seed=seed, observer=observer)


def req(rid, op, key, value=None, arrival=0.0):
    return Request(rid=rid, op=op, key=key, value=value, arrival_ns=arrival)


# ---------------------------------------------------------------- requests

class TestRequest:
    def test_put_requires_value(self):
        with pytest.raises(ValueError):
            req(0, PUT, b"k")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            req(0, "scan", b"k")

    def test_completion_windows(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, clock=lambda: stack.dram_sink.now)
        comps = sched.serve_batch([req(0, PUT, b"a", b"v1")])
        (c,) = comps
        assert c.queue_ns >= 0
        assert c.service_ns > 0
        assert c.latency_ns == c.queue_ns + c.service_ns


# ---------------------------------------------------------------- scheduler

class TestSchedulerCorrectness:
    def test_exact_values_per_client(self):
        """Every client gets the value a serial per-key replay dictates."""
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch", seed=3)
        batch = [
            req(0, PUT, b"a", b"a0"),
            req(1, PUT, b"b", b"b0"),
            req(2, GET, b"a"),
            req(3, PUT, b"a", b"a1"),
            req(4, GET, b"a"),
            req(5, GET, b"b"),
            req(6, DELETE, b"b"),
            req(7, GET, b"b"),
            req(8, GET, b"c"),
        ]
        by_rid = {c.rid: c for c in sched.serve_batch(batch)}
        assert len(by_rid) == len(batch)
        assert by_rid[2].value == b"a0"
        assert by_rid[4].value == b"a1"
        assert by_rid[5].value == b"b0"
        assert by_rid[6].ok is True
        assert by_rid[7].value is None and not by_rid[7].ok
        assert by_rid[8].value is None and not by_rid[8].ok
        assert stack.kv.get(b"a") == b"a1"
        assert stack.kv.get(b"b") is None

    def test_same_key_waiters_share_one_access(self):
        """N same-key gets in a batch cost exactly one chain access."""
        stack = small_stack()
        stack.kv.put(b"hot", b"x" * 100)   # two chunks
        sched = BatchScheduler(stack.kv, policy="batch")
        one = sched.serve_batch([req(0, GET, b"hot")])
        per_get = one[0].accesses
        assert per_get > 0

        batch = [req(i, GET, b"hot", arrival=float(i)) for i in range(1, 6)]
        comps = sched.serve_batch(batch)
        assert sum(c.accesses for c in comps) == per_get
        assert sched.dedup_hits == 4
        assert all(c.value == b"x" * 100 for c in comps)
        dedup = [c for c in comps if c.dedup]
        assert len(dedup) == 4
        # Waiters complete at the shared access's completion time.
        first = next(c for c in comps if not c.dedup)
        assert all(c.done_ns == first.done_ns for c in dedup)

    def test_absent_key_gets_not_deduped(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch")
        comps = sched.serve_batch([req(0, GET, b"nope"), req(1, GET, b"nope")])
        assert all(c.value is None for c in comps)
        assert sched.dedup_hits == 0
        assert sched.absent_gets == 2

    def test_superseded_put_is_coalesced(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch")
        comps = sched.serve_batch([
            req(0, PUT, b"k", b"old"),
            req(1, PUT, b"k", b"new"),
            req(2, GET, b"k"),
        ])
        by_rid = {c.rid: c for c in comps}
        assert by_rid[0].coalesced and by_rid[0].ok
        assert not by_rid[1].coalesced
        assert by_rid[2].value == b"new"
        assert sched.coalesced_puts == 1
        # The coalesced ack is only durable once the surviving write
        # lands: both complete at the same instant.
        assert by_rid[0].done_ns == by_rid[1].done_ns
        assert stack.kv.get(b"k") == b"new"

    def test_put_get_put_not_coalesced(self):
        """A get between writes pins the first put: no coalescing."""
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch")
        comps = sched.serve_batch([
            req(0, PUT, b"k", b"first"),
            req(1, GET, b"k"),
            req(2, PUT, b"k", b"second"),
        ])
        by_rid = {c.rid: c for c in comps}
        assert not by_rid[0].coalesced
        assert by_rid[1].value == b"first"
        assert sched.coalesced_puts == 0
        assert stack.kv.get(b"k") == b"second"

    def test_put_then_delete_coalesces_the_put(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch")
        comps = sched.serve_batch([
            req(0, PUT, b"k", b"doomed"),
            req(1, DELETE, b"k"),
        ])
        by_rid = {c.rid: c for c in comps}
        assert by_rid[0].coalesced
        assert sched.coalesced_puts == 1
        assert stack.kv.get(b"k") is None

    def test_delete_then_get_in_batch(self):
        stack = small_stack()
        stack.kv.put(b"k", b"v")
        sched = BatchScheduler(stack.kv, policy="batch")
        comps = sched.serve_batch([req(0, DELETE, b"k"), req(1, GET, b"k")])
        by_rid = {c.rid: c for c in comps}
        assert by_rid[0].ok
        assert by_rid[1].value is None and not by_rid[1].ok

    def test_fifo_policy_preserves_arrival_order(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="fifo")
        batch = [
            req(0, PUT, b"z", b"vz"),
            req(1, PUT, b"a", b"va"),
            req(2, GET, b"z"),
            req(3, GET, b"z"),
        ]
        comps = sched.serve_batch(batch)
        assert [c.rid for c in comps] == [0, 1, 2, 3]
        assert sched.dedup_hits == 0
        assert comps[2].accesses > 0 and comps[3].accesses > 0

    def test_unknown_policy_rejected(self):
        stack = small_stack()
        with pytest.raises(ValueError):
            BatchScheduler(stack.kv, policy="lifo")

    def test_stats_shape(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv, policy="batch")
        sched.serve_batch([req(0, PUT, b"k", b"v")])
        sched.serve_batch([req(1, GET, b"k"), req(2, GET, b"k")])
        s = sched.stats()
        assert s["requests"] == 3
        assert s["batches"] == 2
        assert s["ops"] == {GET: 2, PUT: 1, DELETE: 0}
        assert s["batch_size_hist"] == [[1, 1], [2, 1]]
        assert s["accesses_issued"] > 0


class TestSchedulerDeterminism:
    def test_served_order_independent_of_submission_order(self):
        """Shuffling a batch must not change the served key order."""
        keys = [b"k%d" % i for i in range(10)]
        batch = [req(i, GET, keys[i]) for i in range(10)]
        orders = []
        for perm_seed in (0, 1, 2):
            stack = small_stack()
            for k in keys:
                stack.kv.put(k, b"v-" + k)
            rng = np.random.default_rng(perm_seed)
            shuffled = [batch[i] for i in rng.permutation(10)]
            sched = BatchScheduler(stack.kv, policy="batch", seed=7)
            comps = sched.serve_batch(shuffled)
            orders.append([c.key for c in comps])
        assert orders[0] == orders[1] == orders[2]

    def test_order_depends_on_seed(self):
        stack = small_stack()
        a = BatchScheduler(stack.kv, policy="batch", seed=0)
        b = BatchScheduler(stack.kv, policy="batch", seed=1)
        keys = [b"k%d" % i for i in range(16)]
        assert (sorted(keys, key=a.order_key)
                != sorted(keys, key=b.order_key))


# ----------------------------------------------------------------- loadgen

class TestLoadgen:
    def test_generation_is_deterministic(self):
        cfg = WorkloadConfig(name="w", n_requests=300, stored_keys=50,
                             n_keys=10_000)
        a = generate_requests(cfg)
        b = generate_requests(cfg)
        assert [(r.rid, r.op, r.key, r.value, r.arrival_ns) for r in a] \
            == [(r.rid, r.op, r.key, r.value, r.arrival_ns) for r in b]

    def test_seed_changes_workload(self):
        cfg = WorkloadConfig(name="w", n_requests=300, stored_keys=50,
                             n_keys=10_000)
        a = generate_requests(cfg)
        b = generate_requests(with_seed(cfg, 1))
        assert [r.key for r in a] != [r.key for r in b]

    def test_million_key_universe_folds_onto_store(self):
        cfg = WorkloadConfig(name="w", n_requests=2000, stored_keys=64,
                             n_keys=4_000_000, zipf_s=1.1)
        reqs = generate_requests(cfg)
        keys = {r.key for r in reqs}
        assert keys <= {key_name(i) for i in range(64)}
        # Zipf head concentrates on the first stored keys.
        counts = {k: 0 for k in keys}
        for r in reqs:
            counts[r.key] += 1
        assert counts[key_name(0)] > len(reqs) / 64

    def test_arrivals_sorted_and_open_loop(self):
        for arrival in ("poisson", "bursty"):
            cfg = WorkloadConfig(name="w", n_requests=500, arrival=arrival,
                                 stored_keys=10, n_keys=100)
            times = [r.arrival_ns for r in generate_requests(cfg)]
            assert times == sorted(times)
            assert times[-1] > 0

    def test_bursty_is_burstier_than_poisson(self):
        base = dict(name="w", n_requests=2000, stored_keys=10, n_keys=100,
                    rate_rps=1e6)
        gaps = {}
        for arrival in ("poisson", "bursty"):
            cfg = WorkloadConfig(arrival=arrival, **base)
            t = np.array([r.arrival_ns for r in generate_requests(cfg)])
            d = np.diff(t)
            gaps[arrival] = d.std() / d.mean()   # coefficient of variation
        assert gaps["bursty"] > gaps["poisson"] * 1.3

    def test_op_mix(self):
        cfg = WorkloadConfig(name="w", n_requests=3000, stored_keys=10,
                             n_keys=100, read_fraction=0.5,
                             delete_fraction=0.1)
        reqs = generate_requests(cfg)
        frac = {op: sum(r.op == op for r in reqs) / len(reqs)
                for op in (GET, PUT, DELETE)}
        assert abs(frac[GET] - 0.5) < 0.05
        assert abs(frac[DELETE] - 0.1) < 0.03
        assert all(r.value is not None for r in reqs if r.op == PUT)

    def test_value_for_embeds_key_and_rid(self):
        v = value_for(b"k00000007", 42, 80)
        assert v.startswith(b"k00000007|42|")
        assert value_for(b"k00000007", 42, 80) == v
        assert value_for(b"k00000007", 43, 80) != v

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="w", arrival="uniform")
        with pytest.raises(ValueError):
            WorkloadConfig(name="w", stored_keys=0)
        with pytest.raises(ValueError):
            WorkloadConfig(name="w", stored_keys=200, n_keys=100)
        with pytest.raises(ValueError):
            WorkloadConfig(name="w", read_fraction=0.9, delete_fraction=0.2)


# ------------------------------------------------------------------ replay

class TestReplay:
    def _workload(self, n=120):
        return WorkloadConfig(name="w", n_requests=n, stored_keys=30,
                              n_keys=1000, rate_rps=2e6, value_bytes=60)

    def test_replay_respects_arrivals(self):
        cfg = self._workload()
        stack = small_stack()
        stack.kv.preload(initial_items(cfg))
        sched = BatchScheduler(stack.kv, policy="batch",
                               clock=lambda: stack.dram_sink.now)
        result = replay(stack, generate_requests(cfg), sched, max_batch=16)
        assert len(result.completions) == cfg.n_requests
        for c in result.completions:
            if not c.coalesced:
                assert c.start_ns >= c.arrival_ns
            assert c.done_ns >= c.start_ns
        assert result.sim_ns > 0

    def test_replay_deterministic(self):
        cfg = self._workload()
        lat = []
        for _ in range(2):
            stack = small_stack()
            stack.kv.preload(initial_items(cfg))
            sched = BatchScheduler(stack.kv, policy="batch",
                                   clock=lambda: stack.dram_sink.now)
            result = replay(stack, generate_requests(cfg), sched)
            lat.append([c.latency_ns for c in result.completions])
        assert lat[0] == lat[1]

    def test_max_batch_validated(self):
        stack = small_stack()
        sched = BatchScheduler(stack.kv)
        with pytest.raises(ValueError):
            replay(stack, [], sched, max_batch=0)


# ----------------------------------------------------------------- preload

class TestPreload:
    def test_preload_costs_no_accesses(self):
        stack = small_stack()
        before = stack.kv.oram.online_accesses
        stack.kv.preload([(b"a", b"v" * 100), (b"b", b"w")])
        assert stack.kv.oram.online_accesses == before
        assert stack.kv.get(b"a") == b"v" * 100
        assert stack.kv.get(b"b") == b"w"

    def test_preload_rejects_existing_key(self):
        stack = small_stack()
        stack.kv.preload([(b"a", b"v")])
        with pytest.raises(ValueError):
            stack.kv.preload([(b"a", b"again")])


# ------------------------------------------------------------------ server

class TestKVServer:
    def test_blocking_round_trip(self):
        stack = small_stack()
        with KVServer(stack.kv, policy="batch", max_batch=8) as server:
            server.put(b"k", b"v1")
            assert server.get(b"k") == b"v1"
            assert server.delete(b"k") is True
            assert server.get(b"k") is None

    def test_concurrent_clients(self):
        import threading

        stack = small_stack()
        server = KVServer(stack.kv, policy="batch", max_batch=16)
        errors = []

        def client(cid):
            try:
                key = b"client-%d" % cid
                for i in range(5):
                    server.put(key, b"%d:%d" % (cid, i))
                    got = server.get(key)
                    assert got == b"%d:%d" % (cid, i), (cid, i, got)
            except Exception as exc:   # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.close()
        assert errors == []
        assert server.stats()["requests"] == 4 * 10

    def test_close_drains_pending(self):
        stack = small_stack()
        server = KVServer(stack.kv, max_batch=4)
        futures = [server.submit(PUT, b"k%d" % i, b"v") for i in range(6)]
        server.close(drain=True)
        assert all(f.result(timeout=5).ok for f in futures)

    def test_submit_after_close_raises(self):
        stack = small_stack()
        server = KVServer(stack.kv)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(GET, b"k")


# ----------------------------------------------------------------- tracing

class TestTracing:
    def _completions(self):
        cfg = WorkloadConfig(name="w", n_requests=60, stored_keys=20,
                             n_keys=500, rate_rps=3e6)
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        stack = build_stack(levels=8, telemetry=telemetry, observer=False)
        stack.kv.preload(initial_items(cfg))
        sched = BatchScheduler(stack.kv, policy="batch",
                               clock=lambda: stack.dram_sink.now)
        result = replay(stack, generate_requests(cfg), sched)
        return result.completions, telemetry.spans

    def test_lanes_never_overlap(self):
        comps, _ = self._completions()
        lanes = assign_lanes(comps)
        by_lane = {}
        for c in comps:
            by_lane.setdefault(lanes[c.rid], []).append(c)
        for members in by_lane.values():
            members.sort(key=lambda c: c.arrival_ns)
            for prev, cur in zip(members, members[1:]):
                assert prev.done_ns <= cur.arrival_ns

    def test_trace_doc_validates(self, tmp_path):
        comps, spans = self._completions()
        doc = request_trace_doc(comps, spans, meta={"workload": "w"})
        tools = os.path.join(os.path.dirname(__file__), os.pardir,
                             "tools", "check_trace.py")
        spec = importlib.util.spec_from_file_location("check_trace", tools)
        check_trace = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_trace)
        errors = check_trace.validate_trace(
            doc, require_kinds=["readPath", "queue", "get"], min_spans=50,
        )
        assert errors == []
        cats = {e.get("cat") for e in doc["traceEvents"]
                if e.get("ph") == "X"}
        assert {"oram", "serve.queue", "serve.oram"} <= cats


# ---------------------------------------------------------- schema + bench

def tiny_serve_config(**overrides):
    wl = dict(n_requests=150, n_keys=5000, stored_keys=60, value_bytes=60,
              rate_rps=2.5e6)
    workloads = (
        WorkloadConfig(name="p", arrival="poisson", expect_dedup=False, **wl),
        WorkloadConfig(name="b", arrival="bursty", zipf_s=1.2,
                       burst_factor=8.0, expect_dedup=True, **wl),
    )
    return smoke_config(levels=8, workloads=workloads, **overrides)


class TestBenchAndSchema:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_serve(tiny_serve_config())

    def test_report_validates(self, doc):
        assert validate_report(doc) == []

    def test_dedup_beats_fifo(self, doc):
        assert dedup_check(doc) == []
        cells = {(c["workload"], c["policy"]): c for c in doc["cells"]}
        assert (cells[("b", "batch")]["sim"]["accesses_per_request"]
                < cells[("b", "fifo")]["sim"]["accesses_per_request"])

    def test_security_observer_sees_no_leak(self, doc):
        for cell in doc["cells"]:
            sec = cell["sim"]["security"]
            assert sec["guesses"] > 0
            assert abs(sec["advantage"]) < 0.12   # tiny-sample tolerance

    def test_deterministic_view_strips_wall_fields(self, doc):
        view = deterministic_view(doc)
        for cell in view["cells"]:
            assert "wall_s" not in cell
            assert "wall_latency_us" not in cell
            assert "sim" in cell
        assert "environment" not in view

    def test_workers_do_not_change_deterministic_bytes(self, doc):
        par = run_serve(tiny_serve_config(workers=2))
        assert deterministic_bytes(par) == deterministic_bytes(doc)

    def test_validator_catches_corruption(self, doc):
        bad = json.loads(json.dumps(doc))
        del bad["cells"][0]["sim"]["dedup_hits"]
        bad["cells"][1]["wall_s"] = -1.0
        errors = validate_report(bad)
        assert any("dedup_hits" in e for e in errors)
        assert any("wall_s" in e for e in errors)

    def test_dedup_check_flags_synthetic_loss(self, doc):
        bad = json.loads(json.dumps(doc))
        for cell in bad["cells"]:
            if cell["policy"] == "batch":
                cell["sim"]["accesses_issued"] = 10 ** 9
        problems = dedup_check(bad)
        assert problems and any("more accesses" in p for p in problems)


# --------------------------------------------------------------------- CLI

class TestServeCli:
    def test_demo_runs(self, capsys):
        from repro.cli import main
        rc = main(["serve", "demo", "--levels", "8", "--clients", "2",
                   "--requests", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve demo" in out
        assert "attacker advantage" in out

    def test_compare_identical_reports(self, tmp_path, capsys):
        from repro.cli import main
        doc = run_serve(tiny_serve_config())
        path = tmp_path / "r.json"
        path.write_text(json.dumps(doc))
        rc = main(["serve", "compare", str(path), str(path)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_detects_regression(self, tmp_path, capsys):
        from repro.cli import main
        doc = run_serve(tiny_serve_config())
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doc))
        worse = json.loads(json.dumps(doc))
        for cell in worse["cells"]:
            cell["sim"]["latency_ns"]["p99"] *= 2.0
        new = tmp_path / "new.json"
        new.write_text(json.dumps(worse))
        assert main(["serve", "compare", str(base), str(new)]) == 1
        capsys.readouterr()
        assert main(["serve", "compare", str(base), str(new),
                     "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_serve_sugar_defaults_to_bench(self):
        from repro.cli import build_parser
        # Parsing only: "serve --smoke" must route to the bench parser
        # (main() inserts the "bench" sugar, then parses; running the
        # actual smoke matrix here would be too slow).
        argv = ["serve", "--smoke"]
        if argv[1].startswith("-"):
            argv.insert(1, "bench")
        args = build_parser().parse_args(argv)
        assert args.serve_command == "bench" and args.smoke
