"""The on-chip stash.

The stash buffers real blocks between the moment a path/bucket read
pulls them on-chip and the moment an ``evictPath`` (or, for Ring ORAM,
an ``earlyReshuffle`` piggy-back) writes them back into the tree. Every
resident block carries its current leaf label; eviction placement is
decided by how deep that label's path intersects the eviction path.

The stash has a hard ``capacity``; the ORAM protocols are parameterized
(utilization 50%, background eviction) so that this bound is essentially
never hit, and :class:`StashOverflowError` flags a mis-configuration
rather than an expected runtime event. Peak occupancy is tracked because
the paper's CB baseline keys background eviction off it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.oram.tree import intersection_level


class StashOverflowError(RuntimeError):
    """Raised when the stash exceeds its configured capacity."""


class Stash:
    """Map of resident real blocks to their current leaf labels."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"stash capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._blocks: Dict[int, int] = {}
        self.peak_occupancy = 0
        self.total_inserts = 0
        self.overflow_events = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    @property
    def occupancy(self) -> int:
        return len(self._blocks)

    def leaf_of(self, block: int) -> int:
        """Current leaf label of a resident block."""
        return self._blocks[block]

    def add(self, block: int, leaf: int) -> None:
        """Insert (or update) a resident block."""
        if block < 0:
            raise ValueError(f"negative block id {block}")
        self._blocks[block] = leaf
        self.total_inserts += 1
        if len(self._blocks) > self.peak_occupancy:
            self.peak_occupancy = len(self._blocks)
        if len(self._blocks) > self.capacity:
            self.overflow_events += 1
            raise StashOverflowError(
                f"stash overflow: {len(self._blocks)} > capacity {self.capacity}"
            )

    def add_many(self, blocks: List[int], leaves: List[int]) -> None:
        """Bulk :meth:`add`, one occupancy/overflow check for the batch.

        Semantically equivalent to adding the pairs one by one (the
        occupancy only grows during the batch, so its peak is its final
        value); callers guarantee non-negative block ids. On overflow
        the whole batch is already inserted and a single overflow event
        is recorded.
        """
        bm = self._blocks
        bm.update(zip(blocks, leaves))
        self.total_inserts += len(blocks)
        n = len(bm)
        if n > self.peak_occupancy:
            self.peak_occupancy = n
        if n > self.capacity:
            self.overflow_events += 1
            raise StashOverflowError(
                f"stash overflow: {n} > capacity {self.capacity}"
            )

    def remap(self, block: int, new_leaf: int) -> None:
        """Update the leaf label of a resident block."""
        if block not in self._blocks:
            raise KeyError(f"block {block} not in stash")
        self._blocks[block] = new_leaf

    def remove(self, block: int) -> int:
        """Remove a block; returns its leaf label."""
        return self._blocks.pop(block)

    def remove_many(self, blocks: Iterable[int]) -> None:
        """Bulk :meth:`remove` in iteration order (reshuffle refill).

        Raises ``KeyError`` on the first non-resident block, exactly as
        the per-block calls would.
        """
        pop = self._blocks.pop
        for block in blocks:
            pop(block)

    def blocks(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(block, leaf)`` pairs (snapshot order unspecified)."""
        return self._blocks.items()

    def pick_for_bucket(self, position: int, shift: int, capacity: int) -> List[int]:
        """Up to ``capacity`` resident blocks placeable in the bucket at
        ``position`` of level ``levels - 1 - shift`` (their leaf path
        crosses it, i.e. ``leaf >> shift == position``), in insertion
        order -- the order the reshuffle refill greedy depends on.
        """
        if capacity <= 0 or not self._blocks:
            # Nothing can match: skip the O(stash) scan outright (the
            # common case right after an evictPath drained the stash).
            return []
        found: List[int] = []
        for block, leaf in self._blocks.items():
            if (leaf >> shift) == position:
                found.append(block)
                if len(found) >= capacity:
                    break
        return found

    def candidates_for(
        self,
        evict_leaf: int,
        min_level: int,
        levels: int,
        limit: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """Resident blocks placeable at ``min_level`` or deeper on a path.

        A block labelled ``leaf`` may live in any bucket shared by the
        paths of ``leaf`` and ``evict_leaf``, i.e. at levels up to their
        intersection level. Returns ``(block, intersection_level)``
        pairs, deepest-eligible first, which is the greedy order
        evictPath uses to push blocks toward the leaves.
        """
        found: List[Tuple[int, int]] = []
        for block, leaf in self._blocks.items():
            deepest = intersection_level(leaf, evict_leaf, levels)
            if deepest >= min_level:
                found.append((block, deepest))
        found.sort(key=lambda item: -item[1])
        if limit is not None:
            return found[:limit]
        return found
