"""Linear-scan ORAM: the trivial, information-theoretic baseline.

Before tree ORAMs, the textbook way to hide an access pattern was to
touch *everything*: each logical access reads and rewrites every block,
so the observable trace is identical for any access sequence -- perfect
obliviousness at O(N) cost per access.

The class earns its place in this library twice over:

1. **as an oracle**: it shares the block-device API of
   :class:`~repro.oram.ring.RingOram`, so differential tests replay
   one workload against both and require identical read results --
   catching any data-path bug in the far more intricate Ring ORAM;
2. **as the cost anchor**: Ring ORAM's O(log N) online accesses only
   mean something against the O(N) strawman, and the scan's per-access
   cost makes that gap concrete in benchmarks.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.oram.stats import CountingSink, MemorySink, OpKind


class LinearScanOram:
    """Touch-everything ORAM over ``n_blocks`` logical blocks."""

    def __init__(
        self,
        n_blocks: int,
        sink: Optional[MemorySink] = None,
        block_bytes: int = 64,
        store_data: bool = True,
    ) -> None:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        self.n_blocks = n_blocks
        self.block_bytes = block_bytes
        self.sink = sink if sink is not None else CountingSink(1)
        self._data: Optional[List[Any]] = (
            [None] * n_blocks if store_data else None
        )
        self.accesses = 0

    def access(self, block: int, write: bool = False, value: Any = None) -> Any:
        """One oblivious access: scan (read + rewrite) every block."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
        self.accesses += 1
        self.sink.begin_op(OpKind.READ_PATH)
        for i in range(self.n_blocks):
            # Every slot is read and rewritten so the memory cannot
            # tell which one mattered.
            self.sink.data_access(0, i, 0, write=False)
            self.sink.data_access(0, i, 0, write=True)
        if write and self._data is not None:
            self._data[block] = value
        result = self._data[block] if self._data is not None else None
        self.sink.end_op()
        return result

    def read(self, block: int) -> Any:
        return self.access(block, write=False)

    def write(self, block: int, value: Any) -> None:
        self.access(block, write=True, value=value)

    @property
    def accesses_per_request(self) -> int:
        """Memory touches per logical access (the O(N) in the flesh)."""
        return 2 * self.n_blocks
