"""Bucket-metadata bit budget (paper Table I).

Ring ORAM keeps a small metadata record per bucket (in a separate
metadata tree) that the controller reads before each operation touching
the bucket. AB-ORAM appends five fields -- ``remote``, ``remoteAddr``,
``remoteInd``, ``dynamicS`` (block-related) and ``status``
(slot-related) -- to implement remote allocation.

This module reproduces the table symbolically: given an
:class:`~repro.oram.config.OramConfig` it computes the exact bit count
of every field for both protocols, and checks the paper's sizing claim
that Ring ORAM metadata fits one 64B block (33B) and AB-ORAM stays
within a block as well (33B + 28B = 61B with R = 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.oram.config import OramConfig


def _log2ceil(value: int) -> int:
    """Bits needed to address ``value`` distinct items (min 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return max(1, math.ceil(math.log2(value))) if value > 1 else 1


@dataclass(frozen=True)
class MetadataField:
    """One row of Table I."""

    name: str
    bits: int
    category: str  # "block" or "slot"
    function: str


def ring_metadata_fields(cfg: OramConfig, level: int = -1) -> List[MetadataField]:
    """Baseline Ring ORAM per-bucket metadata fields at ``level``.

    ``level`` defaults to the leaf level, whose buckets dominate the
    tree; Table I is written for the uniform-geometry baseline where all
    levels agree.
    """
    g = cfg.geometry[level]
    s_bits = _log2ceil(max(2, g.sustain_unextended + 1))
    n_block = cfg.n_real_blocks
    label_bits = cfg.levels  # L + 1 in the paper's 0..L level convention
    z_bits = _log2ceil(max(2, g.z_total))
    return [
        MetadataField("count", 1 * s_bits, "block",
                      "readPath hits since the last refresh"),
        MetadataField("addr", g.z_real * _log2ceil(n_block), "block",
                      "address of each real block"),
        MetadataField("label", g.z_real * label_bits, "block",
                      "path id of each real block"),
        MetadataField("ptr", g.z_real * z_bits, "block",
                      "slot offset of each real block"),
        MetadataField("valid", g.z_total * 1, "slot",
                      "per-slot validity"),
    ]


def ab_metadata_fields(cfg: OramConfig, level: int = -1) -> List[MetadataField]:
    """AB-ORAM per-bucket metadata: Ring fields plus the five additions."""
    g = cfg.geometry[level]
    fields = ring_metadata_fields(cfg, level)
    r = cfg.max_remote_slots
    bucket_bits = _log2ceil(cfg.n_buckets)
    z_bits = _log2ceil(max(2, g.z_total))
    s_bits = _log2ceil(max(2, g.sustain + 1))
    fields.extend([
        MetadataField("remote", r * 1, "block",
                      "whether the block is remotely allocated"),
        MetadataField("remoteAddr", r * bucket_bits, "block",
                      "host bucket of a remotely allocated block"),
        MetadataField("remoteInd", r * z_bits, "block",
                      "host slot of a remotely allocated block"),
        MetadataField("dynamicS", s_bits, "block",
                      "current granted S of the bucket"),
        MetadataField("status", g.z_total * 2, "slot",
                      "slot status (REFRESHED, ALLOCATED, DEAD)"),
    ])
    return fields


def metadata_bits(fields: List[MetadataField]) -> int:
    return sum(f.bits for f in fields)


def metadata_bytes(fields: List[MetadataField]) -> int:
    return (metadata_bits(fields) + 7) // 8


def metadata_blocks(cfg: OramConfig, fields: List[MetadataField]) -> int:
    """64B blocks needed to store one bucket's metadata."""
    return max(1, math.ceil(metadata_bytes(fields) / cfg.block_bytes))


def table1(cfg: OramConfig, level: int = -1) -> Dict[str, Dict[str, object]]:
    """Reproduce Table I: field -> {ring_bits, ab_bits, category, function}."""
    ring = {f.name: f for f in ring_metadata_fields(cfg, level)}
    ab = {f.name: f for f in ab_metadata_fields(cfg, level)}
    rows: Dict[str, Dict[str, object]] = {}
    for name, f in ab.items():
        rows[name] = {
            "category": f.category,
            "ab_bits": f.bits,
            "ring_bits": ring[name].bits if name in ring else 0,
            "function": f.function,
        }
    return rows


def summarize(cfg: OramConfig, level: int = -1) -> Dict[str, object]:
    """Byte/block budget for Ring vs AB metadata at ``level``."""
    ring = ring_metadata_fields(cfg, level)
    ab = ab_metadata_fields(cfg, level)
    ring_b = metadata_bytes(ring)
    ab_b = metadata_bytes(ab)
    return {
        "ring_bytes": ring_b,
        "ab_bytes": ab_b,
        "ab_extra_bytes": ab_b - ring_b,
        "ring_blocks": metadata_blocks(cfg, ring),
        "ab_blocks": metadata_blocks(cfg, ab),
        "fits_one_block": ab_b <= cfg.block_bytes,
    }


def deadq_onchip_bytes(cfg: OramConfig) -> int:
    """On-chip cost of the DeadQ queues (paper section VIII-H, about 21KB).

    Each entry stores {slotAddr, slotInd}: a bucket id plus a slot
    offset, rounded up to whole bits.
    """
    bucket_bits = _log2ceil(cfg.n_buckets)
    z_bits = _log2ceil(max(2, cfg.z_max))
    entry_bits = bucket_bits + z_bits
    total_bits = len(cfg.deadq_levels) * cfg.deadq_capacity * entry_bits
    return (total_bits + 7) // 8
