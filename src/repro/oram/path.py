"""Classic Path ORAM (Stefanov et al.), the substrate Ring ORAM refines.

Kept in the library for three reasons: (i) the paper frames Ring ORAM's
bandwidth advantage against it (readPath fetches 1 block per bucket vs.
Path ORAM's Z'), (ii) IR-ORAM -- one of the comparators -- was proposed
on Path ORAM, and (iii) it provides an independent, much simpler
protocol against which the shared substrate (tree addressing, stash,
position map) is cross-validated in tests.

Every access performs the canonical two-phase path access: read all
``Z`` blocks of every bucket on the target's path into the stash, remap
the target, then write the path back root-to-leaf... actually
leaf-to-root with greedy deepest placement, padding with dummies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.oram import tree as tree_mod
from repro.oram.bucket import BucketStore
from repro.oram.config import OramConfig, uniform_geometry
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash
from repro.oram.stats import CountingSink, MemorySink, OpKind


def path_oram_config(
    levels: int,
    z: int = 4,
    stash_capacity: int = 300,
    treetop_levels: int = 0,
    utilization: float = 0.5,
    name: str = "path-oram",
) -> OramConfig:
    """Standard Path ORAM configuration: Z all-purpose slots per bucket."""
    return OramConfig(
        levels=levels,
        geometry=uniform_geometry(levels, z_real=z, s_reserved=0),
        treetop_levels=treetop_levels,
        stash_capacity=stash_capacity,
        utilization=utilization,
        name=name,
    )


class PathOram:
    """A functional Path ORAM instance."""

    def __init__(
        self,
        cfg: OramConfig,
        sink: Optional[MemorySink] = None,
        seed: int = 0,
        store_data: bool = False,
    ) -> None:
        if any(g.s_reserved or g.overlap or g.remote_extension for g in cfg.geometry):
            raise ValueError("Path ORAM buckets have no reserved dummies/overlap")
        self.cfg = cfg
        self.sink = sink if sink is not None else CountingSink(cfg.levels)
        self.rng = np.random.default_rng(seed)
        self.store = BucketStore(cfg)
        self.stash = Stash(cfg.stash_capacity)
        self.posmap = PositionMap(cfg.n_real_blocks, cfg.n_leaves, self.rng)
        self._data: Optional[Dict[int, Any]] = {} if store_data else None
        self.accesses = 0

    def access(self, block: int, write: bool = False, value: Any = None) -> Any:
        """One Path ORAM access: read path, remap, write path."""
        if not 0 <= block < self.cfg.n_real_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.cfg.n_real_blocks})"
            )
        self.accesses += 1
        leaf = self.posmap.lookup(block)
        buckets = tree_mod.path_buckets(leaf, self.cfg.levels)
        self._read_phase(buckets)
        new_leaf = self.posmap.remap(block)
        if block in self.stash:
            self.stash.remap(block, new_leaf)
        else:
            self.stash.add(block, new_leaf)
        if write and self._data is not None:
            self._data[block] = value
        result = self._data.get(block) if self._data is not None else None
        self._write_phase(buckets, leaf)
        return result

    def read(self, block: int) -> Any:
        return self.access(block, write=False)

    def write(self, block: int, value: Any) -> None:
        self.access(block, write=True, value=value)

    def _read_phase(self, buckets: Sequence[int]) -> None:
        cfg = self.cfg
        self.sink.begin_op(OpKind.READ_PATH)
        for b in buckets:
            lv = self.store.level(b)
            onchip = lv < cfg.treetop_levels
            z = self.store.z_phys(b)
            for slot in range(z):
                self.sink.data_access(b, slot, lv, write=False, onchip=onchip)
            for slot in self.store.valid_real_slots(b):
                blk = self.store.consume(b, int(slot))
                self.stash.add(blk, self.posmap.peek(blk))
        self.sink.end_op()

    def _write_phase(self, buckets: Sequence[int], leaf: int) -> None:
        cfg = self.cfg
        self.sink.begin_op(OpKind.EVICT_PATH)
        for b in reversed(buckets):
            lv = self.store.level(b)
            onchip = lv < cfg.treetop_levels
            z = self.store.z_phys(b)
            position = tree_mod.position_of(b)
            shift = cfg.levels - 1 - lv
            chosen: List[int] = []
            for blk, blk_leaf in self.stash.blocks():
                if (blk_leaf >> shift) == position:
                    chosen.append(blk)
                    if len(chosen) >= z:
                        break
            for blk in chosen:
                self.stash.remove(blk)
            written = self.store.refresh(b, chosen)
            for slot in written:
                self.sink.data_access(b, slot, lv, write=True, onchip=onchip)
        self.sink.end_op()

    def check_invariants(self) -> None:
        """Every mapped block in exactly one place, on its path."""
        seen: Dict[int, str] = {blk: "stash" for blk, _ in self.stash.blocks()}
        rows = self.store.slots
        for b, s in np.argwhere(rows >= 0):
            blk = int(rows[b, s])
            if blk in seen:
                raise AssertionError(f"block {blk} duplicated")
            seen[blk] = f"bucket {int(b)}"
            leaf = self.posmap.peek(blk)
            if not tree_mod.bucket_on_path(int(b), leaf, self.cfg.levels):
                raise AssertionError(f"block {blk} off its path")
        mapped = set(int(x) for x in self.posmap.mapped_blocks())
        missing = mapped.difference(seen)
        if missing:
            raise AssertionError(f"mapped blocks lost: {sorted(missing)[:5]}")
