"""Configuration serialization.

Experiments should be replayable artifacts: a result file that cannot
say exactly which geometry produced it is half a result. These helpers
turn :class:`~repro.oram.config.OramConfig` into plain dicts / JSON and
back, round-tripping every field including per-level geometry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.oram.config import BucketGeometry, OramConfig

PathLike = Union[str, Path]

_FORMAT = 1


def geometry_to_dict(g: BucketGeometry) -> Dict[str, int]:
    return {
        "z_real": g.z_real,
        "s_reserved": g.s_reserved,
        "overlap": g.overlap,
        "remote_extension": g.remote_extension,
    }


def geometry_from_dict(d: Dict[str, int]) -> BucketGeometry:
    return BucketGeometry(
        z_real=int(d["z_real"]),
        s_reserved=int(d["s_reserved"]),
        overlap=int(d.get("overlap", 0)),
        remote_extension=int(d.get("remote_extension", 0)),
    )


def config_to_dict(cfg: OramConfig) -> Dict[str, object]:
    """A JSON-safe dict capturing every configuration field.

    Identical consecutive levels are run-length encoded, which keeps
    the paper's 24-level configs readable.
    """
    runs: List[Dict[str, object]] = []
    for g in cfg.geometry:
        if runs and geometry_from_dict(runs[-1]["bucket"]) == g:
            runs[-1]["count"] = int(runs[-1]["count"]) + 1
        else:
            runs.append({"count": 1, "bucket": geometry_to_dict(g)})
    return {
        "_format": _FORMAT,
        "name": cfg.name,
        "levels": cfg.levels,
        "geometry_runs": runs,
        "evict_rate": cfg.evict_rate,
        "block_bytes": cfg.block_bytes,
        "stash_capacity": cfg.stash_capacity,
        "background_evict_threshold": cfg.background_evict_threshold,
        "treetop_levels": cfg.treetop_levels,
        "deadq_capacity": cfg.deadq_capacity,
        "deadq_levels": list(cfg.deadq_levels),
        "utilization": cfg.utilization,
        "base_z_real": cfg.base_z_real,
        "n_real_blocks": cfg.n_real_blocks,
        "max_remote_slots": cfg.max_remote_slots,
    }


def config_from_dict(data: Dict[str, object]) -> OramConfig:
    """Inverse of :func:`config_to_dict`."""
    if data.get("_format") != _FORMAT:
        raise ValueError(f"unsupported config format {data.get('_format')!r}")
    geometry: List[BucketGeometry] = []
    for run in data["geometry_runs"]:
        geometry.extend(
            [geometry_from_dict(run["bucket"])] * int(run["count"])
        )
    return OramConfig(
        levels=int(data["levels"]),
        geometry=tuple(geometry),
        evict_rate=int(data["evict_rate"]),
        block_bytes=int(data["block_bytes"]),
        stash_capacity=int(data["stash_capacity"]),
        background_evict_threshold=data["background_evict_threshold"],
        treetop_levels=int(data["treetop_levels"]),
        deadq_capacity=int(data["deadq_capacity"]),
        deadq_levels=tuple(data["deadq_levels"]),
        utilization=float(data["utilization"]),
        base_z_real=data["base_z_real"],
        n_real_blocks=data["n_real_blocks"],
        max_remote_slots=int(data["max_remote_slots"]),
        name=str(data["name"]),
    )


def save_config(cfg: OramConfig, path: PathLike) -> None:
    Path(path).write_text(json.dumps(config_to_dict(cfg), indent=1))


def load_config(path: PathLike) -> OramConfig:
    return config_from_dict(json.loads(Path(path).read_text()))
