"""Encrypted, authenticated payload storage for the ORAM tree.

The timing simulator only counts accesses; this module is the
*functional* memory image for deployments and end-to-end tests: a byte
array laid out exactly like the physical tree
(:class:`~repro.mem.layout.TreeLayout`), where every slot holds a
sealed 64B block -- ChaCha20-encrypted, MAC'd against its physical
address and write version, and covered by a bucket-granular Merkle
tree whose root stays on-chip (:mod:`repro.crypto`).

The Ring ORAM controller drives it through two calls:

- ``seal_slot(bucket, slot, plaintext)`` whenever a reshuffle (or a
  remote allocation) writes a slot;
- ``open_slot(bucket, slot)`` whenever a readPath/eviction consumes a
  slot whose plaintext matters (the real target, a green block, or a
  resident collected for eviction). Dummy reads are discarded
  unverified, exactly as a real controller discards them undecrypted.

Tamper anywhere -- payload bytes, a tag, a version, a Merkle digest --
and the next ``open_slot`` of an affected block raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crypto.engine import SecureBlockEngine
from repro.crypto.integrity import BucketMerkleTree, IntegrityError
from repro.mem.layout import TreeLayout
from repro.oram import tree as tree_mod
from repro.oram.config import OramConfig

import hashlib


@dataclass(frozen=True)
class SlotSnapshot:
    """One slot's off-chip state at a point in time.

    Everything an off-chip adversary can capture and later replay: the
    ciphertext, its MAC tag and the version it was sealed under. The
    on-chip trusted version counter is *not* part of the snapshot.
    """

    ciphertext: bytes
    tag: bytes
    version: int


def pad_block(value: bytes, block_bytes: int = 64) -> bytes:
    """Right-pad a payload to the block size (rejects oversize)."""
    if not isinstance(value, (bytes, bytearray)):
        raise TypeError(f"encrypted payloads must be bytes, got {type(value)}")
    if len(value) > block_bytes:
        raise ValueError(
            f"payload of {len(value)} bytes exceeds the {block_bytes}B block"
        )
    return bytes(value) + b"\x00" * (block_bytes - len(value))


class EncryptedTreeStore:
    """Sealed byte image of the ORAM data tree."""

    def __init__(
        self,
        cfg: OramConfig,
        master_key: bytes,
        seed: int = 0,
        with_integrity: bool = True,
    ) -> None:
        self.cfg = cfg
        self.layout = TreeLayout(cfg)
        self.engine = SecureBlockEngine(master_key)
        self._memory = bytearray(self.layout.data_bytes)
        self._version = np.zeros((cfg.n_buckets, cfg.z_max), dtype=np.uint32)
        self._tags: Dict[Tuple[int, int], bytes] = {}
        self.integrity: Optional[BucketMerkleTree] = (
            BucketMerkleTree(cfg.levels) if with_integrity else None
        )
        self._rng = np.random.default_rng(seed)
        self._sealed_buckets: Set[int] = set()
        self.seals = 0
        self.opens = 0

    # ------------------------------------------------------------- sealing

    def _offset(self, bucket: int, slot: int) -> int:
        return self.layout.data_addr(bucket, slot) - self.layout.base_addr

    def seal_slot(self, bucket: int, slot: int, plaintext: bytes) -> None:
        """Encrypt + authenticate one slot and update the Merkle path."""
        plaintext = pad_block(plaintext, self.cfg.block_bytes)
        addr = self.layout.data_addr(bucket, slot)
        version = int(self._version[bucket, slot]) + 1
        self._version[bucket, slot] = version
        ciphertext, tag = self.engine.seal(addr, version, plaintext)
        off = self._offset(bucket, slot)
        self._memory[off:off + self.cfg.block_bytes] = ciphertext
        self._tags[(bucket, slot)] = tag
        self._sealed_buckets.add(bucket)
        if self.integrity is not None:
            self.integrity.update_bucket(bucket, self._content_digest(bucket))
        self.seals += 1

    def _dummy_plaintext(self) -> bytes:
        """Fresh random filler for a dummy seal (dummies must look like
        data). Split out so wrappers can route dummy seals through their
        own ``seal_slot`` without perturbing the RNG stream."""
        return self._rng.integers(0, 256, self.cfg.block_bytes,
                                  dtype=np.uint8).tobytes()

    def seal_dummy(self, bucket: int, slot: int) -> None:
        """Seal fresh random bytes into a dummy slot."""
        self.seal_slot(bucket, slot, self._dummy_plaintext())

    def seal_many(
        self, items: Sequence[Tuple[int, int, Optional[bytes]]]
    ) -> None:
        """Seal a batch of slots in order; ``None`` payload means dummy.

        One reshuffle's write-back arrives as a single call instead of
        one ``seal_slot``/``seal_dummy`` per slot. Deliberately a plain
        in-order loop: the dummy-filler RNG draws, the per-slot version
        bumps, the Merkle updates and the ``seals`` counter must all
        land exactly as the scalar calls would, because fault campaigns
        and integrity counters pin that sequence.
        """
        for bucket, slot, plaintext in items:
            if plaintext is None:
                self.seal_dummy(bucket, slot)
            else:
                self.seal_slot(bucket, slot, plaintext)

    # ------------------------------------------------------------- opening

    def open_slot(self, bucket: int, slot: int) -> bytes:
        """Verify (MAC + Merkle) and decrypt one slot."""
        key = (bucket, slot)
        if key not in self._tags:
            raise KeyError(f"slot {key} was never sealed")
        if self.integrity is not None:
            # Recomputing the content digest from the (untrusted) tags
            # and versions just fetched catches dropped writes whose
            # stale tag still hangs off a consistent hash chain.
            self.integrity.verify_bucket(
                bucket, content_digest=self._content_digest(bucket)
            )
        addr = self.layout.data_addr(bucket, slot)
        off = self._offset(bucket, slot)
        ciphertext = bytes(self._memory[off:off + self.cfg.block_bytes])
        version = int(self._version[bucket, slot])
        self.opens += 1
        return self.engine.open(addr, version, ciphertext, self._tags[key])

    # ----------------------------------------------------------- integrity

    def _content_digest(self, bucket: int) -> bytes:
        """Digest of a bucket's tags + versions (Merkle leaf content)."""
        z = self.cfg.geometry[
            (bucket + 1).bit_length() - 1
        ].z_total
        h = hashlib.sha256()
        h.update(self._version[bucket, :z].tobytes())
        for s in range(z):
            h.update(self._tags.get((bucket, s), b"\x00" * 8))
        return h.digest()

    def verify_path(self, leaf: int) -> None:
        """Verify one path's buckets end to end (readPath prefetch check).

        For every sealed bucket on the path, the content digest is
        recomputed from the tags/versions currently in memory and
        checked against the Merkle tree's stored copy, then the whole
        hash chain is checked against the on-chip root. Never-sealed
        buckets only participate in the chain check (their stored
        content is the initialization sentinel).
        """
        if self.integrity is None:
            return
        for b in tree_mod.path_buckets(leaf, self.cfg.levels):
            if b in self._sealed_buckets:
                stored = self.integrity.stored_content(b)
                if stored != self._content_digest(b):
                    raise IntegrityError(
                        f"content digest mismatch at bucket {b}", bucket=b
                    )
        self.integrity.verify_path(leaf)

    # ---------------------------------------------------- snapshot/restore

    def snapshot_slot(self, bucket: int, slot: int) -> SlotSnapshot:
        """Capture a slot's off-chip state (what an adversary could keep)."""
        key = (bucket, slot)
        if key not in self._tags:
            raise KeyError(f"slot {key} was never sealed")
        return SlotSnapshot(
            ciphertext=self.raw_ciphertext(bucket, slot),
            tag=self._tags[key],
            version=int(self._version[bucket, slot]),
        )

    def restore_slot(
        self,
        bucket: int,
        slot: int,
        snap: SlotSnapshot,
        restore_version: bool = False,
        rehash: bool = False,
    ) -> None:
        """Adversarially write an old sealed triple back (attack hook).

        ``restore_version`` also rolls back the untrusted version word
        (a full replay); ``rehash`` additionally rebuilds the Merkle
        chain consistently -- everything an off-chip adversary controls.
        The on-chip root copy is never touched.
        """
        off = self._offset(bucket, slot)
        self._memory[off:off + self.cfg.block_bytes] = snap.ciphertext
        self._tags[(bucket, slot)] = snap.tag
        if restore_version:
            self._version[bucket, slot] = snap.version
        if rehash and self.integrity is not None:
            self.integrity.tamper_content(bucket, self._content_digest(bucket))
            self.integrity.tamper_rehash(bucket)

    # -------------------------------------------------------- attack hooks

    def tamper_payload(self, bucket: int, slot: int, flip_byte: int = 0) -> None:
        """Flip one ciphertext byte in memory (for tamper tests)."""
        off = self._offset(bucket, slot) + flip_byte
        self._memory[off] ^= 0xFF

    def tamper_version(self, bucket: int, slot: int) -> None:
        """Roll a slot's version back (replay attempt)."""
        self._version[bucket, slot] = max(0, int(self._version[bucket, slot]) - 1)

    def raw_ciphertext(self, bucket: int, slot: int) -> bytes:
        off = self._offset(bucket, slot)
        return bytes(self._memory[off:off + self.cfg.block_bytes])
