"""Encrypted, authenticated payload storage for the ORAM tree.

The timing simulator only counts accesses; this module is the
*functional* memory image for deployments and end-to-end tests: a byte
array laid out exactly like the physical tree
(:class:`~repro.mem.layout.TreeLayout`), where every slot holds a
sealed 64B block -- ChaCha20-encrypted, MAC'd against its physical
address and write version, and covered by a bucket-granular Merkle
tree whose root stays on-chip (:mod:`repro.crypto`).

The Ring ORAM controller drives it through two calls:

- ``seal_slot(bucket, slot, plaintext)`` whenever a reshuffle (or a
  remote allocation) writes a slot;
- ``open_slot(bucket, slot)`` whenever a readPath/eviction consumes a
  slot whose plaintext matters (the real target, a green block, or a
  resident collected for eviction). Dummy reads are discarded
  unverified, exactly as a real controller discards them undecrypted.

Tamper anywhere -- payload bytes, a tag, a version, a Merkle digest --
and the next ``open_slot`` of an affected block raises.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.crypto.engine import SecureBlockEngine
from repro.crypto.integrity import BucketMerkleTree
from repro.mem.layout import TreeLayout
from repro.oram.config import OramConfig

import hashlib


def pad_block(value: bytes, block_bytes: int = 64) -> bytes:
    """Right-pad a payload to the block size (rejects oversize)."""
    if not isinstance(value, (bytes, bytearray)):
        raise TypeError(f"encrypted payloads must be bytes, got {type(value)}")
    if len(value) > block_bytes:
        raise ValueError(
            f"payload of {len(value)} bytes exceeds the {block_bytes}B block"
        )
    return bytes(value) + b"\x00" * (block_bytes - len(value))


class EncryptedTreeStore:
    """Sealed byte image of the ORAM data tree."""

    def __init__(
        self,
        cfg: OramConfig,
        master_key: bytes,
        seed: int = 0,
        with_integrity: bool = True,
    ) -> None:
        self.cfg = cfg
        self.layout = TreeLayout(cfg)
        self.engine = SecureBlockEngine(master_key)
        self._memory = bytearray(self.layout.data_bytes)
        self._version = np.zeros((cfg.n_buckets, cfg.z_max), dtype=np.uint32)
        self._tags: Dict[Tuple[int, int], bytes] = {}
        self.integrity: Optional[BucketMerkleTree] = (
            BucketMerkleTree(cfg.levels) if with_integrity else None
        )
        self._rng = np.random.default_rng(seed)
        self.seals = 0
        self.opens = 0

    # ------------------------------------------------------------- sealing

    def _offset(self, bucket: int, slot: int) -> int:
        return self.layout.data_addr(bucket, slot) - self.layout.base_addr

    def seal_slot(self, bucket: int, slot: int, plaintext: bytes) -> None:
        """Encrypt + authenticate one slot and update the Merkle path."""
        plaintext = pad_block(plaintext, self.cfg.block_bytes)
        addr = self.layout.data_addr(bucket, slot)
        version = int(self._version[bucket, slot]) + 1
        self._version[bucket, slot] = version
        ciphertext, tag = self.engine.seal(addr, version, plaintext)
        off = self._offset(bucket, slot)
        self._memory[off:off + self.cfg.block_bytes] = ciphertext
        self._tags[(bucket, slot)] = tag
        if self.integrity is not None:
            self.integrity.update_bucket(bucket, self._content_digest(bucket))
        self.seals += 1

    def seal_dummy(self, bucket: int, slot: int) -> None:
        """Seal fresh random bytes (dummies must look like data)."""
        noise = self._rng.integers(0, 256, self.cfg.block_bytes,
                                   dtype=np.uint8).tobytes()
        self.seal_slot(bucket, slot, noise)

    # ------------------------------------------------------------- opening

    def open_slot(self, bucket: int, slot: int) -> bytes:
        """Verify (MAC + Merkle) and decrypt one slot."""
        key = (bucket, slot)
        if key not in self._tags:
            raise KeyError(f"slot {key} was never sealed")
        if self.integrity is not None:
            self.integrity.verify_bucket(bucket)
        addr = self.layout.data_addr(bucket, slot)
        off = self._offset(bucket, slot)
        ciphertext = bytes(self._memory[off:off + self.cfg.block_bytes])
        version = int(self._version[bucket, slot])
        self.opens += 1
        return self.engine.open(addr, version, ciphertext, self._tags[key])

    # ----------------------------------------------------------- integrity

    def _content_digest(self, bucket: int) -> bytes:
        """Digest of a bucket's tags + versions (Merkle leaf content)."""
        z = self.cfg.geometry[
            (bucket + 1).bit_length() - 1
        ].z_total
        h = hashlib.sha256()
        h.update(self._version[bucket, :z].tobytes())
        for s in range(z):
            h.update(self._tags.get((bucket, s), b"\x00" * 8))
        return h.digest()

    # -------------------------------------------------------- attack hooks

    def tamper_payload(self, bucket: int, slot: int, flip_byte: int = 0) -> None:
        """Flip one ciphertext byte in memory (for tamper tests)."""
        off = self._offset(bucket, slot) + flip_byte
        self._memory[off] ^= 0xFF

    def tamper_version(self, bucket: int, slot: int) -> None:
        """Roll a slot's version back (replay attempt)."""
        self._version[bucket, slot] = max(0, int(self._version[bucket, slot]) - 1)

    def raw_ciphertext(self, bucket: int, slot: int) -> bytes:
        off = self._offset(bucket, slot)
        return bytes(self._memory[off:off + self.cfg.block_bytes])
