"""Physical storage of the ORAM tree's buckets.

State is numpy-backed so that trees with millions of buckets stay
affordable: one row per bucket (padded to the widest level's ``Z``),
plus per-bucket counters and per-slot status/generation words.

Slot contents are encoded in a single int64:

- ``>= 0``: id of the real block stored in the slot;
- ``DUMMY`` (-1): a valid dummy block;
- ``CONSUMED`` (-2): the slot was read since the last refresh -- this is
  a *dead block* in the paper's vocabulary;
- ``UNALLOCATED`` (-3): padding column beyond this level's physical Z.

Slot status (AB-ORAM, Table I's 2-bit ``status`` field) tracks the
remote-allocation lifecycle. ``QUEUED`` and ``IN_USE`` both map onto the
paper's single ``ALLOCATED`` state; we keep them distinct because the
simulator must know whether a slot is merely parked in a DeadQ (its
owner may lazily reclaim it at reshuffle) or actively hosting another
bucket's data (its owner must skip it). Lazy reclamation is implemented
with per-slot generation counters: DeadQ entries snapshot the
generation, and a stale entry is discarded at dequeue time.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.oram.config import OramConfig

DUMMY = -1
CONSUMED = -2
UNALLOCATED = -3


class SlotStatus(enum.IntEnum):
    """Lifecycle of a physical slot under AB-ORAM."""

    REFRESHED = 0
    DEAD = 1
    QUEUED = 2   # paper: ALLOCATED (sitting in a DeadQ)
    IN_USE = 3   # paper: ALLOCATED (hosting a remote block)


# Plain ints for hot loops: enum attribute lookup costs a dict walk per
# access, which adds up at millions of slot scans per simulation.
ST_REFRESHED = int(SlotStatus.REFRESHED)
ST_DEAD = int(SlotStatus.DEAD)
ST_QUEUED = int(SlotStatus.QUEUED)
ST_IN_USE = int(SlotStatus.IN_USE)


class BucketStore:
    """All bucket state of one ORAM tree."""

    def __init__(self, cfg: OramConfig) -> None:
        self.cfg = cfg
        n = cfg.n_buckets
        zmax = cfg.z_max
        self.level_of_bucket = np.empty(n, dtype=np.uint8)
        self.z_of_bucket = np.empty(n, dtype=np.uint8)
        for lv in range(cfg.levels):
            lo = (1 << lv) - 1
            hi = (1 << (lv + 1)) - 1
            self.level_of_bucket[lo:hi] = lv
            self.z_of_bucket[lo:hi] = cfg.geometry[lv].z_total
        self.slots = np.full((n, zmax), UNALLOCATED, dtype=np.int64)
        for lv in range(cfg.levels):
            lo = (1 << lv) - 1
            hi = (1 << (lv + 1)) - 1
            self.slots[lo:hi, : cfg.geometry[lv].z_total] = DUMMY
        self.count = np.zeros(n, dtype=np.int32)
        # Sustain granted for the current round; starts at the
        # *unextended* value (extensions are only granted at reshuffles).
        self.sustain = np.empty(n, dtype=np.int32)
        for lv in range(cfg.levels):
            lo = (1 << lv) - 1
            hi = (1 << (lv + 1)) - 1
            self.sustain[lo:hi] = cfg.geometry[lv].sustain_unextended
        self.status = np.zeros((n, zmax), dtype=np.uint8)
        self.generation = np.zeros((n, zmax), dtype=np.uint32)
        self.reshuffles_by_level = np.zeros(cfg.levels, dtype=np.int64)
        # Memoized per-bucket slot-scan results (valid dummies, usable,
        # dead, real), invalidated whenever the bucket mutates. Scans
        # dominate readPath/warm-fill cost otherwise. Writers that poke
        # ``slots``/``status`` directly must go through ``set_slot`` /
        # ``set_status`` or call ``invalidate_bucket``.
        self._scan_cache: Dict[int, Dict[str, np.ndarray]] = {}
        # Plain-list mirrors of the (immutable) per-bucket geometry:
        # scalar numpy indexing boxes a fresh object per lookup, which
        # is measurable at one ``level()``/``z_phys()`` per slot touch.
        self._level_list: List[int] = self.level_of_bucket.tolist()
        self._z_list: List[int] = self.z_of_bucket.tolist()
        self._sustain_list: List[int] = [
            g.sustain_unextended for g in cfg.geometry
        ]
        # True once any slot has ever entered the remote-allocation
        # lifecycle (QUEUED / IN_USE). While False, every slot of every
        # bucket is usable at reshuffle and no DeadQ generation bumps
        # are needed, which lets ``refresh`` skip the status scans
        # entirely. Flipped by ``set_status`` and never cleared.
        self.has_lifecycle = False
        # Per-bucket tallies of QUEUED / IN_USE slots, maintained by
        # ``set_status``/``set_status_many``/``refresh`` (``consume``
        # only ever moves REFRESHED -> DEAD, so it never touches them).
        # They make "how many slots are ALLOCATED" an O(1) lookup and
        # let ``refresh`` keep its whole-bucket fast path for buckets
        # whose lifecycle state has drained back to zero. Plain lists:
        # scalar numpy indexing would box a fresh object per lookup.
        self.queued_count: List[int] = [0] * n
        self.in_use_count: List[int] = [0] * n
        # Per-bucket tally of DEAD slots (consumed, not yet queued or
        # reused), maintained by ``consume``/``refresh``/``set_status``/
        # ``set_status_many``/``queue_dead``. gatherDEADs checks it to
        # skip the dead-slot scan on the (common) buckets with nothing
        # to gather.
        self.dead_count: List[int] = [0] * n

    # ------------------------------------------------------------ geometry

    def level(self, bucket: int) -> int:
        return self._level_list[bucket]

    def z_phys(self, bucket: int) -> int:
        return self._z_list[bucket]

    def row(self, bucket: int) -> np.ndarray:
        """Physical slot contents of ``bucket`` (length = its Z)."""
        return self.slots[bucket, : self.z_of_bucket[bucket]]

    # ----------------------------------------------------------- scan cache

    def invalidate_bucket(self, bucket: int) -> None:
        """Drop memoized scans of ``bucket`` after a direct array write."""
        self._scan_cache.pop(bucket, None)

    def _cached(
        self, bucket: int, key: str
    ) -> Tuple[Dict[str, np.ndarray], "np.ndarray | None"]:
        c = self._scan_cache.get(bucket)
        if c is None:
            c = self._scan_cache[bucket] = {}
            return c, None
        return c, c.get(key)

    # ------------------------------------------------------------- queries

    def find_block(self, bucket: int, block: int) -> int:
        """Slot index of ``block`` in ``bucket``, or -1."""
        row = self.row(bucket)
        hits = np.nonzero(row == block)[0]
        return int(hits[0]) if hits.size else -1

    def valid_dummy_slots(self, bucket: int) -> np.ndarray:
        """Dummy slots the bucket itself may serve reads from.

        Slots rented to another bucket (IN_USE) or parked in a DeadQ
        (QUEUED) are excluded: the paper marks them ALLOCATED precisely
        so that "no one else will use" them. The result is memoized
        until the bucket next mutates; callers must not modify it.
        """
        c, hit = self._cached(bucket, "dummy")
        if hit is not None:
            return hit
        z = self._z_list[bucket]
        row = self.slots[bucket, :z]
        st = self.status[bucket, :z]
        res = ((row == DUMMY) & (st == ST_REFRESHED)).nonzero()[0]
        c["dummy"] = res
        return res

    def valid_real_slots(self, bucket: int) -> np.ndarray:
        c, hit = self._cached(bucket, "real")
        if hit is not None:
            return hit
        res = (self.row(bucket) >= 0).nonzero()[0]
        c["real"] = res
        return res

    def dead_slots(self, bucket: int) -> np.ndarray:
        """Slots whose status is DEAD (consumed, not yet queued/reused)."""
        c, hit = self._cached(bucket, "dead")
        if hit is not None:
            return hit
        z = self._z_list[bucket]
        res = (self.status[bucket, :z] == ST_DEAD).nonzero()[0]
        c["dead"] = res
        return res

    def real_count(self, bucket: int) -> int:
        return int(self.valid_real_slots(bucket).size)

    def resident_blocks(self, bucket: int) -> np.ndarray:
        """Real block ids stored in ``bucket``, in ascending slot order.

        The content-only companion of :meth:`valid_real_slots` for
        callers that never need the slot indices (reshuffle resident
        collection); skips the scan cache since its callers mutate the
        bucket right afterwards anyway.
        """
        row = self.slots[bucket, : self._z_list[bucket]]
        return row[row >= 0]

    def usable_slots(self, bucket: int) -> np.ndarray:
        """Slots this bucket may rewrite at reshuffle (not rented out)."""
        c, hit = self._cached(bucket, "usable")
        if hit is not None:
            return hit
        z = self._z_list[bucket]
        st = self.status[bucket, :z]
        res = (st != ST_IN_USE).nonzero()[0]
        c["usable"] = res
        return res

    # ------------------------------------------------------- batched queries

    def path_slot_views(self, buckets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Slot contents and statuses of a whole path at once.

        Returns ``(slots, status)`` as two ``(len(buckets), z_max)``
        arrays (fancy-index copies, so later mutation of the store does
        not affect them). Padding columns beyond a level's physical Z
        hold ``UNALLOCATED`` and status REFRESHED, so content-based
        masks (``== DUMMY``, ``>= 0``) need no extra Z masking.
        """
        return self.slots[buckets], self.status[buckets]

    # ------------------------------------------------------------- updates

    def consume(self, bucket: int, slot: int) -> int:
        """Read a slot: return its content, mark it consumed/dead."""
        if not 0 <= slot < self._z_list[bucket]:
            raise ValueError(
                f"slot {slot} out of range for bucket {bucket} "
                f"(Z={self._z_list[bucket]})"
            )
        # ``.item`` skips the numpy-scalar boxing of ``int(arr[i, j])``;
        # content < DUMMY covers exactly CONSUMED and UNALLOCATED.
        content = self.slots.item(bucket, slot)
        if content < DUMMY:
            raise RuntimeError(
                f"double consume of bucket {bucket} slot {slot} (={content})"
            )
        self.slots[bucket, slot] = CONSUMED
        # A consumable slot is always REFRESHED (DEAD/QUEUED slots hold
        # CONSUMED content and IN_USE slots are hidden from their host),
        # so this transition is unconditionally REFRESHED -> DEAD.
        self.status[bucket, slot] = ST_DEAD
        self.dead_count[bucket] += 1
        self.count[bucket] += 1
        self._scan_cache.pop(bucket, None)
        return content

    def consume_path(
        self, buckets: Sequence[int], slots: Sequence[int]
    ) -> None:
        """Batched :meth:`consume` over distinct buckets (one readPath).

        The caller picked each slot from a live snapshot of valid
        dummy/green candidates, so the double-consume and range guards
        of the scalar call cannot fire and the writes collapse to two
        fancy stores. Buckets are distinct (one per path level), so the
        per-bucket tallies are plain increments.
        """
        b_arr = np.asarray(buckets, dtype=np.int64)
        s_arr = np.asarray(slots, dtype=np.int64)
        self.slots[b_arr, s_arr] = CONSUMED
        self.status[b_arr, s_arr] = ST_DEAD
        self.count[b_arr] += 1
        dc = self.dead_count
        pop = self._scan_cache.pop
        for b in buckets:
            dc[b] += 1
            pop(b, None)

    def refresh(
        self,
        bucket: int,
        real_blocks: Sequence[int],
        granted_extension: int = 0,
    ) -> List[int]:
        """Rewrite ``bucket`` with ``real_blocks`` plus dummies.

        Every usable slot (not rented out via remote allocation) is
        rewritten; QUEUED slots are reclaimed by bumping their
        generation (their DeadQ entries turn stale). Returns the slot
        indices written. Caller guarantees
        ``len(real_blocks) <= z_real`` and that enough usable slots
        exist (checked here).
        """
        z = self._z_list[bucket]
        if not self.has_lifecycle:
            # No slot anywhere has ever been QUEUED/IN_USE, so every
            # slot is usable and there are no DeadQ generations to
            # bump: skip the status scans outright. This is the
            # steady-state path for ring/CB/NS configurations.
            if len(real_blocks) > z:
                raise RuntimeError(
                    f"bucket {bucket}: {len(real_blocks)} real blocks but "
                    f"only {z} usable slots"
                )
            row = self.slots[bucket]
            row[:z] = DUMMY
            for i, blk in enumerate(real_blocks):
                row[i] = blk
            self.status[bucket, :z] = ST_REFRESHED
            self.dead_count[bucket] = 0
            self.count[bucket] = 0
            self._scan_cache.pop(bucket, None)
            lvl = self._level_list[bucket]
            self.sustain[bucket] = (
                min(self._sustain_list[lvl], z) + granted_extension
            )
            self.reshuffles_by_level[lvl] += 1
            return list(range(z))
        if self.in_use_count[bucket] == 0:
            # Whole-bucket fast path, now independent of the global
            # ``has_lifecycle`` latch: as long as no slot of *this*
            # bucket is rented out, every slot is usable (QUEUED and
            # DEAD slots get rewritten), so the rewrite is contiguous
            # slice stores. Lifecycle transitions are unchanged --
            # QUEUED slots still take a generation bump (their DeadQ
            # entries turn stale) before going REFRESHED.
            if len(real_blocks) > z:
                raise RuntimeError(
                    f"bucket {bucket}: {len(real_blocks)} real blocks but only "
                    f"{z} usable slots"
                )
            st = self.status[bucket, :z]
            if self.queued_count[bucket]:
                queued = (st == ST_QUEUED).nonzero()[0]
                self.generation[bucket, queued] += 1
                self.queued_count[bucket] = 0
            row = self.slots[bucket]
            row[:z] = DUMMY
            for i, blk in enumerate(real_blocks):
                row[i] = blk
            st[:] = ST_REFRESHED
            written = list(range(z))
            n_usable = z
        else:
            usable = self.usable_slots(bucket)
            n_usable = int(usable.size)
            if len(real_blocks) > n_usable:
                raise RuntimeError(
                    f"bucket {bucket}: {len(real_blocks)} real blocks but only "
                    f"{n_usable} usable slots"
                )
            # Reclaim queued slots (lazy DeadQ invalidation). QUEUED
            # slots are never IN_USE, so they are all usable and the
            # bucket's queued tally drains to zero here.
            queued = usable[self.status[bucket, usable] == ST_QUEUED]
            if queued.size:
                self.generation[bucket, queued] += 1
                self.queued_count[bucket] -= int(queued.size)
            self.slots[bucket, usable] = DUMMY
            for i, blk in enumerate(real_blocks):
                self.slots[bucket, usable[i]] = blk
            self.status[bucket, usable] = ST_REFRESHED
            written = usable.tolist()
        # DEAD slots are never IN_USE, so every one of them was just
        # rewritten (on both branches above): the tally drains to zero.
        self.dead_count[bucket] = 0
        self.count[bucket] = 0
        self._scan_cache.pop(bucket, None)
        lvl = self._level_list[bucket]
        # Every sustained read consumes a distinct valid slot, so the
        # policy sustain (S + Y) is capped by the slots actually
        # refreshed; remote extension adds slots beyond the bucket.
        self.sustain[bucket] = (
            min(self._sustain_list[lvl], n_usable) + granted_extension
        )
        self.reshuffles_by_level[lvl] += 1
        return written

    def needs_reshuffle(self, bucket: int) -> bool:
        return self.count[bucket] >= self.sustain[bucket]

    def set_status(self, bucket: int, slot: int, status: SlotStatus) -> None:
        s = int(status)
        old = int(self.status[bucket, slot])
        if old != s:
            if old == ST_QUEUED:
                self.queued_count[bucket] -= 1
            elif old == ST_IN_USE:
                self.in_use_count[bucket] -= 1
            elif old == ST_DEAD:
                self.dead_count[bucket] -= 1
            if s == ST_QUEUED:
                self.queued_count[bucket] += 1
            elif s == ST_IN_USE:
                self.in_use_count[bucket] += 1
            elif s == ST_DEAD:
                self.dead_count[bucket] += 1
            self.status[bucket, slot] = s
        if s == ST_QUEUED or s == ST_IN_USE:
            self.has_lifecycle = True
        self._scan_cache.pop(bucket, None)

    def set_status_many(
        self, bucket: int, slots: np.ndarray, status: SlotStatus
    ) -> None:
        """Set ``status`` on several slots of one bucket at once.

        Equivalent to one :meth:`set_status` per slot; the per-bucket
        QUEUED/IN_USE tallies are adjusted from a single vectorized
        count of the previous statuses.
        """
        s = int(status)
        st = self.status[bucket]
        old = st[slots]
        nq = int((old == ST_QUEUED).sum())
        ni = int((old == ST_IN_USE).sum())
        nd = int((old == ST_DEAD).sum())
        if nq:
            self.queued_count[bucket] -= nq
        if ni:
            self.in_use_count[bucket] -= ni
        if nd:
            self.dead_count[bucket] -= nd
        st[slots] = s
        n = len(slots)
        if s == ST_QUEUED:
            self.queued_count[bucket] += n
            self.has_lifecycle = True
        elif s == ST_IN_USE:
            self.in_use_count[bucket] += n
            self.has_lifecycle = True
        elif s == ST_DEAD:
            self.dead_count[bucket] += n
        self._scan_cache.pop(bucket, None)

    def queue_dead(self, bucket: int, slots: np.ndarray) -> None:
        """DEAD -> QUEUED for several slots of one bucket (gatherDEADs).

        Equivalent to :meth:`set_status_many` with status QUEUED when
        the caller guarantees every slot is currently DEAD (which
        gatherDEADs does: it takes them from :meth:`dead_slots`), so
        the previous-status scan collapses to counter arithmetic.
        """
        n = len(slots)
        self.status[bucket][slots] = ST_QUEUED
        self.dead_count[bucket] -= n
        self.queued_count[bucket] += n
        self.has_lifecycle = True
        self._scan_cache.pop(bucket, None)

    def get_status(self, bucket: int, slot: int) -> SlotStatus:
        return SlotStatus(int(self.status[bucket, slot]))

    def slot_generation(self, bucket: int, slot: int) -> int:
        return int(self.generation[bucket, slot])

    def set_slot(self, bucket: int, slot: int, value: int) -> None:
        """Write one slot's content directly (warm fill, remote hosting)."""
        self.slots[bucket, slot] = value
        self._scan_cache.pop(bucket, None)

    def write_dummy(self, bucket: int, slot: int) -> None:
        """Write a fresh dummy into a specific slot (remote allocation)."""
        self.slots[bucket, slot] = DUMMY
        self._scan_cache.pop(bucket, None)

    # --------------------------------------------------------- global scans

    def total_dead_slots(self) -> int:
        """Dead blocks in the whole tree (Fig. 2/3 metric).

        Counts consumed slots that have not been reused: status DEAD or
        QUEUED (queued slots still hold useless data until actually
        rented).
        """
        st = self.status
        return int(((st == SlotStatus.DEAD) | (st == SlotStatus.QUEUED)).sum())

    def dead_slots_by_level(self) -> np.ndarray:
        """Per-level dead-block census (Fig. 3)."""
        dead = (self.status == SlotStatus.DEAD) | (self.status == SlotStatus.QUEUED)
        per_bucket = dead.sum(axis=1)
        out = np.zeros(self.cfg.levels, dtype=np.int64)
        for lv in range(self.cfg.levels):
            lo = (1 << lv) - 1
            hi = (1 << (lv + 1)) - 1
            out[lv] = per_bucket[lo:hi].sum()
        return out

    def real_blocks_resident(self) -> np.ndarray:
        """Ids of every real block currently stored in the tree."""
        flat = self.slots.ravel()
        return flat[flat >= 0]
