"""Observer interface for ORAM controllers.

Controllers broadcast protocol events to attached observers; the
security attacker (:mod:`repro.core.security`) and the dead-block
analyses (:mod:`repro.analysis.deadblocks`) are implemented on top of
this. Subclass :class:`BaseObserver` and override what you need -- all
hooks default to no-ops.

Events:

- ``on_access_start(access_no)`` -- an online access begins.
- ``on_read_path(leaf, reads, target_bucket)`` -- a path was read;
  ``reads`` is the list of (bucket, slot, level, remote) tuples, where
  ``bucket`` is the *logical* bucket served (for a remote read the
  physical slot lives elsewhere).
- ``on_slot_dead(bucket, slot, level)`` -- a physical slot was consumed
  (it now holds useless data).
- ``on_slot_reclaimed(bucket, slot, level, how)`` -- a dead slot's
  space was reused: ``how`` is ``"reshuffle"`` (rewritten by its own
  bucket) or ``"remote"`` (rented to another bucket).
- ``on_slots_reclaimed(bucket, slots, level, how)`` -- the batched form
  of the above for one bucket's reshuffle, mirroring the batched sink
  calls (``data_access_block``/``data_access_many``) the controller
  already issues for the same event. The default implementation fans
  out to ``on_slot_reclaimed`` per slot in ascending order, so scalar
  observers keep working unchanged; hot observers may override it.
- ``on_reshuffle(bucket, level, kind)`` -- a bucket was rewritten.
- ``on_evict_path(leaf)`` -- an evictPath completed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class BaseObserver:
    """No-op implementation of every controller event hook."""

    def on_access_start(self, access_no: int) -> None:
        pass

    def on_read_path(
        self,
        leaf: int,
        reads: List[Tuple[int, int, int, bool]],
        target_bucket: int,
    ) -> None:
        pass

    def on_slot_dead(self, bucket: int, slot: int, level: int) -> None:
        pass

    def on_slot_reclaimed(
        self, bucket: int, slot: int, level: int, how: str
    ) -> None:
        pass

    def on_slots_reclaimed(
        self, bucket: int, slots: Sequence[int], level: int, how: str
    ) -> None:
        """Batched reclamation of several slots of one bucket.

        Semantically one :meth:`on_slot_reclaimed` per slot in order;
        the controller emits this coalesced form on the reshuffle path.
        """
        for slot in slots:
            self.on_slot_reclaimed(bucket, int(slot), level, how)

    def on_reshuffle(self, bucket: int, level: int, kind) -> None:
        pass

    def on_evict_path(self, leaf: int) -> None:
        pass
