"""Observer interface for ORAM controllers.

Controllers broadcast protocol events to attached observers; the
security attacker (:mod:`repro.core.security`) and the dead-block
analyses (:mod:`repro.analysis.deadblocks`) are implemented on top of
this. Subclass :class:`BaseObserver` and override what you need -- all
hooks default to no-ops.

Events:

- ``on_access_start(access_no)`` -- an online access begins.
- ``on_read_path(leaf, reads, target_bucket)`` -- a path was read;
  ``reads`` is the list of (bucket, slot, level, remote) tuples, where
  ``bucket`` is the *logical* bucket served (for a remote read the
  physical slot lives elsewhere).
- ``on_slot_dead(bucket, slot, level)`` -- a physical slot was consumed
  (it now holds useless data).
- ``on_slot_reclaimed(bucket, slot, level, how)`` -- a dead slot's
  space was reused: ``how`` is ``"reshuffle"`` (rewritten by its own
  bucket) or ``"remote"`` (rented to another bucket).
- ``on_reshuffle(bucket, level, kind)`` -- a bucket was rewritten.
- ``on_evict_path(leaf)`` -- an evictPath completed.
"""

from __future__ import annotations

from typing import List, Tuple


class BaseObserver:
    """No-op implementation of every controller event hook."""

    def on_access_start(self, access_no: int) -> None:
        pass

    def on_read_path(
        self,
        leaf: int,
        reads: List[Tuple[int, int, int, bool]],
        target_bucket: int,
    ) -> None:
        pass

    def on_slot_dead(self, bucket: int, slot: int, level: int) -> None:
        pass

    def on_slot_reclaimed(
        self, bucket: int, slot: int, level: int, how: str
    ) -> None:
        pass

    def on_reshuffle(self, bucket: int, level: int, kind) -> None:
        pass

    def on_evict_path(self, leaf: int) -> None:
        pass
