"""Binary-tree addressing for ORAM trees.

Buckets are numbered in *level order*: the root is bucket ``0``, the
buckets of level ``l`` occupy ids ``[2**l - 1, 2**(l+1) - 1)``. A path is
identified by its leaf index ``x`` in ``[0, 2**(L-1))``; the bucket of
level ``l`` on that path sits at in-level position ``x >> (L - 1 - l)``.

The module also implements the reverse-lexicographic eviction order used
by Ring ORAM's ``evictPath``: the g-th eviction targets the leaf whose
index is the bit-reversal of ``g mod 2**(L-1)``. This order maximizes
the spread between consecutive evictions and guarantees every path is
chosen exactly once per ``2**(L-1)`` evictions.
"""

from __future__ import annotations

from typing import Iterator, List


def bucket_id(level: int, position: int) -> int:
    """Level-order id of the bucket at ``(level, position)``."""
    if level < 0:
        raise ValueError(f"negative level {level}")
    if not 0 <= position < (1 << level):
        raise ValueError(f"position {position} out of range for level {level}")
    return (1 << level) - 1 + position


def level_of(bucket: int) -> int:
    """Tree level of a level-order bucket id."""
    if bucket < 0:
        raise ValueError(f"negative bucket id {bucket}")
    return (bucket + 1).bit_length() - 1


def position_of(bucket: int) -> int:
    """In-level position of a level-order bucket id."""
    lv = level_of(bucket)
    return bucket - ((1 << lv) - 1)


def parent_of(bucket: int) -> int:
    """Parent bucket id (the root has no parent)."""
    if bucket <= 0:
        raise ValueError("the root has no parent")
    return (bucket - 1) >> 1


def children_of(bucket: int) -> tuple:
    """The two child bucket ids."""
    return (2 * bucket + 1, 2 * bucket + 2)


def path_buckets(leaf: int, levels: int) -> List[int]:
    """Bucket ids on the path of ``leaf``, root first (length ``levels``)."""
    if not 0 <= leaf < (1 << (levels - 1)):
        raise ValueError(f"leaf {leaf} out of range for {levels} levels")
    return [
        (1 << lv) - 1 + (leaf >> (levels - 1 - lv))
        for lv in range(levels)
    ]


def bucket_on_path(bucket: int, leaf: int, levels: int) -> bool:
    """True iff ``bucket`` lies on the path of ``leaf``."""
    lv = level_of(bucket)
    if lv >= levels:
        return False
    return position_of(bucket) == (leaf >> (levels - 1 - lv))


def intersection_level(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Deepest level shared by the paths of two leaves.

    Equals ``levels - 1`` when the leaves coincide and ``0`` when the
    paths diverge immediately below the root.
    """
    if leaf_a == leaf_b:
        return levels - 1
    diverge = (leaf_a ^ leaf_b).bit_length()  # bits below divergence point
    return (levels - 1) - diverge


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def reverse_lexicographic_leaf(counter: int, levels: int) -> int:
    """Leaf targeted by the ``counter``-th evictPath.

    Ring ORAM picks eviction paths in reverse-lexicographic order of the
    leaf bits; consecutive evictions therefore alternate tree halves and
    every window of ``2**(L-1)`` evictions covers every path once.
    """
    bits = levels - 1
    if bits == 0:
        return 0
    return bit_reverse(counter % (1 << bits), bits)


def reverse_lexicographic_order(levels: int) -> Iterator[int]:
    """Yield one full round of eviction leaves (all paths, each once)."""
    for g in range(1 << (levels - 1)):
        yield reverse_lexicographic_leaf(g, levels)


def deepest_common_bucket(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Deepest bucket common to both leaves' paths."""
    lv = intersection_level(leaf_a, leaf_b, levels)
    return bucket_id(lv, leaf_a >> (levels - 1 - lv))
