"""Ring/Path ORAM substrate.

This package implements the ORAM machinery that AB-ORAM (the paper's
contribution, in :mod:`repro.core`) builds on:

- :mod:`repro.oram.config` -- tree geometry and protocol parameters,
  including per-level (non-uniform) bucket shapes.
- :mod:`repro.oram.tree` -- level-order bucket addressing, path
  enumeration, and the reverse-lexicographic eviction order.
- :mod:`repro.oram.bucket` -- numpy-backed storage for every bucket's
  slots, access counters, and per-slot status/generation words.
- :mod:`repro.oram.stash` / :mod:`repro.oram.position_map` -- the
  on-chip ORAM controller state.
- :mod:`repro.oram.metadata` -- the bucket-metadata bit budget of the
  paper's Table I (Ring ORAM vs. AB-ORAM fields).
- :mod:`repro.oram.ring` -- the Ring ORAM controller (readPath,
  evictPath, earlyReshuffle, background eviction, treetop cache) with
  Bucket Compaction (CB) overlap integrated.
- :mod:`repro.oram.path` -- a classic Path ORAM controller, kept as the
  substrate Ring ORAM historically builds on and as a comparator.
"""

from repro.oram.config import BucketGeometry, OramConfig
from repro.oram.stash import Stash, StashOverflowError
from repro.oram.position_map import PositionMap
from repro.oram.bucket import BucketStore, SlotStatus
from repro.oram.ring import RingOram
from repro.oram.path import PathOram
from repro.oram.plb import RecursivePosMap
from repro.oram.datastore import EncryptedTreeStore
from repro.oram.validate import assert_sound, diagnose
from repro.oram.linear import LinearScanOram
from repro.oram.config_io import load_config, save_config

__all__ = [
    "LinearScanOram",
    "load_config",
    "save_config",
    "RecursivePosMap",
    "EncryptedTreeStore",
    "assert_sound",
    "diagnose",
    "BucketGeometry",
    "OramConfig",
    "Stash",
    "StashOverflowError",
    "PositionMap",
    "BucketStore",
    "SlotStatus",
    "RingOram",
    "PathOram",
]
