"""Robustness policy for the secure data path.

:class:`RobustnessConfig` is the single knob block that turns the
dormant integrity machinery into an *active* recovery ladder (see
docs/robustness.md):

1. **Bounded retry with exponential backoff** for transient backend
   faults (:class:`TransientBackendError`). Each retry charges
   ``backoff_base_ns * backoff_factor ** (attempt - 1)`` of stall time
   to the current protocol operation.
2. **Quarantine-and-rebuild** for persistent corruption: a bucket whose
   slot fails MAC or Merkle verification is quarantined and force-
   reshuffled during the next maintenance window; interim reads of its
   blocks are served from the stash payload cache when possible.

The config is deliberately a frozen dataclass: it is embedded in
simulation results and campaign reports, and a run's policy must not
drift mid-flight.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


class TransientBackendError(RuntimeError):
    """The backend is momentarily unavailable; the access may be retried."""


@dataclass(frozen=True)
class RobustnessConfig:
    """Recovery policy for one ORAM instance.

    ``integrity``     -- build the bucket Merkle tree and verify on open;
    ``verify_paths``  -- additionally verify the whole path's hash chain
                         after every readPath metadata fetch (catches
                         dropped writes on slots the access never opens);
    ``retry_budget``  -- transient-fault retries per open before the
                         fault is escalated to quarantine;
    ``backoff_base_ns`` / ``backoff_factor`` -- exponential backoff
                         charged to the operation's timing;
    ``quarantine``    -- enable quarantine-and-rebuild; when off, every
                         persistent fault is counted unrecovered.
    """

    integrity: bool = False
    verify_paths: bool = True
    retry_budget: int = 3
    backoff_base_ns: float = 200.0
    backoff_factor: float = 2.0
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.backoff_base_ns < 0:
            raise ValueError("backoff_base_ns must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RobustnessConfig":
        return cls(**data)
