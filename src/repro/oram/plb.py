"""Recursive position map + PLB model (Freecursive-ORAM style).

The paper's Table III provisions a 512KB on-chip PosMap and a 64KB PLB.
At the paper's scale (41.9M protected blocks, ~3B per mapping) the full
position map is >120MB -- far beyond 512KB -- so, as in the secure
processor literature the configuration is drawn from (Freecursive
ORAM), the map is stored *recursively*: position-map level PM0 packs
``fanout`` mappings per 64B block, PM1 maps PM0's blocks, and so on
until a level fits on-chip. A Position-map Lookaside Buffer (PLB)
caches recently used PM blocks; each PLB miss costs one extra full ORAM
access before the data access can start.

This module models exactly that cost structure:

- :class:`RecursivePosMap` computes the recursion depth from the block
  count and the on-chip capacity, keeps an LRU PLB over (level, index)
  PM blocks, and reports how many PM fetches an access to a given user
  block needs;
- the Ring controller (``posmap_mode="recursive"``) turns each fetch
  into a protocol-complete dummy path access attributed to the
  ``posMap`` operation class.

Leaving the default ``posmap_mode="onchip"`` reproduces the paper's
evaluation (which charges no PosMap traffic); the recursive mode is
used by the posmap ablation benchmark to show the AB-ORAM conclusions
survive position-map realism.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple


class RecursivePosMap:
    """Cost model of a recursive position map behind a PLB."""

    def __init__(
        self,
        n_blocks: int,
        plb_entries: int = 4096,
        fanout: int = 16,
        onchip_entries: int = 131072,
    ) -> None:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if plb_entries < 1:
            raise ValueError("plb_entries must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if onchip_entries < 1:
            raise ValueError("onchip_entries must be >= 1")
        self.n_blocks = n_blocks
        self.fanout = fanout
        self.onchip_entries = onchip_entries
        self.plb_entries = plb_entries
        # PM level k holds ceil(n / fanout^(k+1)) blocks of mappings for
        # level k-1 (PM0 maps user blocks). Recursion stops once a
        # level's *entries* fit on-chip.
        self.depth = 0
        entries = n_blocks
        while entries > onchip_entries:
            self.depth += 1
            entries = (entries + fanout - 1) // fanout
        self._plb: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.accesses = 0

    @property
    def is_flat(self) -> bool:
        """True when the whole map fits on-chip (no recursion)."""
        return self.depth == 0

    def _touch(self, key: Tuple[int, int]) -> bool:
        """LRU lookup+insert; returns True on hit."""
        if key in self._plb:
            self._plb.move_to_end(key)
            return True
        self._plb[key] = None
        if len(self._plb) > self.plb_entries:
            self._plb.popitem(last=False)
        return False

    def access(self, block: int) -> int:
        """PM-block fetches needed before ``block``'s leaf is known.

        Walks PM0 upward; the first PLB hit (or the on-chip root level)
        ends the walk -- levels above a cached block are implied by it,
        which is the PLB's point. Fetched blocks enter the PLB.
        """
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range")
        self.accesses += 1
        needed: List[Tuple[int, int]] = []
        index = block
        for level in range(self.depth):
            index //= self.fanout
            needed.append((level, index))
        fetches = 0
        # Search nearest-first: if PM0's block is cached we're done.
        miss_run: List[Tuple[int, int]] = []
        for key in needed:
            if self._touch(key):
                self.hits += 1
                break
            miss_run.append(key)
        fetches = len(miss_run)
        self.misses += fetches
        return fetches

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "depth": self.depth,
            "plb_entries": self.plb_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
