"""Configuration doctor: catch unsound ORAM configurations early.

A Ring ORAM configuration can be subtly broken in ways that only
surface as protocol errors deep into a run (a bucket with no readable
slot) or as silent performance cliffs (a stash threshold that forces a
dummy access per request). ``diagnose`` inspects an
:class:`~repro.oram.config.OramConfig` and returns a list of findings;
``assert_sound`` raises on any ERROR-severity finding. Wired into the
CLI as ``python -m repro doctor``.

Checks implemented (each encodes an invariant discussed in DESIGN.md
or the paper):

- every level sustains at least one read without an extension
  (section VI-B: "each bucket contains at least one dummy slot");
- Z' never shrinks below what the protected-block density requires;
- remote extensions only on DeadQ-tracked levels (and vice versa);
- stash threshold leaves headroom for a path worth of transit blocks;
- AB metadata still fits the per-bucket metadata block budget;
- DeadQ capacity is sane relative to the tracked levels' demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.oram.config import OramConfig
from repro.oram.metadata import ab_metadata_fields, metadata_bytes
from repro.oram.recovery import RobustnessConfig

#: Runs at least this long with integrity enabled should checkpoint:
#: a single late fault otherwise throws away the whole sweep.
LONG_RUN_REQUESTS = 10_000

ERROR = "ERROR"
WARNING = "WARNING"
INFO = "INFO"


@dataclass(frozen=True)
class Finding:
    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


class UnsoundConfigError(ValueError):
    """Raised by :func:`assert_sound` when ERROR findings exist."""


def diagnose(cfg: OramConfig) -> List[Finding]:
    """Inspect ``cfg`` and return all findings (possibly empty)."""
    findings: List[Finding] = []

    # --- per-level protocol soundness
    for lv, g in enumerate(cfg.geometry):
        if g.sustain_unextended < 1:
            findings.append(Finding(
                ERROR, "sustain-zero",
                f"level {lv}: S + Y = {g.sustain_unextended}; a bucket "
                f"could be unreadable when no extension is granted",
            ))
        if g.remote_extension > 0 and lv not in cfg.deadq_levels:
            findings.append(Finding(
                ERROR, "extension-untracked",
                f"level {lv} requests an S extension but has no DeadQ",
            ))
        if g.overlap > 0 and g.overlap == g.z_real:
            findings.append(Finding(
                WARNING, "overlap-full",
                f"level {lv}: Y = Z' = {g.overlap}; every real block can "
                f"be greened into the stash within one round",
            ))

    for lv in cfg.deadq_levels:
        if cfg.geometry[lv].remote_extension == 0:
            findings.append(Finding(
                WARNING, "deadq-unused",
                f"level {lv} is DeadQ-tracked but never rents "
                f"(remote_extension = 0)",
            ))

    # --- capacity pressure
    density = cfg.n_real_blocks / cfg.total_slots
    if density > cfg.utilization * 1.25:
        findings.append(Finding(
            ERROR, "overfull",
            f"{cfg.n_real_blocks} protected blocks in {cfg.total_slots} "
            f"slots ({density:.0%}); stash divergence likely",
        ))
    z_real_capacity = sum(
        cfg.buckets_at(lv) * g.z_real for lv, g in enumerate(cfg.geometry)
    )
    if cfg.n_real_blocks > 0.8 * z_real_capacity:
        findings.append(Finding(
            ERROR, "zreal-overfull",
            f"protected blocks exceed 80% of Z' capacity "
            f"({cfg.n_real_blocks}/{z_real_capacity})",
        ))

    # --- stash sizing
    transit = cfg.levels * max(g.z_real for g in cfg.geometry)
    if cfg.background_evict_threshold + transit > cfg.stash_capacity:
        findings.append(Finding(
            WARNING, "stash-headroom",
            f"threshold {cfg.background_evict_threshold} + one path of "
            f"transit blocks ({transit}) exceeds capacity "
            f"{cfg.stash_capacity}; overflow possible during evictPath",
        ))

    # --- metadata budget
    if cfg.deadq_levels or any(g.remote_extension for g in cfg.geometry):
        ab_bytes = metadata_bytes(ab_metadata_fields(cfg))
        if ab_bytes > cfg.block_bytes:
            findings.append(Finding(
                WARNING, "metadata-overflow",
                f"AB metadata is {ab_bytes}B > one {cfg.block_bytes}B "
                f"block; metadata accesses double",
            ))

    # --- DeadQ sizing
    if cfg.deadq_levels:
        smallest_level = min(cfg.deadq_levels)
        buckets = cfg.buckets_at(smallest_level)
        if cfg.deadq_capacity < 2 * max(
            g.remote_extension for g in cfg.geometry
        ):
            findings.append(Finding(
                WARNING, "deadq-tiny",
                f"DeadQ capacity {cfg.deadq_capacity} cannot hold two "
                f"extensions' worth of entries",
            ))
        findings.append(Finding(
            INFO, "deadq-pressure",
            f"DeadQ holds {cfg.deadq_capacity} entries per level; the "
            f"smallest tracked level has {buckets} buckets "
            f"({cfg.deadq_capacity / buckets:.2f} entries/bucket)",
        ))

    return findings


def diagnose_robustness(
    robustness: Optional[RobustnessConfig],
    n_requests: Optional[int] = None,
    checkpoint_every: int = 0,
    faults_enabled: bool = False,
) -> List[Finding]:
    """Inspect a robustness policy in the context of one run.

    ``n_requests`` and ``checkpoint_every`` describe the run the policy
    will govern; ``faults_enabled`` says whether a fault plan with
    non-zero rates is attached.
    """
    findings: List[Finding] = []
    if robustness is None:
        if faults_enabled:
            findings.append(Finding(
                ERROR, "faults-unguarded",
                "a fault plan is attached but no robustness policy is "
                "configured; injected faults would crash the run",
            ))
        return findings

    if faults_enabled and robustness.retry_budget == 0:
        if robustness.quarantine:
            findings.append(Finding(
                WARNING, "retry-zero",
                "retry budget is 0 with faults enabled; every transient "
                "outage escalates straight to quarantine-and-rebuild",
            ))
        else:
            findings.append(Finding(
                ERROR, "no-recovery",
                "retry budget is 0 and quarantine is disabled with "
                "faults enabled; every fault is unrecoverable",
            ))
    elif faults_enabled and not robustness.quarantine:
        findings.append(Finding(
            WARNING, "quarantine-off",
            "quarantine is disabled; persistent corruption is detected "
            "but never repaired (counted unrecovered)",
        ))

    if faults_enabled and not robustness.integrity:
        findings.append(Finding(
            WARNING, "faults-without-integrity",
            "faults are enabled without the integrity tree; replayed "
            "slots will be accepted undetected",
        ))

    if robustness.retry_budget > 0 and robustness.backoff_base_ns <= 0:
        findings.append(Finding(
            WARNING, "backoff-zero",
            "retries are enabled with zero backoff; retry storms are "
            "free in simulated time, hiding their real cost",
        ))

    if (robustness.integrity and n_requests is not None
            and n_requests >= LONG_RUN_REQUESTS and checkpoint_every <= 0):
        findings.append(Finding(
            WARNING, "integrity-no-checkpoint",
            f"integrity verification on a {n_requests}-request run "
            f"without checkpointing; use --checkpoint-every so a late "
            f"fault cannot discard the whole run",
        ))

    return findings


def assert_sound(cfg: OramConfig) -> List[Finding]:
    """Raise :class:`UnsoundConfigError` on ERROR findings; return all."""
    findings = diagnose(cfg)
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        raise UnsoundConfigError(
            "; ".join(str(f) for f in errors)
        )
    return findings
