"""Operation accounting shared by all ORAM controllers.

Controllers narrate their memory behaviour to a *sink*: every operation
(readPath, evictPath, earlyReshuffle, background-eviction dummy work) is
bracketed by ``begin_op``/``end_op`` and every block or metadata touch
inside it is reported with its tree coordinates. Sinks decide what to do
with that stream:

- :class:`CountingSink` tallies counts (used by unit tests and the
  analytic figures);
- ``repro.sim.engine.DramSink`` forwards off-chip touches to the DRAM
  timing model to produce execution times.

Accesses to treetop-cached levels are reported with ``onchip=True`` so
sinks can exclude them from memory traffic while analyses can still see
them.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: One batched data touch: (bucket, slot, level, onchip, remote).
DataItem = Tuple[int, int, int, bool, bool]
#: One batched metadata touch: (bucket, level, onchip).
MetaItem = Tuple[int, int, bool]


class OpKind(enum.Enum):
    """Protocol operation classes (the paper's Fig. 8c breakdown)."""

    READ_PATH = "readPath"
    EVICT_PATH = "evictPath"
    EARLY_RESHUFFLE = "earlyReshuffle"
    BACKGROUND = "background"
    POSMAP = "posMap"
    RECOVERY = "recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemorySink:
    """Interface controllers talk to. Base implementation counts nothing
    but still enforces operation bracketing: a nested ``begin_op`` or an
    ``end_op`` without a matching ``begin_op`` is a controller bug every
    sink must surface, not just the counting ones.
    """

    _op_kind: Optional[OpKind] = None

    def begin_op(self, kind: OpKind) -> None:
        """An operation of class ``kind`` starts."""
        if self._op_kind is not None:
            raise RuntimeError(
                f"nested operation: {kind} inside {self._op_kind}"
            )
        self._op_kind = kind

    def data_access(
        self,
        bucket: int,
        slot: int,
        level: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        """One data-block touch at ``(bucket, slot)``."""

    def metadata_access(
        self,
        bucket: int,
        level: int,
        write: bool,
        onchip: bool = False,
        blocks: int = 1,
    ) -> None:
        """One bucket-metadata touch (``blocks`` 64B units)."""

    def data_access_many(self, items: Sequence[DataItem], write: bool) -> None:
        """Batched data touches sharing one direction and protocol phase.

        Semantically identical to calling :meth:`data_access` once per
        item in order; the batch exists so hot sinks can amortize
        per-call overhead. Subclasses may override; the default simply
        loops.
        """
        for bucket, slot, level, onchip, remote in items:
            self.data_access(bucket, slot, level, write,
                             onchip=onchip, remote=remote)

    def data_access_repeat(
        self,
        bucket: int,
        slot: int,
        level: int,
        count: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        """``count`` identical data touches of one slot (reshuffle read
        phases report Z' reads against slot 0). Equivalent to calling
        :meth:`data_access` ``count`` times; hot sinks override to
        compute the address and phase transition once.
        """
        for _ in range(count):
            self.data_access(bucket, slot, level, write,
                             onchip=onchip, remote=remote)

    def data_access_block(
        self,
        bucket: int,
        slots: Sequence[int],
        level: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        """Batched data touches of several slots of *one* bucket
        (reshuffle write-back). Equivalent to one :meth:`data_access`
        per slot in order; overrides hoist the per-bucket address base.
        """
        for slot in slots:
            self.data_access(bucket, slot, level, write,
                             onchip=onchip, remote=remote)

    def metadata_access_many(
        self, items: Sequence[MetaItem], write: bool, blocks: int = 1
    ) -> None:
        """Batched metadata touches (one whole path at a time)."""
        for bucket, level, onchip in items:
            self.metadata_access(bucket, level, write,
                                 onchip=onchip, blocks=blocks)

    def stall(self, ns: float) -> None:
        """Charge ``ns`` of controller stall time (retry backoff) to the
        current operation. Counting sinks ignore it; timing sinks extend
        the operation's completion time."""

    def end_op(self) -> None:
        """The current operation finished."""
        if self._op_kind is None:
            raise RuntimeError("end_op without begin_op")
        self._op_kind = None


@dataclass
class RobustnessCounters:
    """Detection/recovery event tallies (the recovery ladder's ledger).

    Owned by the controller, surfaced through ``SimResult.robustness``
    and the fault-campaign report. ``recovered`` counts quarantined
    buckets whose forced rebuild completed; ``transient_recovered``
    counts opens that succeeded after at least one retry.
    """

    transient_faults: int = 0
    retries: int = 0
    transient_recovered: int = 0
    retry_exhausted: int = 0
    auth_failures: int = 0
    integrity_failures: int = 0
    quarantines: int = 0
    rebuilds: int = 0
    recovered: int = 0
    unrecovered: int = 0
    payload_resets: int = 0
    stash_served_reads: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)

    @property
    def detections(self) -> int:
        """All fault detections, transient or persistent."""
        return (self.transient_faults + self.auth_failures
                + self.integrity_failures)


@dataclass
class OpCounters:
    """Access tallies for one operation class."""

    ops: int = 0
    data_reads: int = 0
    data_writes: int = 0
    meta_reads: int = 0
    meta_writes: int = 0
    onchip_accesses: int = 0
    remote_accesses: int = 0

    @property
    def offchip_accesses(self) -> int:
        return self.data_reads + self.data_writes + self.meta_reads + self.meta_writes


class CountingSink(MemorySink):
    """Tally sink: counts per operation class and per tree level."""

    def __init__(self, levels: int) -> None:
        self.levels = levels
        self.by_kind: Dict[OpKind, OpCounters] = {k: OpCounters() for k in OpKind}
        self.data_reads_by_level = np.zeros(levels, dtype=np.int64)
        self.data_writes_by_level = np.zeros(levels, dtype=np.int64)
        self._current: Optional[OpKind] = None
        self._cur_counters: Optional[OpCounters] = None
        self.unattributed_accesses = 0

    def reset(self) -> None:
        """Zero all counters (e.g. at the end of a warm-up phase)."""
        self.by_kind = {k: OpCounters() for k in OpKind}
        self.data_reads_by_level[:] = 0
        self.data_writes_by_level[:] = 0
        self.unattributed_accesses = 0
        if self._current is not None:
            self._cur_counters = self.by_kind[self._current]

    def begin_op(self, kind: OpKind) -> None:
        if self._current is not None:
            raise RuntimeError(f"nested operation: {kind} inside {self._current}")
        self._current = kind
        c = self.by_kind[kind]
        c.ops += 1
        # Cached so per-access paths skip the enum-keyed dict lookup.
        self._cur_counters = c

    def _counters(self) -> OpCounters:
        c = self._cur_counters
        if c is None:
            # Tolerate stray accesses (e.g. initialization fill) but flag them.
            self.unattributed_accesses += 1
            return OpCounters()
        return c

    def data_access(
        self,
        bucket: int,
        slot: int,
        level: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        c = self._counters()
        if onchip:
            c.onchip_accesses += 1
            return
        if remote:
            c.remote_accesses += 1
        if write:
            c.data_writes += 1
            self.data_writes_by_level[level] += 1
        else:
            c.data_reads += 1
            self.data_reads_by_level[level] += 1

    def metadata_access(
        self,
        bucket: int,
        level: int,
        write: bool,
        onchip: bool = False,
        blocks: int = 1,
    ) -> None:
        c = self._counters()
        if onchip:
            c.onchip_accesses += blocks
            return
        if write:
            c.meta_writes += blocks
        else:
            c.meta_reads += blocks

    def data_access_many(self, items: Sequence[DataItem], write: bool) -> None:
        c = self._cur_counters
        if c is None:
            self.unattributed_accesses += len(items)
            return
        by_level = self.data_writes_by_level if write else self.data_reads_by_level
        n = 0
        for _bucket, _slot, level, onchip, remote in items:
            if onchip:
                c.onchip_accesses += 1
                continue
            if remote:
                c.remote_accesses += 1
            n += 1
            by_level[level] += 1
        if write:
            c.data_writes += n
        else:
            c.data_reads += n

    def data_access_repeat(
        self,
        bucket: int,
        slot: int,
        level: int,
        count: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        c = self._cur_counters
        if c is None:
            self.unattributed_accesses += count
            return
        if onchip:
            c.onchip_accesses += count
            return
        if remote:
            c.remote_accesses += count
        if write:
            c.data_writes += count
            self.data_writes_by_level[level] += count
        else:
            c.data_reads += count
            self.data_reads_by_level[level] += count

    def data_access_block(
        self,
        bucket: int,
        slots: Sequence[int],
        level: int,
        write: bool,
        onchip: bool = False,
        remote: bool = False,
    ) -> None:
        # Same-bucket/same-level batch: the tallies only depend on the
        # item count.
        self.data_access_repeat(bucket, 0, level, len(slots), write,
                                onchip=onchip, remote=remote)

    def metadata_access_many(
        self, items: Sequence[MetaItem], write: bool, blocks: int = 1
    ) -> None:
        c = self._cur_counters
        if c is None:
            self.unattributed_accesses += len(items)
            return
        n = 0
        for _bucket, _level, onchip in items:
            if onchip:
                c.onchip_accesses += blocks
            else:
                n += blocks
        if write:
            c.meta_writes += n
        else:
            c.meta_reads += n

    def end_op(self) -> None:
        if self._current is None:
            raise RuntimeError("end_op without begin_op")
        self._current = None
        self._cur_counters = None

    # ------------------------------------------------------------- queries

    def total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self.by_kind.values())

    @property
    def total_offchip(self) -> int:
        return sum(c.offchip_accesses for c in self.by_kind.values())

    @property
    def total_bytes(self) -> int:
        """Off-chip traffic assuming 64B per access unit."""
        return self.total_offchip * 64

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {
            str(kind): {
                "ops": c.ops,
                "data_reads": c.data_reads,
                "data_writes": c.data_writes,
                "meta_reads": c.meta_reads,
                "meta_writes": c.meta_writes,
                "remote": c.remote_accesses,
                "onchip": c.onchip_accesses,
            }
            for kind, c in self.by_kind.items()
        }


class TeeSink(MemorySink):
    """Fan a controller's access stream out to several sinks."""

    def __init__(self, *sinks: MemorySink) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = list(sinks)
        self._current: Optional[OpKind] = None

    def begin_op(self, kind: OpKind) -> None:
        if self._current is not None:
            raise RuntimeError(
                f"nested operation: {kind} inside {self._current}"
            )
        self._current = kind
        for s in self.sinks:
            s.begin_op(kind)

    def data_access(self, bucket, slot, level, write, onchip=False, remote=False):
        for s in self.sinks:
            s.data_access(bucket, slot, level, write, onchip=onchip, remote=remote)

    def metadata_access(self, bucket, level, write, onchip=False, blocks=1):
        for s in self.sinks:
            s.metadata_access(bucket, level, write, onchip=onchip, blocks=blocks)

    def data_access_many(self, items, write):
        for s in self.sinks:
            s.data_access_many(items, write)

    def data_access_repeat(self, bucket, slot, level, count, write,
                           onchip=False, remote=False):
        for s in self.sinks:
            s.data_access_repeat(bucket, slot, level, count, write,
                                 onchip=onchip, remote=remote)

    def data_access_block(self, bucket, slots, level, write,
                          onchip=False, remote=False):
        for s in self.sinks:
            s.data_access_block(bucket, slots, level, write,
                                onchip=onchip, remote=remote)

    def metadata_access_many(self, items, write, blocks=1):
        for s in self.sinks:
            s.metadata_access_many(items, write, blocks=blocks)

    def stall(self, ns: float) -> None:
        for s in self.sinks:
            s.stall(ns)

    def end_op(self) -> None:
        if self._current is None:
            raise RuntimeError("end_op without begin_op")
        self._current = None
        for s in self.sinks:
            s.end_op()
