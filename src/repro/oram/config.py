"""ORAM tree geometry and protocol configuration.

Terminology follows the paper (and Ren et al.'s Ring ORAM):

- ``L`` (``levels``): number of tree levels. Level ``0`` is the root,
  level ``L - 1`` holds the leaves. A path therefore touches ``L``
  buckets and there are ``2**(L - 1)`` leaves.
- ``Z'`` (``z_real``): slots per bucket that may hold *real* blocks.
- ``S`` (``s_reserved``): physically allocated reserved-dummy slots.
- ``Z`` (``z_total``): physical slots per bucket, ``Z = Z' + S``.
- ``Y`` (``overlap``): Bucket Compaction overlap -- after the ``S``
  reserved dummies are consumed, up to ``Y`` additional reads are served
  from the ``Z'`` portion ("green" blocks; a real green block moves to
  the stash).
- ``r`` (``remote_extension``): AB-ORAM's runtime S-extension, granted by
  borrowing ``r`` dead slots from the level's DeadQ at reshuffle time.
- ``A`` (``evict_rate``): an ``evictPath`` runs after every ``A`` online
  accesses.

The *sustain* count of a bucket -- how many ``readPath`` hits it absorbs
between reshuffles -- is ``S + Y + r`` (see DESIGN.md section 5), capped
by the number of slots actually refreshable at reshuffle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BucketGeometry:
    """Shape of the buckets at one tree level.

    ``z_real`` is Z', ``s_reserved`` is the physically allocated S,
    ``overlap`` is the CB overlap Y, and ``remote_extension`` is the
    AB-ORAM extension ``r`` requested from the DeadQ at every reshuffle.
    """

    z_real: int
    s_reserved: int
    overlap: int = 0
    remote_extension: int = 0

    def __post_init__(self) -> None:
        if self.z_real < 1:
            raise ValueError(f"z_real must be >= 1, got {self.z_real}")
        if self.s_reserved < 0:
            raise ValueError(f"s_reserved must be >= 0, got {self.s_reserved}")
        if self.overlap < 0:
            raise ValueError(f"overlap must be >= 0, got {self.overlap}")
        if self.remote_extension < 0:
            raise ValueError(
                f"remote_extension must be >= 0, got {self.remote_extension}"
            )
        if self.overlap > self.z_real:
            # Greens are served out of the Z' portion; more than Z' of
            # them cannot exist within one reshuffle round.
            raise ValueError(
                f"overlap Y={self.overlap} cannot exceed z_real Z'={self.z_real}"
            )

    @property
    def z_total(self) -> int:
        """Physical slots per bucket (Z = Z' + S)."""
        return self.z_real + self.s_reserved

    @property
    def sustain(self) -> int:
        """readPath hits absorbed between reshuffles when extension succeeds."""
        return self.s_reserved + self.overlap + self.remote_extension

    @property
    def sustain_unextended(self) -> int:
        """Sustain when the DeadQ cannot grant the extension."""
        return self.s_reserved + self.overlap

    def shrunk(self, by: int) -> "BucketGeometry":
        """Return a copy with ``S`` reduced by ``by`` (floored at 0)."""
        return BucketGeometry(
            z_real=self.z_real,
            s_reserved=max(0, self.s_reserved - by),
            overlap=self.overlap,
            remote_extension=self.remote_extension,
        )


@dataclass
class OramConfig:
    """Complete configuration of one ORAM instance.

    ``geometry`` holds one :class:`BucketGeometry` per level (root
    first). ``n_real_blocks`` defaults to the paper's sizing rule:
    user data fills ``utilization`` (50%) of the Z' capacity of all
    buckets, ``(2**L - 1) * Z' * utilization`` -- computed from
    ``base_z_real`` so that non-uniform variants protect the same
    amount of user data as their baseline.
    """

    levels: int
    geometry: Tuple[BucketGeometry, ...]
    evict_rate: int = 5
    block_bytes: int = 64
    stash_capacity: int = 300
    background_evict_threshold: Optional[int] = None
    treetop_levels: int = 0
    deadq_capacity: int = 1000
    deadq_levels: Tuple[int, ...] = ()
    utilization: float = 0.5
    base_z_real: Optional[int] = None
    n_real_blocks: Optional[int] = None
    max_remote_slots: int = 6  # R in Table I
    name: str = "oram"

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        if len(self.geometry) != self.levels:
            raise ValueError(
                f"geometry must have one entry per level: "
                f"{len(self.geometry)} != {self.levels}"
            )
        if self.evict_rate < 1:
            raise ValueError(f"evict_rate must be >= 1, got {self.evict_rate}")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )
        if self.treetop_levels < 0 or self.treetop_levels >= self.levels:
            raise ValueError(
                f"treetop_levels must be in [0, levels), got {self.treetop_levels}"
            )
        if self.base_z_real is None:
            self.base_z_real = self.geometry[-1].z_real
        if self.n_real_blocks is None:
            # The paper's sizing rule: user data fills ``utilization``
            # (50%) of the Z' capacity of *all* buckets -- 2.5GB of an
            # 8GB tree at the typical setting, i.e. 31.25% utilization
            # for the CB baseline.
            self.n_real_blocks = int(
                self.n_buckets * self.base_z_real * self.utilization
            )
        if self.n_real_blocks < 1:
            raise ValueError("configuration protects zero blocks")
        if self.background_evict_threshold is None:
            # CB issues dummy accesses once the stash holds more than
            # ~2/3 of its capacity; evictPaths then drain it.
            self.background_evict_threshold = max(1, (2 * self.stash_capacity) // 3)
        bad = [lv for lv in self.deadq_levels if lv < 0 or lv >= self.levels]
        if bad:
            raise ValueError(f"deadq_levels out of range: {bad}")

    # ---------------------------------------------------------------- sizes

    @property
    def n_leaves(self) -> int:
        return 1 << (self.levels - 1)

    @property
    def n_buckets(self) -> int:
        return (1 << self.levels) - 1

    def buckets_at(self, level: int) -> int:
        """Number of buckets at ``level``."""
        self._check_level(level)
        return 1 << level

    def z_total_at(self, level: int) -> int:
        self._check_level(level)
        return self.geometry[level].z_total

    def z_real_at(self, level: int) -> int:
        self._check_level(level)
        return self.geometry[level].z_real

    @property
    def z_max(self) -> int:
        """Largest physical bucket across levels (array column count)."""
        return max(g.z_total for g in self.geometry)

    @property
    def total_slots(self) -> int:
        """Physical slots in the whole tree."""
        return sum(self.buckets_at(lv) * g.z_total for lv, g in enumerate(self.geometry))

    @property
    def tree_bytes(self) -> int:
        """Physical data bytes of the ORAM tree (excludes metadata)."""
        return self.total_slots * self.block_bytes

    @property
    def user_bytes(self) -> int:
        """Bytes of protected user data."""
        return self.n_real_blocks * self.block_bytes

    @property
    def space_utilization(self) -> float:
        """user data / ORAM tree size, the paper's utilization metric."""
        return self.user_bytes / self.tree_bytes

    # ------------------------------------------------------------- helpers

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} out of range [0, {self.levels})")

    def level_capacity_fraction(self, level: int) -> float:
        """Fraction of total tree bytes held by ``level``."""
        g = self.geometry[level]
        return self.buckets_at(level) * g.z_total / self.total_slots

    def describe(self) -> str:
        """Human-readable one-line-per-level geometry summary."""
        lines = [f"{self.name}: L={self.levels}, A={self.evict_rate}, "
                 f"N={self.n_real_blocks} blocks, tree={self.tree_bytes / 2**20:.1f} MiB, "
                 f"util={self.space_utilization:.1%}"]
        spans: List[Tuple[int, int, BucketGeometry]] = []
        for lv, g in enumerate(self.geometry):
            if spans and spans[-1][2] == g:
                spans[-1] = (spans[-1][0], lv, g)
            else:
                spans.append((lv, lv, g))
        for lo, hi, g in spans:
            rng = f"L{lo}" if lo == hi else f"L{lo}-L{hi}"
            lines.append(
                f"  {rng}: Z={g.z_total} (Z'={g.z_real}, S={g.s_reserved}, "
                f"Y={g.overlap}, r={g.remote_extension}) sustain={g.sustain}"
            )
        return "\n".join(lines)


def uniform_geometry(
    levels: int,
    z_real: int,
    s_reserved: int,
    overlap: int = 0,
    remote_extension: int = 0,
) -> Tuple[BucketGeometry, ...]:
    """Same bucket shape at every level."""
    g = BucketGeometry(z_real, s_reserved, overlap, remote_extension)
    return tuple([g] * levels)


def override_levels(
    geometry: Tuple[BucketGeometry, ...],
    overrides: Dict[int, BucketGeometry],
) -> Tuple[BucketGeometry, ...]:
    """Return ``geometry`` with specific levels replaced."""
    out = list(geometry)
    for level, g in overrides.items():
        if not 0 <= level < len(out):
            raise ValueError(f"override level {level} out of range")
        out[level] = g
    return tuple(out)


def scaled_treetop(levels: int, paper_levels: int = 24, paper_top: int = 10) -> int:
    """Scale the paper's 10-of-24 treetop cache to an ``levels``-deep tree."""
    return max(1, min(levels - 1, round(levels * paper_top / paper_levels)))


def bottom_range(levels: int, count: int) -> Tuple[int, ...]:
    """Indices of the bottom ``count`` levels (closest to the leaves)."""
    count = max(0, min(count, levels))
    return tuple(range(levels - count, levels))
