"""The Ring ORAM controller.

Implements the three protocol operations of Ren et al.'s Ring ORAM as
described in the paper's section III-B, with Bucket Compaction (Cao et
al., the paper's baseline) integrated:

- ``readPath`` (online): metadata pass over the path, then one block
  read per bucket -- the target block from the bucket that holds it, a
  valid dummy from every other bucket. When a bucket's dummies are
  exhausted the read returns a *green* block from the Z' portion (CB
  overlap); a real green block moves to the stash.
- ``evictPath`` (offline): after every ``A`` online accesses, reshuffle
  the path chosen by the reverse-lexicographic order.
- ``earlyReshuffle`` (offline): reshuffle any bucket that has absorbed
  its sustain count of reads.

Background eviction (from CB): while the stash occupancy exceeds the
configured threshold, dummy accesses are issued (they advance the
evictPath schedule and therefore drain the stash).

With AB-ORAM extensions attached (:class:`repro.core.remote
.RemoteAllocator`), a bucket at a DR level owns up to ``r`` additional
*remote* slots rented from dead blocks of its level. Reshuffles scatter
the bucket's contents uniformly over local + remote positions, so a
remote read (real or dummy) is indistinguishable from a local one; the
only observable difference is the redirected address -- which is public
by design.

The controller narrates every memory touch to a
:class:`~repro.oram.stats.MemorySink`; accesses to treetop-cached
levels are flagged on-chip.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.auth import AuthenticationError
from repro.crypto.integrity import IntegrityError
from repro.oram import tree as tree_mod
from repro.oram.bucket import (
    BucketStore, DUMMY, ST_DEAD, ST_QUEUED, ST_REFRESHED,
)
from repro.oram.config import OramConfig
from repro.oram.position_map import PositionMap
from repro.oram.plb import RecursivePosMap
from repro.oram.recovery import RobustnessConfig, TransientBackendError
from repro.oram.stash import Stash
from repro.oram.stats import (
    CountingSink, MemorySink, OpKind, RobustnessCounters,
)

# Safety valve: background eviction should drain the stash within a few
# evictPath rounds; this many dummy accesses in a single drain means the
# configuration is unsound.
_MAX_BACKGROUND_BURST = 2000


class ProtocolError(RuntimeError):
    """An invariant of the Ring ORAM protocol was violated."""


class RingOram:
    """A functional Ring ORAM instance over one configuration."""

    def __init__(
        self,
        cfg: OramConfig,
        sink: Optional[MemorySink] = None,
        seed: int = 0,
        extensions: Optional[Any] = None,
        observers: Sequence[Any] = (),
        store_data: bool = False,
        datastore: Optional[Any] = None,
        posmap_mode: str = "onchip",
        plb_entries: int = 4096,
        robustness: Optional[RobustnessConfig] = None,
    ) -> None:
        self.cfg = cfg
        self.sink = sink if sink is not None else CountingSink(cfg.levels)
        self.rng = np.random.default_rng(seed)
        self.store = BucketStore(cfg)
        self.stash = Stash(cfg.stash_capacity)
        self.posmap = PositionMap(cfg.n_real_blocks, cfg.n_leaves, self.rng)
        self.ext = extensions
        self.observers = list(observers)
        # Payload handling: `datastore` (an EncryptedTreeStore) routes
        # real byte payloads through the sealed memory image; plain
        # `store_data` keeps a convenience plaintext dict instead.
        self.datastore = datastore
        self._stash_payload: Dict[int, bytes] = {}
        self._data: Optional[Dict[int, Any]] = (
            {} if store_data and datastore is None else None
        )
        if posmap_mode not in ("onchip", "recursive"):
            raise ValueError(f"unknown posmap_mode {posmap_mode!r}")
        self.posmap_model: Optional[RecursivePosMap] = (
            RecursivePosMap(cfg.n_real_blocks, plb_entries=plb_entries)
            if posmap_mode == "recursive" else None
        )
        # Robustness: with a policy AND a datastore attached, crypto
        # failures are absorbed by the recovery ladder instead of
        # propagating (the historical behaviour, kept for plain runs).
        self.robustness = robustness
        self.robust = RobustnessCounters()
        self._recovery_active = robustness is not None and datastore is not None
        self._verify_paths = bool(
            self._recovery_active
            and robustness.integrity
            and robustness.verify_paths
            and getattr(datastore, "integrity", None) is not None
        )
        self._quarantined: Dict[int, None] = {}   # insertion-ordered set
        self._rebuilding: Optional[int] = None
        # Serving-layer hook: with deferral on, quarantined buckets are
        # NOT rebuilt in the next access's maintenance window -- they
        # accumulate until the driver calls ``flush_recovery()``. This
        # is what lets a serving layer run a *degraded mode* (answer
        # from the stash, journal writes) while scheduling the rebuild
        # on its own clock. Default off: recovery behaviour (and every
        # committed fault-campaign number) is unchanged.
        self.defer_rebuilds = False
        self.evict_counter = 0
        self._z_real_by_level = [g.z_real for g in cfg.geometry]
        # leaf -> (bucket list, bucket index array, metadata sink items):
        # immutable per-path descriptors rebuilt constantly by readPath
        # otherwise. Bounded by n_leaves.
        self._path_cache: Dict[int, Tuple[List[int], np.ndarray, list]] = {}
        self.online_accesses = 0       # real + stash-hit accesses (paper's X axis)
        self.accesses_since_evict = 0
        self.background_accesses = 0
        if self.ext is not None:
            self.ext.bind(self)
            from repro.oram.metadata import ab_metadata_fields, metadata_blocks
            self.metadata_blocks = metadata_blocks(cfg, ab_metadata_fields(cfg))
        else:
            from repro.oram.metadata import metadata_blocks, ring_metadata_fields
            self.metadata_blocks = metadata_blocks(cfg, ring_metadata_fields(cfg))

    # ----------------------------------------------------------- public API

    def access(self, block: int, write: bool = False, value: Any = None) -> Any:
        """Service one user request for ``block``; returns its payload.

        This is the full online protocol step: position-map lookup,
        readPath, remap, plus any maintenance the access triggers
        (earlyReshuffles, the scheduled evictPath, background
        eviction).
        """
        if not 0 <= block < self.cfg.n_real_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.cfg.n_real_blocks})"
            )
        if self.posmap_model is not None:
            # Each PLB miss fetches one position-map block: a full,
            # protocol-complete ORAM access of its own (Freecursive).
            for _ in range(self.posmap_model.access(block)):
                pm_leaf = int(self.rng.integers(self.cfg.n_leaves))
                pm_pending = self._read_path(pm_leaf, target=None,
                                             kind=OpKind.POSMAP)
                self._service_reshuffles(pm_pending)
                self.accesses_since_evict += 1
                if self.accesses_since_evict >= self.cfg.evict_rate:
                    self.accesses_since_evict = 0
                    self._evict_path()
        leaf = self.posmap.lookup(block)
        self.online_accesses += 1
        for obs in self.observers:
            obs.on_access_start(self.online_accesses)
        pending = self._read_path(leaf, target=block, kind=OpKind.READ_PATH)
        # Remap to a fresh path; the block stays in the stash until an
        # eviction writes it back.
        new_leaf = self.posmap.remap(block)
        if block in self.stash:
            self.stash.remap(block, new_leaf)
        else:
            # First touch of a block that was never written to the tree.
            self.stash.add(block, new_leaf)
        if self.datastore is not None:
            if write:
                from repro.oram.datastore import pad_block
                self._stash_payload[block] = pad_block(
                    value, self.cfg.block_bytes
                )
            result = self._stash_payload.get(block)
        else:
            if write and self._data is not None:
                self._data[block] = value
            result = self._data.get(block) if self._data is not None else None
        self._run_maintenance(pending)
        return result

    def read(self, block: int) -> Any:
        return self.access(block, write=False)

    def write(self, block: int, value: Any) -> None:
        self.access(block, write=True, value=value)

    @property
    def quarantine_pending(self) -> int:
        """Quarantined buckets awaiting rebuild (nonzero only while
        ``defer_rebuilds`` holds them back for the serving layer)."""
        return len(self._quarantined)

    def peek_payload(self, block: int) -> Optional[Any]:
        """A block's payload iff it is readable *without* an access.

        On the sealed data path that means the block's bytes are
        on-chip right now (captured into the stash payload cache and
        not yet written back); on the plaintext ``store_data`` path
        every stored payload qualifies. Returns ``None`` when serving
        the block would require an oblivious access -- the exact
        boundary of what a degraded-mode read may answer.
        """
        if not 0 <= block < self.cfg.n_real_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.cfg.n_real_blocks})"
            )
        if self.datastore is not None:
            return self._stash_payload.get(block)
        if self._data is not None:
            return self._data.get(block)
        return None

    def preload_value(self, block: int, value: Any) -> None:
        """Seed a block's payload without an oblivious access.

        Bulk-loading hook for drivers that populate a store before a
        measured run (the tree placement itself is ``warm_fill``'s
        job). Only the plaintext ``store_data`` payload path supports
        it -- the sealed path would have to locate and re-seal the
        block's slot, which is exactly the oblivious access this hook
        exists to avoid.
        """
        if not 0 <= block < self.cfg.n_real_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.cfg.n_real_blocks})"
            )
        if self._data is None:
            raise ProtocolError(
                "preload_value requires the plaintext store_data payload path"
            )
        self._data[block] = value

    def warm_fill(self) -> int:
        """Pre-place every block in the tree (random leaf, deepest fit).

        Mimics a long warm-up run: blocks sit as close to their leaf as
        capacity allows. Returns how many blocks overflowed to the
        stash (should be ~0 at 50% utilization).
        """
        cfg = self.cfg
        overflow = 0
        order = self.rng.permutation(cfg.n_real_blocks).tolist()
        # On a fresh store every slot is a valid dummy and fills are
        # sequential, so slot ``real_cnt[b]`` is always the bucket's
        # first valid dummy -- no per-placement slot scan needed.
        real_cnt = [0] * cfg.n_buckets
        z_real = [g.z_real for g in cfg.geometry]
        levels = cfg.levels
        n_leaves = cfg.n_leaves
        integers = self.rng.integers
        set_slot = self.store.set_slot
        for block in order:
            leaf = int(integers(n_leaves))
            self.posmap.set_leaf(block, leaf)
            placed = False
            for lv in range(levels - 1, -1, -1):
                b = (1 << lv) - 1 + (leaf >> (levels - 1 - lv))
                slot = real_cnt[b]
                if slot >= z_real[lv]:
                    continue
                set_slot(b, slot, block)
                if self.datastore is not None:
                    self.datastore.seal_slot(b, slot, b"\x00" * 64)
                real_cnt[b] = slot + 1
                placed = True
                break
            if not placed:
                self.stash.add(block, leaf)
                overflow += 1
        return overflow

    # -------------------------------------------------------------- readPath

    def _read_path(
        self, leaf: int, target: Optional[int], kind: OpKind
    ) -> List[int]:
        """One Ring ORAM path read. Returns buckets now due a reshuffle.

        The metadata work is batched: one whole-path snapshot of slot
        contents and statuses replaces the per-bucket ``np.where``
        chains the scalar implementation performed, so the Python-level
        cost per access is O(levels) dict/sink work instead of
        O(levels) array-scan pipelines.
        """
        cfg = self.cfg
        sink = self.sink
        store = self.store
        ext = self.ext
        treetop = cfg.treetop_levels
        mblocks = self.metadata_blocks
        # Per-leaf path descriptors (bucket list, index array, metadata
        # items) are immutable once built -- cache them across accesses.
        cached = self._path_cache.get(leaf)
        if cached is None:
            buckets = tree_mod.path_buckets(leaf, cfg.levels)
            bks = np.asarray(buckets, dtype=np.int64)
            # A path holds exactly one bucket per level, root first, so
            # ``buckets[i]`` sits at level ``i``.
            meta_items = [(b, lv, lv < treetop) for lv, b in enumerate(buckets)]
            self._path_cache[leaf] = (buckets, bks, meta_items)
        else:
            buckets, bks, meta_items = cached
        sink.begin_op(kind)
        # -- metadata pass (read now, write back at the end of the access)
        sink.metadata_access_many(meta_items, write=False, blocks=mblocks)
        if self._verify_paths:
            self._verify_path_integrity(leaf, buckets)
        if ext is not None:
            # gatherDEADs visits only the levels that own a DeadQ.
            ext.gather_path(buckets)
        # -- whole-path snapshot, taken after gather() so DeadQ status
        # flips are visible. Path buckets are distinct and each is read
        # exactly once below, so the snapshot stays valid while slots
        # are consumed; remote hosts are never path buckets (a renter's
        # host sits at the renter's own level, different position).
        rows, sts = store.path_slot_views(bks)
        # -- locate the target (the metadata identifies its bucket + slot)
        target_bucket = -1
        target_slot = -1
        target_remote: Optional[Tuple[int, int]] = None
        if target is not None:
            hit_lv, hit_slot = (rows == target).nonzero()
            if hit_lv.size:
                target_bucket = buckets[int(hit_lv[0])]
                target_slot = int(hit_slot[0])
            elif ext is not None and ext.has_any_rentals():
                for b in buckets:
                    host = ext.find_remote_block(b, target)
                    if host is not None:
                        target_bucket, target_remote = b, host
                        break
        # -- valid dummies of every bucket in one vectorized pass;
        # np.nonzero is row-major, so per-bucket slot lists are
        # contiguous runs of ``dummy_slot`` in ascending order.
        dmask = (rows == DUMMY) & (sts == ST_REFRESHED)
        dcounts = dmask.sum(axis=1).tolist()
        dummy_slot = dmask.nonzero()[1].tolist()
        n_lv = len(buckets)
        dstarts = [0] * (n_lv + 1)
        dacc = 0
        for i in range(n_lv):
            dacc += dcounts[i]
            dstarts[i + 1] = dacc
        # -- green candidates (valid real slots) are computed the same
        # way, but lazily: most accesses find a dummy at every level, so
        # the scan runs only once a bucket turns up dry. A slot with
        # real content is necessarily REFRESHED, so the content test
        # alone is the population _read_nontarget would scan; ``rows``
        # is a snapshot, so deferring the scan changes nothing.
        gcounts = None
        green_slot: List[int] = []
        gstarts: List[int] = []
        # -- block pass: one read per bucket. Sink touches are collected
        # and issued as one batch (same order, one phase transition).
        # ``reads`` feeds only on_read_path, so without observers the
        # per-level tuples are never built (``None`` disables tracking).
        reads: Optional[List[Tuple[int, int, int, bool]]] = (
            [] if self.observers else None
        )
        sink_items: List[Tuple[int, int, int, bool, bool]] = []
        # Consumes of the inlined no-rental paths are deferred into one
        # batched write-back; each bucket appears at most once, nothing
        # in the loop reads the affected state (observers only get the
        # coordinates, _read_nontarget/consume_remote touch other
        # buckets), and the batch lands before the ``due`` scan below.
        cons_b: List[int] = []
        cons_s: List[int] = []
        integers = self.rng.integers
        observers = self.observers
        datastore = self.datastore
        item = rows.item
        has_rentals = ext.has_rentals if ext is not None else None
        for lv, b in enumerate(buckets):
            if b == target_bucket:
                if target_remote is not None:
                    hb, hs = target_remote
                    self._capture_payload(target, hb, hs)
                    blockval = ext.consume_remote(b, target_remote)
                    hlv = store.level(hb)
                    self._notify_dead(hb, hs, hlv)
                    sink_items.append((hb, hs, hlv, hlv < treetop, True))
                    if reads is not None:
                        reads.append((b, hs, hlv, True))
                else:
                    self._capture_payload(target, b, target_slot)
                    blockval = target
                    cons_b.append(b)
                    cons_s.append(target_slot)
                    self._notify_dead(b, target_slot, lv)
                    sink_items.append((b, target_slot, lv, lv < treetop, False))
                    if reads is not None:
                        reads.append((b, target_slot, lv, False))
                self.stash.add(blockval, self.posmap.peek(blockval))
                continue
            n_d = dcounts[lv]
            if ext is None or not has_rentals(b):
                # No remote slots rented by this bucket (the
                # overwhelmingly common case, inlined): the dummy and
                # green populations are exactly the local ones, so the
                # single ``integers`` draw here is the same draw
                # _read_nontarget would take.
                if n_d:
                    slot = dummy_slot[dstarts[lv] + int(integers(n_d))]
                    cons_b.append(b)
                    cons_s.append(slot)
                    for obs in observers:
                        obs.on_slot_dead(b, slot, lv)
                    sink_items.append((b, slot, lv, lv < treetop, False))
                    if reads is not None:
                        reads.append((b, slot, lv, False))
                    continue
                # Green block: a valid real slot spills to the stash
                # (CB, paper section III-C).
                if gcounts is None:
                    gmask = rows >= 0
                    gcounts = gmask.sum(axis=1).tolist()
                    green_slot = gmask.nonzero()[1].tolist()
                    gstarts = [0] * (n_lv + 1)
                    gacc = 0
                    for i in range(n_lv):
                        gacc += gcounts[i]
                        gstarts[i + 1] = gacc
                n_g = gcounts[lv]
                if not n_g:
                    raise ProtocolError(
                        f"bucket {b} (level {lv}) has no readable slot: "
                        f"count={store.count[b]} sustain={store.sustain[b]}"
                    )
                slot = green_slot[gstarts[lv] + int(integers(n_g))]
                blockval = item(lv, slot)
                if datastore is not None:
                    self._capture_payload(blockval, b, slot)
                cons_b.append(b)
                cons_s.append(slot)
                for obs in observers:
                    obs.on_slot_dead(b, slot, lv)
                sink_items.append((b, slot, lv, lv < treetop, False))
                if reads is not None:
                    reads.append((b, slot, lv, False))
                self.stash.add(blockval, self.posmap.peek(blockval))
                continue
            self._read_nontarget(
                b, lv, reads, sink_items,
                n_d,
                dummy_slot[dstarts[lv]:dstarts[lv + 1]],
                rows[lv],
            )
        if cons_b:
            store.consume_path(cons_b, cons_s)
        sink.data_access_many(sink_items, write=False)
        # -- metadata write-back
        sink.metadata_access_many(meta_items, write=True, blocks=mblocks)
        sink.end_op()
        for obs in self.observers:
            obs.on_read_path(leaf, reads, target_bucket)
        citem = store.count.item
        sitem = store.sustain.item
        return [b for b in buckets if citem(b) >= sitem(b)]

    def _read_nontarget(
        self,
        b: int,
        lv: int,
        reads: Optional[List[Tuple[int, int, int, bool]]],
        sink_items: List[Tuple[int, int, int, bool, bool]],
        n_local_dummies: int,
        local_dummies: List[int],
        row: np.ndarray,
    ) -> None:
        """Read a non-target block from bucket ``b``.

        Dummies first (uniformly among local + remote ones), then green
        blocks (a valid slot holding real content -- local or remote --
        whose block spills to the stash). The sustain accounting
        guarantees at least one valid slot exists. ``local_dummies``
        and ``row`` come from the caller's whole-path snapshot; the
        memory touch goes into ``sink_items`` for the caller's batch.
        """
        store = self.store
        treetop = self.cfg.treetop_levels
        onchip = lv < treetop
        # The caller only routes buckets with live rentals here, so the
        # raw host-table row (rental order) replaces the list-building
        # rentals_of(); n_act is at most remote_extension (a couple).
        hb_row, hs_row, c_row, n_act = self.ext.rental_view(b)
        citem = c_row.item
        remote_dummies = [i for i in range(n_act) if citem(i) == DUMMY]
        n_dummies = n_local_dummies + len(remote_dummies)
        if n_dummies:
            pick = int(self.rng.integers(n_dummies))
            if pick < n_local_dummies:
                slot = local_dummies[pick]
                store.consume(b, slot)
                self._notify_dead(b, slot, lv)
                sink_items.append((b, slot, lv, onchip, False))
                if reads is not None:
                    reads.append((b, slot, lv, False))
            else:
                i = remote_dummies[pick - n_local_dummies]
                host = (hb_row.item(i), hs_row.item(i))
                self.ext.consume_remote(b, host)
                hb, hs = host
                hlv = store.level(hb)
                self._notify_dead(hb, hs, hlv)
                sink_items.append((hb, hs, hlv, hlv < treetop, True))
                if reads is not None:
                    reads.append((b, hs, hlv, True))
            return
        # Green block: a valid real slot is consumed; the real block
        # returns to the processor and must stay in the stash (CB,
        # paper section III-C).
        local_greens = (row >= 0).nonzero()[0]
        remote_greens = [i for i in range(n_act) if citem(i) >= 0]
        n_greens = local_greens.size + len(remote_greens)
        if not n_greens:
            raise ProtocolError(
                f"bucket {b} (level {lv}) has no readable slot: "
                f"count={store.count[b]} sustain={store.sustain[b]}"
            )
        pick = int(self.rng.integers(n_greens))
        if pick < local_greens.size:
            slot = int(local_greens[pick])
            if self.datastore is not None:
                self._capture_payload(int(store.slots[b, slot]), b, slot)
            blockval = store.consume(b, slot)
            self._notify_dead(b, slot, lv)
            sink_items.append((b, slot, lv, onchip, False))
            if reads is not None:
                reads.append((b, slot, lv, False))
        else:
            i = remote_greens[pick - local_greens.size]
            host = (hb_row.item(i), hs_row.item(i))
            hb, hs = host
            if self.datastore is not None:
                self._capture_payload(citem(i), hb, hs)
            blockval = self.ext.consume_remote(b, host)
            hlv = store.level(hb)
            self._notify_dead(hb, hs, hlv)
            sink_items.append((hb, hs, hlv, hlv < treetop, True))
            if reads is not None:
                reads.append((b, hs, hlv, True))
        self.stash.add(blockval, self.posmap.peek(blockval))

    # ---------------------------------------------------------- maintenance

    def _run_maintenance(self, pending_reshuffles: List[int]) -> None:
        self._service_reshuffles(pending_reshuffles)
        self.accesses_since_evict += 1
        if self.accesses_since_evict >= self.cfg.evict_rate:
            self.accesses_since_evict = 0
            self._evict_path()
        self._background_evict()

    def _collect_residents(self, b: int) -> None:
        """Move all of ``b``'s remaining real blocks into the stash.

        Covers both local slots and (for AB) unconsumed remote slots,
        whose rental round ends here.
        """
        store = self.store
        ext = self.ext
        has_rentals = ext is not None and ext.has_rentals(b)
        if self.datastore is None:
            # No payloads to capture: pull the resident ids straight
            # out of the bucket row. Same ascending-slot insertion
            # order as the payload-capturing path below.
            blocks = store.resident_blocks(b)
            if not has_rentals:
                # Nothing rented either (reclaim would be a no-op):
                # one vectorized position-map gather and we are done.
                if blocks.size:
                    self.stash.add_many(
                        blocks.tolist(), self.posmap.peek_many(blocks).tolist()
                    )
                return
            residents = blocks.tolist()
        else:
            resident_slots = store.valid_real_slots(b)
            residents = [int(x) for x in store.row(b)[resident_slots]]
            for blk, slot in zip(residents, resident_slots):
                self._capture_payload(blk, b, int(slot))
        if ext is not None:
            if self.datastore is not None:
                for hb, hs, content in ext.rentals_of(b):
                    self._capture_payload(content, hb, hs)
            remote_reals, released = ext.reclaim(b)
            residents.extend(remote_reals)
            for hb, hs in released:
                # The released host slot holds stale data again.
                self._notify_dead(hb, hs, store.level(hb))
        for blk in residents:
            self.stash.add(blk, self.posmap.peek(blk))

    def _service_reshuffles(self, pending: List[int]) -> None:
        """Run every due earlyReshuffle, then rebuild quarantined buckets.

        The shared maintenance step of the main access path, the
        recursive position-map path and background eviction. Quarantine
        rebuilds ride the same window: they are forced reshuffles and
        must never nest inside an in-flight operation.
        """
        for b in pending:
            if self.store.needs_reshuffle(b):
                self._early_reshuffle(b)
        if self._quarantined and not self.defer_rebuilds:
            self._rebuild_quarantined()

    def flush_recovery(self) -> None:
        """Drain any still-quarantined buckets outside an access.

        Corruption detected during the *last* maintenance window of a
        run (e.g. inside its evictPath) has no later access to ride;
        drivers call this once at end of run so every detected fault is
        either rebuilt or counted unrecovered, never left pending.
        """
        if self._quarantined:
            self._rebuild_quarantined()

    def _quarantine(self, bucket: int) -> None:
        """Mark a bucket corrupted; its rebuild runs at next maintenance."""
        if self._rebuilding == bucket:
            # Failures while rebuilding this very bucket are expected
            # (its residents may be unrecoverable); don't re-queue it.
            return
        if self.robustness is None or not self.robustness.quarantine:
            self.robust.unrecovered += 1
            return
        if bucket not in self._quarantined:
            self._quarantined[bucket] = None
            self.robust.quarantines += 1

    def _rebuild_quarantined(self) -> None:
        """Force-reshuffle every quarantined bucket (recovery ladder
        step 2). Rebuilding reseals all of the bucket's slots, which
        refreshes MACs and re-derives the Merkle path up to a fresh
        on-chip root pin."""
        while self._quarantined:
            b = min(self._quarantined)
            del self._quarantined[b]
            self._rebuilding = b
            try:
                self._early_reshuffle(b, kind=OpKind.RECOVERY)
            finally:
                self._rebuilding = None
            self.robust.rebuilds += 1
            self.robust.recovered += 1

    def _early_reshuffle(
        self, b: int, kind: OpKind = OpKind.EARLY_RESHUFFLE
    ) -> None:
        """Reshuffle one saturated (or quarantined) bucket (offline)."""
        cfg = self.cfg
        store = self.store
        sink = self.sink
        lv = store.level(b)
        onchip = lv < cfg.treetop_levels
        sink.begin_op(kind)
        sink.metadata_access(b, lv, write=False, onchip=onchip,
                             blocks=self.metadata_blocks)
        # Read phase: Z' reads (valid real blocks padded with dummies --
        # the read count, not the real count, is what memory sees).
        sink.data_access_repeat(b, 0, lv, self._z_real_by_level[lv],
                                write=False, onchip=onchip)
        self._collect_residents(b)
        self._refill_bucket(b, lv)
        sink.metadata_access(b, lv, write=True, onchip=onchip,
                             blocks=self.metadata_blocks)
        sink.end_op()
        for obs in self.observers:
            obs.on_reshuffle(b, lv, kind)

    def _evict_path(self) -> None:
        """Scheduled path reshuffle in reverse-lexicographic order."""
        cfg = self.cfg
        store = self.store
        sink = self.sink
        leaf = tree_mod.reverse_lexicographic_leaf(self.evict_counter, cfg.levels)
        self.evict_counter += 1
        buckets = tree_mod.path_buckets(leaf, cfg.levels)
        sink.begin_op(OpKind.EVICT_PATH)
        # Read phase: Z' reads per bucket; reals move to the stash.
        # ``buckets`` holds one bucket per level, root first, so the
        # enumeration index is the level.
        z_real = self._z_real_by_level
        treetop = cfg.treetop_levels
        mblocks = self.metadata_blocks
        for lv, b in enumerate(buckets):
            onchip = lv < treetop
            sink.metadata_access(b, lv, write=False, onchip=onchip,
                                 blocks=mblocks)
            sink.data_access_repeat(b, 0, lv, z_real[lv],
                                    write=False, onchip=onchip)
            self._collect_residents(b)
        # Write phase: leaf to root, greedy deepest placement.
        for lv in range(cfg.levels - 1, -1, -1):
            b = buckets[lv]
            self._refill_bucket(b, lv)
            sink.metadata_access(b, lv, write=True, onchip=lv < treetop,
                                 blocks=mblocks)
        sink.end_op()
        for obs in self.observers:
            obs.on_evict_path(leaf)
            for b in buckets:
                obs.on_reshuffle(b, store.level(b), OpKind.EVICT_PATH)

    def _refill_bucket(self, b: int, lv: int) -> None:
        """Shared write phase of evictPath / earlyReshuffle for bucket ``b``.

        Renews the AB remote extension, picks stash blocks that may live
        in ``b``, scatters them uniformly over local + remote positions,
        rewrites every usable slot, and reports the writes.

        One code path for every scheme: the AB/DR bookkeeping costs O(1)
        counter lookups (usable-slot count, lazy DeadQ reclamation
        inside ``refresh``) plus batched calls (``remove_many``,
        ``write_remote_all``, ``seal_many``, coalesced sink/observer
        events), so the general case runs at the speed the old
        ring/CB/NS-only fast path did. The scatter draw is taken
        whenever blocks are chosen -- even with no remote hosts, where
        its result is irrelevant -- so the RNG stream never depends on
        which scheme is active.
        """
        cfg = self.cfg
        store = self.store
        sink = self.sink
        ext = self.ext
        datastore = self.datastore
        observers = self.observers
        onchip = lv < cfg.treetop_levels
        reclaimed_dead = None
        if observers:
            usable = store.usable_slots(b)
            st = store.status[b, usable]
            reclaimed_dead = usable[(st == ST_DEAD) | (st == ST_QUEUED)]
            n_usable = int(usable.size)
        else:
            # Usable = not rented out; the IN_USE tally makes the count
            # O(1) and ``refresh`` recovers the slot indices itself.
            n_usable = store.z_phys(b) - store.in_use_count[b]
        granted = 0
        hosts: List[Tuple[int, int]] = []
        if ext is not None:
            granted, hosts = ext.acquire(b, lv)
            if hosts and observers:
                for hb, hs in hosts:
                    hlv = store.level(hb)
                    for obs in observers:
                        obs.on_slot_reclaimed(hb, hs, hlv, "remote")
        capacity = min(self._z_real_by_level[lv], n_usable + granted)
        chosen = self._pick_stash_blocks(b, lv, capacity)
        # Scatter real blocks uniformly across local + remote positions
        # so a remote read is indistinguishable from a local one.
        n_hosts = len(hosts)
        local_reals = chosen
        remote_contents = [DUMMY] * n_hosts
        if chosen:
            positions = self.rng.choice(n_usable + n_hosts,
                                        size=len(chosen), replace=False)
            if n_hosts:
                local_reals = []
                for blk, pos in zip(chosen, positions):
                    if pos < n_usable:
                        local_reals.append(blk)
                    else:
                        remote_contents[int(pos) - n_usable] = blk
            self.stash.remove_many(chosen)
        written = store.refresh(b, local_reals, granted_extension=granted)
        if observers and reclaimed_dead.size:
            for obs in observers:
                obs.on_slots_reclaimed(b, reclaimed_dead, lv, "reshuffle")
        if datastore is None:
            # Local writes are one same-bucket batch; remote-host writes
            # (bottom levels only, never on-chip) share the same DRAM
            # write phase, so splitting the sink call leaves arrival
            # times -- and therefore exec_ns -- untouched.
            sink.data_access_block(b, written, lv, write=True, onchip=onchip)
            if hosts:
                ext.write_remote_all(b, remote_contents)
                treetop = cfg.treetop_levels
                sink.data_access_many(
                    [(hb, hs, store.level(hb),
                      store.level(hb) < treetop, True)
                     for hb, hs in hosts],
                    write=True,
                )
            return
        # Payload path: one ordered seal batch (locals then remote
        # hosts) and one sink batch, same per-slot sequence as the
        # scalar calls so versions, dummy-filler draws and Merkle
        # updates are bit-identical.
        pop_payload = self._stash_payload.pop
        slots_row = store.slots[b]
        seal_items: List[Tuple[int, int, Optional[bytes]]] = []
        write_items: List[Tuple[int, int, int, bool, bool]] = []
        for slot in written:
            content = int(slots_row[slot])
            seal_items.append(
                (b, slot,
                 pop_payload(content, b"\x00" * 64) if content >= 0 else None)
            )
            write_items.append((b, slot, lv, onchip, False))
        if hosts:
            ext.write_remote_all(b, remote_contents)
            treetop = cfg.treetop_levels
            for (hb, hs), content in zip(hosts, remote_contents):
                seal_items.append(
                    (hb, hs,
                     pop_payload(content, b"\x00" * 64)
                     if content >= 0 else None)
                )
                hlv = store.level(hb)
                write_items.append((hb, hs, hlv, hlv < treetop, True))
        datastore.seal_many(seal_items)
        sink.data_access_many(write_items, write=True)

    def _pick_stash_blocks(self, b: int, lv: int, capacity: int) -> List[int]:
        """Stash blocks placeable in bucket ``b`` (path membership).

        The classic deepest-placement greedy of evictPath emerges from
        refilling leaf-to-root: a block eligible for a deeper bucket on
        the eviction path was already taken by that bucket.
        """
        if capacity <= 0 or not len(self.stash):
            # Nothing to place (empty stash is the common case right
            # after an evictPath): skip the position math and the call.
            return []
        return self.stash.pick_for_bucket(
            tree_mod.position_of(b), self.cfg.levels - 1 - lv, capacity
        )

    def _background_evict(self) -> None:
        """CB background eviction: dummy accesses until the stash drains."""
        cfg = self.cfg
        burst = 0
        while self.stash.occupancy > cfg.background_evict_threshold:
            burst += 1
            if burst > _MAX_BACKGROUND_BURST:
                raise ProtocolError(
                    f"background eviction cannot drain the stash "
                    f"(occupancy {self.stash.occupancy})"
                )
            self.background_accesses += 1
            leaf = int(self.rng.integers(cfg.n_leaves))
            pending = self._read_path(leaf, target=None, kind=OpKind.BACKGROUND)
            self._service_reshuffles(pending)
            self.accesses_since_evict += 1
            if self.accesses_since_evict >= cfg.evict_rate:
                self.accesses_since_evict = 0
                self._evict_path()

    # ------------------------------------------------------------ internals

    def _notify_dead(self, b: int, slot: int, lv: int) -> None:
        for obs in self.observers:
            obs.on_slot_dead(b, slot, lv)

    def _capture_payload(self, block: int, bucket: int, slot: int) -> None:
        """Decrypt+verify a consumed real block into the stash payloads.

        Without a robustness policy, crypto failures propagate (tamper
        experiments rely on that). With one, the recovery ladder runs:
        retries for transient faults, quarantine for corruption, then a
        stash-served read or -- the last rung -- a zeroed payload.
        """
        if self.datastore is None or block < 0:
            return
        if not self._recovery_active:
            self._stash_payload[block] = self.datastore.open_slot(bucket, slot)
            return
        payload = self._open_slot_recovering(bucket, slot)
        if payload is None:
            if block in self._stash_payload:
                # The stash already holds this block's bytes (it was
                # read or written earlier); serve those instead.
                self.robust.stash_served_reads += 1
                return
            payload = bytes(self.cfg.block_bytes)
            self.robust.payload_resets += 1
        self._stash_payload[block] = payload

    def _open_slot_recovering(self, bucket: int, slot: int) -> Optional[bytes]:
        """Open one slot through the recovery ladder.

        Returns the plaintext, or ``None`` when the slot is lost to
        persistent corruption (the bucket is then quarantined).
        """
        rc = self.robust
        rcfg = self.robustness
        attempts = 0
        while True:
            try:
                payload = self.datastore.open_slot(bucket, slot)
            except TransientBackendError:
                rc.transient_faults += 1
                if attempts >= rcfg.retry_budget:
                    rc.retry_exhausted += 1
                    self._quarantine(bucket)
                    return None
                attempts += 1
                rc.retries += 1
                self.sink.stall(
                    rcfg.backoff_base_ns * rcfg.backoff_factor ** (attempts - 1)
                )
                continue
            except AuthenticationError:
                rc.auth_failures += 1
                self._quarantine(bucket)
                return None
            except IntegrityError as exc:
                rc.integrity_failures += 1
                self._quarantine(exc.bucket if exc.bucket is not None else bucket)
                return None
            if attempts:
                rc.transient_recovered += 1
            return payload

    def _verify_path_integrity(self, leaf: int, buckets: Sequence[int]) -> None:
        """Verify the fetched path's hash chain (recovery ladder entry).

        A localized mismatch quarantines the culprit bucket; a root-only
        mismatch (consistent-rehash replay) quarantines the path's leaf
        bucket, whose rebuild re-derives and re-pins the root.
        """
        try:
            self.datastore.verify_path(leaf)
        except IntegrityError as exc:
            self.robust.integrity_failures += 1
            self._quarantine(exc.bucket if exc.bucket is not None else buckets[-1])

    # ------------------------------------------------------------- checking

    def check_invariants(self) -> None:
        """Verify global protocol invariants (test hook).

        Every mapped block lives in exactly one place (stash, a tree
        slot, or a rented remote slot); every tree-resident block lies
        on the path of its mapped leaf; no bucket holds more than Z'
        real blocks.
        """
        cfg = self.cfg
        seen: Dict[int, str] = {}
        for blk, _leaf in self.stash.blocks():
            seen[blk] = "stash"
        rows = self.store.slots
        for b, s in np.argwhere(rows >= 0):
            blk = int(rows[b, s])
            if blk in seen:
                raise AssertionError(
                    f"block {blk} duplicated: {seen[blk]} and bucket {int(b)}"
                )
            seen[blk] = f"bucket {int(b)}"
            leaf = self.posmap.peek(blk)
            if leaf < 0:
                raise AssertionError(f"resident block {blk} unmapped")
            if not tree_mod.bucket_on_path(int(b), leaf, cfg.levels):
                raise AssertionError(
                    f"block {blk} in bucket {int(b)} off its path (leaf {leaf})"
                )
        if self.ext is not None:
            for owner, blk in self.ext.remote_real_blocks():
                if blk in seen:
                    raise AssertionError(
                        f"block {blk} duplicated: {seen[blk]} and remote "
                        f"slot of bucket {owner}"
                    )
                seen[blk] = f"remote of {owner}"
                leaf = self.posmap.peek(blk)
                if not tree_mod.bucket_on_path(owner, leaf, cfg.levels):
                    raise AssertionError(
                        f"remote block {blk} owned by off-path bucket {owner}"
                    )
        reals_per_bucket = (rows >= 0).sum(axis=1)
        z_real_per_bucket = np.array(
            [g.z_real for g in cfg.geometry], dtype=np.int64
        )[self.store.level_of_bucket]
        over = np.nonzero(reals_per_bucket > z_real_per_bucket)[0]
        if over.size:
            b = int(over[0])
            raise AssertionError(
                f"bucket {b} holds {int(reals_per_bucket[b])} reals "
                f"> Z'={int(z_real_per_bucket[b])}"
            )
        mapped = set(int(x) for x in self.posmap.mapped_blocks())
        missing = mapped.difference(seen)
        if missing:
            raise AssertionError(f"mapped blocks lost: {sorted(missing)[:5]}...")
