"""The position map: block id -> current leaf label.

The paper keeps the position map on-chip (512KB PosMap + 64KB PLB,
Table III) rather than recursing, so lookups cost no memory traffic
here either. The map is numpy-backed to keep multi-million-block trees
affordable in a Python process.

A block whose entry is ``UNMAPPED`` has never been touched; the first
access assigns it a uniformly random leaf ("allocate on first touch"),
which matches how trace-driven ORAM studies warm their trees.
"""

from __future__ import annotations

import numpy as np

UNMAPPED = -1


class PositionMap:
    """Dense block -> leaf mapping with deferred random initialization."""

    def __init__(self, n_blocks: int, n_leaves: int, rng: np.random.Generator) -> None:
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        if n_leaves < 1:
            raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
        self.n_blocks = n_blocks
        self.n_leaves = n_leaves
        self._rng = rng
        self._leaf = np.full(n_blocks, UNMAPPED, dtype=np.int64)
        self.lookups = 0
        self.remaps = 0

    def __len__(self) -> int:
        return self.n_blocks

    def is_mapped(self, block: int) -> bool:
        self._check(block)
        return self._leaf[block] != UNMAPPED

    def lookup(self, block: int) -> int:
        """Current leaf of ``block``, assigning a random one on first use."""
        self._check(block)
        self.lookups += 1
        leaf = int(self._leaf[block])
        if leaf == UNMAPPED:
            leaf = int(self._rng.integers(self.n_leaves))
            self._leaf[block] = leaf
        return leaf

    def peek(self, block: int) -> int:
        """Leaf of ``block`` without counting a lookup; UNMAPPED if untouched."""
        self._check(block)
        return int(self._leaf[block])

    def peek_many(self, blocks: np.ndarray) -> np.ndarray:
        """Leaves of several blocks at once (vectorized :meth:`peek`).

        Like ``peek``, does not count lookups; entries for untouched
        blocks come back ``UNMAPPED``. No per-element range check --
        callers pass ids read out of the tree, which are valid by
        construction.
        """
        return self._leaf[blocks]

    def remap(self, block: int) -> int:
        """Assign and return a fresh uniformly random leaf for ``block``."""
        self._check(block)
        leaf = int(self._rng.integers(self.n_leaves))
        self._leaf[block] = leaf
        self.remaps += 1
        return leaf

    def set_leaf(self, block: int, leaf: int) -> None:
        """Force a mapping (used by warm-fill initialization and tests)."""
        self._check(block)
        if not 0 <= leaf < self.n_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        self._leaf[block] = leaf

    def mapped_blocks(self) -> np.ndarray:
        """Ids of all blocks that currently have a leaf assigned."""
        return np.nonzero(self._leaf != UNMAPPED)[0]

    def _check(self, block: int) -> None:
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
