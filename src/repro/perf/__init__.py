"""Performance-tracking harness (``python -m repro perf``).

This package turns the simulator into its own benchmark subject: a
fixed, seed-pinned matrix of (scheme x trace) cells is replayed through
:func:`repro.sim.runner.run_suite`, and each cell's wall time,
throughput (accesses/sec) and deterministic simulation metrics are
written to a machine-readable JSON report (``BENCH_perf.json``).

- :mod:`repro.perf.schema` defines and validates the report format;
- :mod:`repro.perf.runner` runs the matrix (full or ``--smoke``);
- :mod:`repro.perf.compare` diffs two reports and fails on throughput
  regressions beyond a threshold (the CI gate);
- :mod:`repro.perf.report` renders reports for humans.

Simulation metrics (``cells[*].sim``) are bit-deterministic for a given
(code version, config, seed); wall-clock metrics (``wall_s``,
``accesses_per_s``) vary with the host. Comparisons therefore treat
only throughput as a gate and the ``sim`` block as an identity check.
"""

from repro.perf.compare import compare_reports
from repro.perf.profile import profile_cell
from repro.perf.runner import PerfConfig, full_config, run_perf, smoke_config
from repro.perf.schema import SCHEMA_VERSION, validate_report

__all__ = [
    "PerfConfig",
    "SCHEMA_VERSION",
    "compare_reports",
    "full_config",
    "profile_cell",
    "run_perf",
    "smoke_config",
    "validate_report",
]
