"""Human-readable rendering of perf reports."""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.report import render_mapping_table
from repro.perf.schema import cell_key


def render_report(doc: Dict[str, Any]) -> str:
    """Text table of one report's cells."""
    cfg = doc["config"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        sim = cell["sim"]
        rows.append({
            "cell": cell_key(cell),
            "wall_s": cell["wall_s"],
            "acc_per_s": cell["accesses_per_s"],
            "ns_per_access": sim["ns_per_access"],
            "stash_peak": sim["stash_peak"],
            "reshuffles": sim["reshuffles_total"],
            "row_hit": sim["row_hit_rate"],
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"perf matrix ({flavor}): L={cfg['levels']} "
        f"requests={cfg['n_requests']} warmup={cfg['warmup_requests']} "
        f"seed={cfg['seed']}"
    )
    lines = []
    if rows:
        lines.append(render_mapping_table(rows, title=title))
    else:
        lines.append(f"{title}\n(no completed cells)")
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {cell_key(cell)}: {first[0] if first else 'cell failed'}"
        )
    return "\n".join(lines)
