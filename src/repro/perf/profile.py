"""cProfile one perf-matrix cell (``python -m repro perf profile``).

Hot-path work on the simulator should start from data, not intuition:
this module runs exactly one (scheme, trace) cell of the perf matrix
under :mod:`cProfile` and renders the top-N functions, so "where does
the AB cell actually spend its time?" is a one-command question. The
profiled region is the simulation only -- trace generation and scheme
construction happen outside the profiler, mirroring what the timed
``perf run`` cells measure.

Profiling overhead inflates absolute times (typically 2-3x for this
workload's many small calls), so the numbers are for *ranking*
functions, never for before/after speedup claims -- use ``perf run``
wall times for those.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Dict

from repro.core import schemes as schemes_mod
from repro.sim.engine import SimConfig, Simulation
from repro.sim.runner import make_trace

#: pstats sort keys accepted by ``perf profile --sort``.
SORT_KEYS = ("cumulative", "tottime", "ncalls")


def parse_cell(spec: str) -> Dict[str, Any]:
    """Parse a ``scheme/trace[@pN]`` cell selector.

    The same key format :func:`repro.perf.schema.cell_key` produces, so
    a cell name copied out of a report or a compare line selects that
    cell: ``ns/mcf@p4`` profiles the pipelined ns/mcf cell at depth 4.
    """
    depth = 1
    body = spec
    if "@p" in spec:
        body, _, suffix = spec.rpartition("@p")
        try:
            depth = int(suffix)
        except ValueError:
            raise ValueError(
                f"bad cell selector {spec!r}: depth suffix must be an int"
            ) from None
        if depth < 1:
            raise ValueError(
                f"bad cell selector {spec!r}: depth must be >= 1"
            )
    scheme, sep, trace = body.partition("/")
    if not sep or not scheme or not trace:
        raise ValueError(
            f"bad cell selector {spec!r}: expected scheme/trace[@pN]"
        )
    return {"scheme": scheme, "benchmark": trace, "pipeline_depth": depth}


def profile_cell(
    scheme: str = "ab",
    benchmark: str = "mcf",
    suite: str = "spec",
    levels: int = 12,
    n_requests: int = 2000,
    warmup_requests: int = 400,
    seed: int = 0,
    top_n: int = 30,
    sort: str = "cumulative",
    pipeline_depth: int = 1,
) -> Dict[str, Any]:
    """Profile one matrix cell; returns the report text plus metadata.

    The defaults profile the AB/mcf cell of the full matrix -- the
    scheme the paper's headline numbers come from and historically the
    slowest one simulated. ``pipeline_depth > 1`` profiles the cell on
    the pipelined controller (same knob as the perf matrix's ``@pN``
    cells).
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    cfg = schemes_mod.by_name(scheme, levels)
    trace = make_trace(suite, benchmark, cfg.n_real_blocks, n_requests,
                       seed=seed)
    sim = Simulation(
        cfg, trace,
        SimConfig(
            seed=seed,
            warmup_requests=warmup_requests,
            pipeline_depth=pipeline_depth,
        ),
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = sim.run()
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top_n)
    depth_note = (
        f" pipeline_depth={pipeline_depth}" if pipeline_depth > 1 else ""
    )
    header = (
        f"perf profile: scheme={scheme} trace={suite}/{benchmark} "
        f"levels={levels} requests={n_requests} "
        f"warmup={warmup_requests} seed={seed}{depth_note}\n"
        f"sim check: exec_ns={result.exec_ns!r} "
        f"stash_peak={int(result.stash_peak)} "
        f"dead_blocks={int(result.dead_blocks)}\n"
        "(absolute times include profiler overhead; use them to rank "
        "functions, not to claim speedups)\n\n"
    )
    return {
        "scheme": scheme,
        "trace": benchmark,
        "suite": suite,
        "levels": levels,
        "n_requests": n_requests,
        "warmup_requests": warmup_requests,
        "seed": seed,
        "sort": sort,
        "top_n": top_n,
        "pipeline_depth": pipeline_depth,
        "exec_ns": result.exec_ns,
        "text": header + buf.getvalue(),
    }
