"""Diff two perf reports: the CI regression gate.

``compare_reports`` matches cells by (scheme, trace) and checks the new
report's throughput against the baseline:

- exit code 0: every baseline cell is present and within the threshold
  (improvements are fine and get reported);
- exit code 1: at least one cell regressed by more than ``threshold``
  percent in accesses/sec;
- exit code 2: a report failed schema validation, or a baseline cell is
  missing from the new report (the matrix silently shrank -- treated as
  an error, not a pass).

Cells present only in the *new* report are informational (the matrix
grew). Deterministic ``sim`` metrics are diffed for the summary text
but never gate: they legitimately change when simulator behaviour
changes, and such changes must be reviewed, not blocked.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.perf.schema import cell_key, validate_report

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

DEFAULT_THRESHOLD_PCT = 10.0


def load_report(path: str) -> Tuple[Any, List[str]]:
    """Parse and validate one report file; returns (doc, errors)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        # ValueError covers JSONDecodeError and UnicodeDecodeError:
        # truncated, corrupted or outright binary files must surface as
        # a one-line diagnosis, never a traceback.
        return None, [f"{path}: cannot load report: {exc}"]
    errors = [f"{path}: {e}" for e in validate_report(doc)]
    return doc, errors


def compare_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Tuple[int, List[str]]:
    """Compare two validated reports; returns (exit_code, messages)."""
    messages: List[str] = []
    base_cells = {cell_key(c): c for c in baseline["cells"]}
    new_cells = {cell_key(c): c for c in new["cells"]}
    exit_code = EXIT_OK
    for key, base in base_cells.items():
        if key not in new_cells:
            messages.append(f"ERROR {key}: cell missing from new report")
            exit_code = EXIT_ERROR
            continue
        cur = new_cells[key]
        if "error" in base:
            messages.append(f"ERROR {key}: baseline cell is an error entry")
            exit_code = EXIT_ERROR
            continue
        if "error" in cur:
            first = str(cur["error"]).strip().splitlines()
            messages.append(
                f"ERROR {key}: cell errored in new report: "
                f"{first[0] if first else 'cell failed'}"
            )
            exit_code = EXIT_ERROR
            continue
        old_tp = float(base["accesses_per_s"])
        new_tp = float(cur["accesses_per_s"])
        if old_tp <= 0:
            messages.append(f"ERROR {key}: baseline throughput {old_tp}")
            exit_code = EXIT_ERROR
            continue
        delta_pct = (new_tp - old_tp) / old_tp * 100.0
        drifted = _sim_drift(base.get("sim", {}), cur.get("sim", {}))
        note = f" (sim metrics drifted: {', '.join(drifted)})" if drifted else ""
        line = (
            f"{key}: {old_tp:.1f} -> {new_tp:.1f} acc/s "
            f"({delta_pct:+.1f}%){note}"
        )
        if delta_pct < -threshold_pct:
            messages.append(
                f"REGRESSION {line} exceeds -{threshold_pct:g}% threshold"
            )
            if exit_code == EXIT_OK:
                exit_code = EXIT_REGRESSION
        else:
            messages.append(f"OK {line}")
    for key in new_cells:
        if key not in base_cells:
            messages.append(f"NEW {key}: no baseline entry (matrix grew)")
    return exit_code, messages


def _sim_drift(base_sim: Dict[str, Any], new_sim: Dict[str, Any]) -> List[str]:
    """Names of deterministic metrics that changed between reports."""
    out = []
    for k in sorted(set(base_sim) | set(new_sim)):
        if base_sim.get(k) != new_sim.get(k):
            out.append(k)
    return out


def compare_files(
    baseline_path: str,
    new_path: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Tuple[int, List[str]]:
    """File-level entry: load, validate, compare."""
    base, base_errs = load_report(baseline_path)
    new, new_errs = load_report(new_path)
    errors = base_errs + new_errs
    if errors:
        return EXIT_ERROR, [f"ERROR {e}" for e in errors]
    return compare_reports(base, new, threshold_pct)
