"""The ``BENCH_perf.json`` report format.

The report must stay machine-checkable without third-party schema
libraries (CI and the test suite validate it with the stock
interpreter), so the schema is expressed as plain validation code.

Top-level document::

    {
      "kind": "repro-perf-report",
      "schema_version": 1,
      "config":      { matrix definition, seeds, sizes, "smoke": bool },
      "environment": { "python": ..., "numpy": ..., "platform": ... },
      "cells":       [ { cell }, ... ]
    }

One cell per (scheme, trace) pair::

    {
      "scheme": "ring", "trace": "mcf",
      "wall_s": 0.63,            # host-dependent
      "accesses_per_s": 3171.9,  # host-dependent (requests / wall_s)
      "sim": {                   # bit-deterministic for a code version
        "exec_ns": ..., "ns_per_access": ..., "stash_peak": ...,
        "reshuffles_total": ..., "reshuffles_by_level": [...],
        "dram_reads": ..., "dram_writes": ..., "row_hit_rate": ...,
        "online_accesses": ..., "background_accesses": ...,
        "evictions": ..., "dead_blocks": ..., "remote_accesses": ...
      }
    }

``wall_s``/``accesses_per_s`` are what :mod:`repro.perf.compare` gates
on; the ``sim`` block lets tests assert run-to-run determinism.

A cell whose worker failed (crashed process, raised exception) is
recorded as an *error cell* instead of silently shrinking the matrix::

    { "scheme": "ring", "trace": "mcf", "error": "<traceback or note>" }

Error cells validate against that three-field shape only; the compare
gate treats a baseline cell that errored in the new report as an ERROR
(exit 2), never as a pass.
"""

from __future__ import annotations

from typing import Any, Dict, List

SCHEMA_VERSION = 1
REPORT_KIND = "repro-perf-report"

_CONFIG_FIELDS = {
    "schemes": list,
    "benchmarks": list,
    "suite": str,
    "levels": int,
    "n_requests": int,
    "warmup_requests": int,
    "seed": int,
    "repeats": int,
    "smoke": bool,
}

# Optional config fields (reports written before they existed stay
# valid): extra pipelined cells as [scheme, trace, depth] triples and
# extra sharded cells as [scheme, trace, shards] triples.
_CONFIG_OPTIONAL_FIELDS = {
    "pipeline_cells": list,
    "shard_cells": list,
}

_CELL_FIELDS = {
    "scheme": str,
    "trace": str,
    "wall_s": (int, float),
    "accesses_per_s": (int, float),
    "sim": dict,
}

_ERROR_CELL_FIELDS = {
    "scheme": str,
    "trace": str,
    "error": str,
}

# Optional cell fields: a pipelined cell carries the depth it ran at
# and a sharded cell the fleet width (serial cells omit both, keeping
# historical reports byte-identical).
_CELL_OPTIONAL_FIELDS = {
    "pipeline_depth": int,
    "shards": int,
}

_SIM_FIELDS = {
    "exec_ns": (int, float),
    "ns_per_access": (int, float),
    "stash_peak": int,
    "reshuffles_total": int,
    "reshuffles_by_level": list,
    "dram_reads": int,
    "dram_writes": int,
    "row_hit_rate": (int, float),
    "online_accesses": int,
    "background_accesses": int,
    "evictions": int,
    "dead_blocks": int,
    "remote_accesses": int,
}


def _check_fields(
    obj: Dict[str, Any], fields: Dict[str, Any], where: str, errors: List[str]
) -> None:
    for name, typ in fields.items():
        if name not in obj:
            errors.append(f"{where}: missing field {name!r}")
            continue
        val = obj[name]
        if typ is bool:
            ok = isinstance(val, bool)
        elif isinstance(val, bool):
            # bool subclasses int; reject it where a number is expected.
            ok = False
        else:
            ok = isinstance(val, typ)
        if not ok:
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(val).__name__}, expected {typ}"
            )


def validate_report(doc: Any) -> List[str]:
    """Validate a parsed report; returns a list of problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report root is {type(doc).__name__}, expected object"]
    if doc.get("kind") != REPORT_KIND:
        errors.append(f"kind is {doc.get('kind')!r}, expected {REPORT_KIND!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config: missing or not an object")
    else:
        _check_fields(config, _CONFIG_FIELDS, "config", errors)
        for name, typ in _CONFIG_OPTIONAL_FIELDS.items():
            if name in config and not isinstance(config[name], typ):
                errors.append(
                    f"config: field {name!r} has type "
                    f"{type(config[name]).__name__}, expected {typ}"
                )
    env = doc.get("environment")
    if not isinstance(env, dict):
        errors.append("environment: missing or not an object")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing, not a list, or empty")
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        if "error" in cell:
            _check_fields(cell, _ERROR_CELL_FIELDS, where, errors)
        else:
            _check_fields(cell, _CELL_FIELDS, where, errors)
            sim = cell.get("sim")
            if isinstance(sim, dict):
                _check_fields(sim, _SIM_FIELDS, f"{where}.sim", errors)
            wall = cell.get("wall_s")
            if isinstance(wall, (int, float)) and wall <= 0:
                errors.append(f"{where}: wall_s must be positive, got {wall}")
        for field in ("pipeline_depth", "shards"):
            val = cell.get(field)
            if val is not None and (
                isinstance(val, bool) or not isinstance(val, int) or val < 1
            ):
                errors.append(
                    f"{where}: {field} must be an int >= 1, got {val!r}"
                )
        key = (cell.get("scheme"), cell.get("trace"),
               cell.get("pipeline_depth", 1), cell.get("shards", 1))
        if key in seen:
            errors.append(f"{where}: duplicate cell {key}")
        seen.add(key)
    return errors


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of one matrix cell.

    Pipelined and sharded cells are distinct from their serial twin:
    the depth is appended as ``@p<depth>`` and the fleet width as
    ``@s<shards>`` (depth 1 / absent keeps the historical two-part
    key).
    """
    key = f"{cell['scheme']}/{cell['trace']}"
    depth = cell.get("pipeline_depth", 1)
    if depth > 1:
        key += f"@p{depth}"
    shards = cell.get("shards", 1)
    if shards > 1:
        key += f"@s{shards}"
    return key


def deterministic_view(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The report reduced to its run-to-run deterministic content.

    Strips host-dependent fields (``wall_s``, ``accesses_per_s``, the
    ``environment`` block) so two runs of the same code -- serial or
    with any worker count -- agree byte-for-byte on the result.
    """
    out: Dict[str, Any] = {
        k: v for k, v in doc.items()
        if k not in ("environment",)
    }
    cells = []
    for cell in doc.get("cells", []):
        cells.append({
            k: v for k, v in cell.items()
            if k not in ("wall_s", "accesses_per_s")
        })
    out["cells"] = cells
    return out


def deterministic_bytes(doc: Dict[str, Any]) -> bytes:
    """Canonical JSON encoding of :func:`deterministic_view`."""
    import json

    return json.dumps(
        deterministic_view(doc), sort_keys=True, separators=(",", ":")
    ).encode()
