"""Run the perf matrix and build a report document.

Every cell is one ``run_suite`` call over a single (scheme, benchmark)
pair, timed with ``time.perf_counter``. The simulation itself is fully
deterministic (pinned seeds for trace generation, warm fill and the
protocol RNG), so the ``sim`` block of a cell only changes when the
simulator's behaviour changes -- which is exactly what makes the report
comparable across commits.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import schemes as schemes_mod
from repro.parallel.executor import Cell, report_progress, run_cells, worker_registry
from repro.perf.schema import REPORT_KIND, SCHEMA_VERSION
from repro.telemetry.metrics import merge_snapshots
from repro.sim.engine import SimConfig
from repro.sim.results import SimResult
from repro.sim.runner import make_trace, run_suite


@dataclass
class PerfConfig:
    """One perf-harness invocation (the report's ``config`` block)."""

    schemes: Sequence[str] = ("ring", "baseline", "dr", "ab")
    benchmarks: Sequence[str] = ("mcf", "xz", "x264")
    suite: str = "spec"
    levels: int = 12
    n_requests: int = 2000
    warmup_requests: int = 400
    seed: int = 0
    repeats: int = 1
    smoke: bool = False
    #: Extra pipelined cells as (scheme, bench, depth) triples, run
    #: after the serial cross product. Each shares the matrix sizes
    #: and seed; its cell records ``pipeline_depth`` and keys as
    #: ``scheme/bench@p<depth>``.
    pipeline: Sequence[Tuple[str, str, int]] = ()
    #: Extra sharded cells as (scheme, bench, shards) triples: the same
    #: trace partitioned over N subtrees (:mod:`repro.core.sharding`)
    #: with the fleet makespan as ``exec_ns``. Keys as
    #: ``scheme/bench@s<shards>`` next to the serial twin.
    shards: Sequence[Tuple[str, str, int]] = ()
    workers: int = 1
    progress: Any = None  # callable(str) for live cell updates
    # Collect a merged metrics-registry snapshot across the sweep.
    # Excluded from to_dict() (like workers/progress): the config block
    # is embedded in committed baselines, which must stay byte-stable,
    # and telemetry never changes what the cells compute.
    telemetry: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schemes": list(self.schemes),
            "benchmarks": list(self.benchmarks),
            "suite": self.suite,
            "levels": self.levels,
            "n_requests": self.n_requests,
            "warmup_requests": self.warmup_requests,
            "seed": self.seed,
            "repeats": self.repeats,
            "smoke": self.smoke,
            "pipeline_cells": [list(t) for t in self.pipeline],
            "shard_cells": [list(t) for t in self.shards],
        }


def _prune_extras(cfg: PerfConfig, overrides: Dict[str, Any]) -> PerfConfig:
    """Drop default pipelined/sharded cells outside --schemes/--benchmarks.

    Each extra cell needs its serial twin in the matrix to be
    comparable, so narrowing the selection prunes the defaults (an
    explicit override is kept verbatim).
    """
    if "pipeline" not in overrides:
        cfg = replace(cfg, pipeline=tuple(
            (s, b, d) for s, b, d in cfg.pipeline
            if s in cfg.schemes and b in cfg.benchmarks
        ))
    if "shards" not in overrides:
        cfg = replace(cfg, shards=tuple(
            (s, b, n) for s, b, n in cfg.shards
            if s in cfg.schemes and b in cfg.benchmarks
        ))
    return cfg


def full_config(**overrides: Any) -> PerfConfig:
    """The default matrix. Its first cell (ring/mcf at L12, 2000
    requests) is the tracked headline cell. ``ab/mcf@s4`` is the
    tracked sharded cell: the same trace over a 4-subtree fleet."""
    base = PerfConfig(shards=(("ab", "mcf", 4),))
    return _prune_extras(replace(base, **overrides), overrides)


def smoke_config(**overrides: Any) -> PerfConfig:
    """A seconds-scale matrix for CI: four schemes, one trace.

    ``ns`` is the reshuffle-heavy cell (S=1 bottom levels force early
    reshuffles constantly) and ``dr``/``ab`` exercise the dead-block
    reclaim machinery (DeadQ gather/acquire, remote rentals), so the
    smoke matrix covers the vectorized reshuffle write-back path and
    the AB/DR bookkeeping, not just steady-state reads.
    """
    base = PerfConfig(
        schemes=("ring", "ab", "dr", "ns"),
        benchmarks=("mcf",),
        levels=10,
        n_requests=500,
        warmup_requests=100,
        repeats=1,
        smoke=True,
        # The reshuffle-heavy pipelined cell: ns/mcf at depth 4 is the
        # tracked >= 1.5x speedup cell (vs its serial ns/mcf twin).
        pipeline=(("ns", "mcf", 4),),
        # The sharded cell: ab/mcf over a 4-subtree fleet (makespan
        # measures the fleet effect against the serial ab/mcf twin).
        shards=(("ab", "mcf", 4),),
    )
    return _prune_extras(replace(base, **overrides), overrides)


def _environment() -> Dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "implementation": sys.implementation.name,
    }


def _sim_block(result: SimResult) -> Dict[str, Any]:
    return {
        "exec_ns": result.exec_ns,
        "ns_per_access": result.ns_per_access,
        "stash_peak": result.stash_peak,
        "reshuffles_total": int(sum(result.reshuffles_by_level)),
        "reshuffles_by_level": [int(x) for x in result.reshuffles_by_level],
        "dram_reads": int(result.dram_reads),
        "dram_writes": int(result.dram_writes),
        "row_hit_rate": result.row_hit_rate,
        "online_accesses": int(result.online_accesses),
        "background_accesses": int(result.background_accesses),
        "evictions": int(result.evictions),
        "dead_blocks": int(result.dead_blocks),
        "remote_accesses": int(result.remote_accesses),
    }


def _run_one_cell(
    cfg: PerfConfig, scheme_name: str, bench: str, depth: int = 1
) -> Tuple[float, SimResult]:
    """Best-of-``repeats`` wall time plus the (deterministic) result."""
    scheme = schemes_mod.by_name(scheme_name, cfg.levels)
    best = None
    result: Optional[SimResult] = None
    for _ in range(max(1, cfg.repeats)):
        t0 = time.perf_counter()
        out = run_suite(
            [scheme],
            suite=cfg.suite,
            benchmarks=[bench],
            n_requests=cfg.n_requests,
            warmup_requests=cfg.warmup_requests,
            seed=cfg.seed,
            sim=SimConfig(
                seed=cfg.seed,
                warmup_requests=cfg.warmup_requests,
                pipeline_depth=depth,
            ),
        )
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
        result = out[scheme.name][bench]
    assert best is not None and result is not None
    return best, result


def _run_sharded_cell(
    cfg: PerfConfig, scheme_name: str, bench: str, num_shards: int
) -> Tuple[float, Dict[str, Any]]:
    """Best-of-``repeats`` wall time plus the merged fleet sim block.

    The trace is the serial twin's trace exactly (same suite, block
    count, request count and seed), partitioned over ``num_shards``
    right-sized subtrees; ``exec_ns`` of the returned block is the
    fleet makespan.
    """
    from repro.core.sharding.sharded import run_sharded_sim

    scheme = schemes_mod.by_name(scheme_name, cfg.levels)
    trace = make_trace(
        cfg.suite, bench, scheme.n_real_blocks, cfg.n_requests,
        seed=cfg.seed,
    )
    best = None
    merged: Optional[Dict[str, Any]] = None
    for _ in range(max(1, cfg.repeats)):
        t0 = time.perf_counter()
        outcome = run_sharded_sim(
            scheme_name, trace, scheme.n_real_blocks, num_shards,
            warmup_requests=cfg.warmup_requests, seed=cfg.seed,
        )
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
        merged = outcome.merged_sim_block()
    assert best is not None and merged is not None
    return best, merged


def _record_telemetry(cfg: PerfConfig, sim: Dict[str, Any]) -> None:
    """Fold one cell's deterministic counters into the worker registry.

    Only deterministic quantities go into the registry (never wall
    time), so the merged snapshot is identical for serial and parallel
    sweeps.
    """
    reg = worker_registry()
    reg.counter("perf.cells").inc()
    reg.counter("perf.requests").inc(cfg.n_requests)
    reg.counter("perf.reshuffles").inc(sim["reshuffles_total"])
    reg.counter("perf.dram_reads").inc(sim["dram_reads"])
    reg.counter("perf.dram_writes").inc(sim["dram_writes"])
    reg.counter("perf.remote_accesses").inc(sim["remote_accesses"])
    reg.counter("perf.evictions").inc(sim["evictions"])
    reg.counter("perf.background_accesses").inc(sim["background_accesses"])
    reg.gauge("perf.stash_peak").set(sim["stash_peak"])
    reg.gauge("perf.dead_blocks").set(sim["dead_blocks"])
    reg.histogram("perf.exec_ns").observe(sim["exec_ns"])


def _perf_cell_task(
    payload: Tuple[PerfConfig, str, str, int, int]
) -> Dict[str, Any]:
    """One matrix cell, runnable in-process or in a spawn worker.

    Returns the finished report cell (plain JSON-able dict, so crossing
    the process boundary never pickles a SimResult or a callback).
    """
    cfg, scheme_name, bench, depth, num_shards = payload
    report_progress(f"running {_cell_label(scheme_name, bench, depth, num_shards)} ...")
    if num_shards > 1:
        wall, sim = _run_sharded_cell(cfg, scheme_name, bench, num_shards)
    else:
        wall, result = _run_one_cell(cfg, scheme_name, bench, depth)
        sim = _sim_block(result)
    if cfg.telemetry:
        _record_telemetry(cfg, sim)
    cell = {
        "scheme": scheme_name,
        "trace": bench,
        "wall_s": wall,
        "accesses_per_s": cfg.n_requests / wall if wall > 0 else 0.0,
        "sim": sim,
    }
    if depth > 1:
        cell["pipeline_depth"] = depth
    if num_shards > 1:
        cell["shards"] = num_shards
    return cell


def _cell_label(scheme: str, bench: str, depth: int, num_shards: int) -> str:
    label = f"{scheme}/{bench}"
    if depth > 1:
        label += f"@p{depth}"
    if num_shards > 1:
        label += f"@s{num_shards}"
    return label


def run_perf(cfg: Optional[PerfConfig] = None) -> Dict[str, Any]:
    """Run the matrix of ``cfg`` and return the report document.

    ``cfg.workers > 1`` fans the independent cells over a spawn pool;
    the merged ``cells`` list keeps matrix order and its ``sim`` blocks
    are bit-identical to a serial run (only ``wall_s`` is
    host-dependent). A cell whose worker raises -- or dies outright --
    becomes an ``{"scheme", "trace", "error"}`` entry instead of
    aborting the sweep.
    """
    cfg = cfg or full_config()
    # What ships to workers must be progress-free (callbacks do not
    # pickle; report_progress routes through the pool's queue) and
    # serial inside (parallelism lives at the matrix level).
    worker_cfg = replace(cfg, progress=None, workers=1)
    quads = [(s, b, 1, 1) for s in cfg.schemes for b in cfg.benchmarks]
    quads += [(s, b, int(d), 1) for s, b, d in cfg.pipeline]
    quads += [(s, b, 1, int(n)) for s, b, n in cfg.shards]
    outputs = run_cells(
        _perf_cell_task,
        [
            Cell(_cell_label(s, b, d, n), (worker_cfg, s, b, d, n))
            for s, b, d, n in quads
        ],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    for (scheme_name, bench, depth, num_shards), res in zip(quads, outputs):
        if res.ok:
            cells.append(res.value)
        else:
            err = {
                "scheme": scheme_name,
                "trace": bench,
                "error": res.error,
            }
            if depth > 1:
                err["pipeline_depth"] = depth
            if num_shards > 1:
                err["shards"] = num_shards
            cells.append(err)
    doc: Dict[str, Any] = {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }
    if cfg.telemetry:
        # Fold per-cell registry snapshots in submission order; the
        # result is independent of worker count and scheduling.
        doc["telemetry"] = merge_snapshots(
            [r.metrics for r in outputs if r.metrics is not None]
        )
    return doc
