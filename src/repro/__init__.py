"""AB-ORAM reproduction: adjustable buckets for space reduction in Ring ORAM.

A full-system reproduction of "AB-ORAM: Constructing Adjustable Buckets
for Space Reduction in Ring ORAM" (HPCA 2023): functional Ring ORAM and
Path ORAM controllers, the AB-ORAM dead-block-reclaim and non-uniform-S
schemes, a USIMM-style DRAM timing model, synthetic SPEC/PARSEC workload
generators, and a simulation harness regenerating every table and figure
of the paper's evaluation.

Entry points most users want::

    from repro import AbOram, schemes
    from repro.sim import simulate

    oram = AbOram.from_scheme("ab", levels=14, store_data=True)
    oram.write(0, b"hello")
    print(oram.read(0))
"""

from repro.core.ab_oram import AbOram, build_oram
from repro.core import schemes
from repro.oram.config import BucketGeometry, OramConfig
from repro.app.kvstore import ObliviousKV

__version__ = "1.0.0"

__all__ = [
    "AbOram",
    "build_oram",
    "schemes",
    "BucketGeometry",
    "OramConfig",
    "ObliviousKV",
    "__version__",
]
