"""Deterministic fault injection (``python -m repro faults``).

This package makes the robustness of the secure data path measurable,
the way :mod:`repro.perf` made its speed measurable:

- :mod:`repro.faults.plan` -- :class:`FaultPlan`, a seed-pinned
  description of *which* operations fail and *how*. Every draw is a
  pure hash of (seed, kind, operation index, bucket, slot), so a
  campaign replays bit-identically on any platform.
- :mod:`repro.faults.memory` -- :class:`FaultyMemory`, a wrapper over
  :class:`~repro.oram.datastore.EncryptedTreeStore` that injects bit
  flips, stale-read replays, dropped writes and transient backend
  outages, and attributes each detection to its injected fault.
- :mod:`repro.faults.campaign` -- the fault type x rate sweep behind
  ``python -m repro faults run``, producing ``BENCH_faults.json``.
- :mod:`repro.faults.schema` / :mod:`repro.faults.report` -- the report
  format (validation without third-party libraries) and its rendering.
"""

from repro.faults.memory import FaultyMemory
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.faults.schema import SCHEMA_VERSION, validate_report

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyMemory",
    "SCHEMA_VERSION",
    "validate_report",
]
