"""Fault-injecting wrapper over the encrypted tree store.

:class:`FaultyMemory` sits between the Ring ORAM controller and an
:class:`~repro.oram.datastore.EncryptedTreeStore` and plays the
*untrusted memory* of the threat model: on operations selected by a
:class:`~repro.faults.plan.FaultPlan` it corrupts what the store would
have returned -- then lets the store's own MAC/Merkle machinery (and
the controller's recovery ladder) deal with the damage.

Injection happens at the wrapper so that *detection attribution* is
exact: when the inner store raises on an operation the wrapper just
corrupted, the detection is credited to that fault kind. Faults the
protocol never observes are tracked too: a dropped write overwritten
by a later seal is *masked*; one never touched again is *latent*.

With every rate at zero the wrapper is a bit-identical passthrough:
it draws no randomness and performs exactly the inner store's work.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.crypto.auth import AuthenticationError
from repro.crypto.integrity import IntegrityError
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.oram.datastore import SlotSnapshot
from repro.oram.recovery import TransientBackendError

SlotKey = Tuple[int, int]


class FaultyMemory:
    """Deterministic adversary-in-the-middle for the sealed data path."""

    def __init__(self, inner: Any, plan: FaultPlan, armed: bool = True) -> None:
        self.inner = inner
        self.plan = plan
        self.armed = armed
        self.op_index = 0
        self.injected: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.detected: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.undetected: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.masked_drops = 0
        # Previous sealed triple per slot -- replay ammunition.
        self._history: Dict[SlotKey, SlotSnapshot] = {}
        # Dropped writes whose corruption is still in memory.
        self._outstanding_drops: Dict[SlotKey, int] = {}
        # Active outage: (slot key, remaining raises).
        self._outage: Optional[Tuple[SlotKey, int]] = None

    def __getattr__(self, name: str) -> Any:
        # Everything not intercepted (verify_path, integrity, counters,
        # layout, attack hooks, ...) passes straight through. Dunder and
        # private lookups must fail normally or pickling recurses.
        if name.startswith("_") or name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # ------------------------------------------------------------- sealing

    def seal_slot(self, bucket: int, slot: int, plaintext: bytes) -> None:
        op = self.op_index
        self.op_index += 1
        key = (bucket, slot)
        prev: Optional[SlotSnapshot] = None
        if (bucket, slot) in self.inner._tags:
            prev = self.inner.snapshot_slot(bucket, slot)
        self.inner.seal_slot(bucket, slot, plaintext)
        if key in self._outstanding_drops:
            # The reseal overwrote the dropped write before anything
            # could notice it -- the fault is masked, not detected.
            del self._outstanding_drops[key]
            self.masked_drops += 1
        if prev is not None:
            self._history[key] = prev
        if not self.armed or prev is None:
            return
        if self.plan.pick_seal_fault(op, bucket, slot) == "dropped_write":
            # The write never lands: old ciphertext + tag survive in
            # memory while the trusted version and the Merkle content
            # digest already moved on.
            self.inner.restore_slot(bucket, slot, prev)
            self.injected["dropped_write"] += 1
            self._outstanding_drops[key] = op

    def seal_dummy(self, bucket: int, slot: int) -> None:
        # Routed through our own seal_slot (not the inner one) so dummy
        # writes are injectable too; the plaintext comes from the inner
        # RNG exactly as an unwrapped seal_dummy would draw it.
        self.seal_slot(bucket, slot, self.inner._dummy_plaintext())

    def seal_many(self, items: Any) -> None:
        # Must be implemented here, not left to __getattr__: the
        # passthrough would hand the batch to the inner store and the
        # whole reshuffle write-back would escape fault injection.
        # Looping our own seal_slot/seal_dummy keeps the per-seal op
        # indices, injections and RNG draws identical to scalar calls.
        for bucket, slot, plaintext in items:
            if plaintext is None:
                self.seal_dummy(bucket, slot)
            else:
                self.seal_slot(bucket, slot, plaintext)

    # ------------------------------------------------------------- opening

    def open_slot(self, bucket: int, slot: int) -> bytes:
        op = self.op_index
        self.op_index += 1
        key = (bucket, slot)
        if self._outage is not None and self._outage[0] == key:
            remaining = self._outage[1]
            if remaining > 0:
                self._outage = (key, remaining - 1)
                raise TransientBackendError(
                    f"backend unavailable for slot {key} (outage ongoing)"
                )
            self._outage = None
        kind = self.plan.pick_open_fault(op, bucket, slot) if self.armed else None
        if kind == "unavailable":
            self.injected["unavailable"] += 1
            self.detected["unavailable"] += 1   # overt: the error IS the fault
            remaining = self.plan.outage_ops(op, bucket, slot)
            if remaining > 1:
                self._outage = (key, remaining - 1)
            raise TransientBackendError(
                f"backend unavailable for slot {key} (injected at op {op})"
            )
        if kind == "bit_flip":
            self.injected["bit_flip"] += 1
            self.inner.tamper_payload(
                bucket, slot,
                flip_byte=self.plan.flip_byte(op, bucket, slot,
                                              self.inner.cfg.block_bytes),
            )
            return self._open_expecting(bucket, slot, "bit_flip")
        if kind == "replay" and key in self._history:
            self.injected["replay"] += 1
            self.inner.restore_slot(bucket, slot, self._history[key],
                                    restore_version=True, rehash=True)
            return self._open_expecting(bucket, slot, "replay")
        return self._open_plain(bucket, slot)

    def _open_expecting(self, bucket: int, slot: int, kind: str) -> bytes:
        """Open a slot we just corrupted; credit the detection (or not)."""
        try:
            value = self.inner.open_slot(bucket, slot)
        except (AuthenticationError, IntegrityError):
            self.detected[kind] += 1
            raise
        # The corruption went through: a successful replay returns the
        # stale plaintext, a missed bit flip returns garbage.
        self.undetected[kind] += 1
        return value

    def _open_plain(self, bucket: int, slot: int) -> bytes:
        """Open with no fresh fault; older dropped writes may surface."""
        try:
            return self.inner.open_slot(bucket, slot)
        except (AuthenticationError, IntegrityError):
            credited = [
                k for k in self._outstanding_drops if k[0] == bucket
            ]
            for k in credited:
                del self._outstanding_drops[k]
                self.detected["dropped_write"] += 1
            raise

    # ------------------------------------------------------------- queries

    @property
    def latent_drops(self) -> int:
        """Dropped writes still sitting undetected in memory."""
        return len(self._outstanding_drops)

    def summary(self) -> Dict[str, Any]:
        """Deterministic injection/detection ledger for reports."""
        return {
            "ops": self.op_index,
            "injected": {k: self.injected[k] for k in FAULT_KINDS},
            "detected": {k: self.detected[k] for k in FAULT_KINDS},
            "undetected": {k: self.undetected[k] for k in FAULT_KINDS},
            "masked_drops": self.masked_drops,
            "latent_drops": self.latent_drops,
        }
