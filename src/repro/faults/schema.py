"""The ``BENCH_faults.json`` report format.

Mirrors :mod:`repro.perf.schema`: machine-checkable with the stock
interpreter, no third-party schema library. Unlike the perf report,
every field here is *deterministic* -- there are no wall-clock numbers
and no timestamps -- so two back-to-back runs of the same campaign
produce byte-identical files, and CI can diff them directly.

Top-level document::

    {
      "kind": "repro-faults-report",
      "schema_version": 1,
      "config":      { campaign definition, seeds, policy knobs },
      "environment": { "python": ..., "numpy": ..., "platform": ... },
      "doctor":      [ robustness findings as strings ],
      "baseline":    { fault-free run: exec_ns, stash_peak, ... },
      "cells":       [ { cell }, ... ]
    }

One cell per (fault kind, rate) pair::

    {
      "fault": "bit_flip", "rate": 0.005,
      "injected": ..., "detected": ..., "undetected": ...,
      "masked": ..., "latent": ...,        # dropped-write bookkeeping
      "detection_rate": ...,               # detected / observed
      "recovered": ..., "unrecovered": ..., "recovery_rate": ...,
      "retries": ..., "rebuilds": ..., "quarantines": ...,
      "payload_resets": ..., "stash_served": ...,
      "exec_ns": ..., "overhead_x": ...,   # vs the fault-free baseline
      "stash_peak": ...
    }

``detection_rate`` divides by *observed* faults (detected +
undetected): masked dropped writes (overwritten before any read) and
latent ones (never touched again) are excluded by construction.

A cell whose worker failed (crashed process, raised exception) is
recorded as an *error cell* instead of silently shrinking the sweep::

    { "fault": "bit_flip", "rate": 0.01, "error": "<traceback or note>" }

Error cells validate against that three-field shape only; the
``--require-detection`` CI gate treats an errored tampering cell as a
detection gap, never as a pass.
"""

from __future__ import annotations

from typing import Any, Dict, List

SCHEMA_VERSION = 1
REPORT_KIND = "repro-faults-report"

_CONFIG_FIELDS = {
    "scheme": str,
    "suite": str,
    "bench": str,
    "levels": int,
    "n_requests": int,
    "warmup_requests": int,
    "seed": int,
    "kinds": list,
    "rates": list,
    "retry_budget": int,
    "backoff_base_ns": (int, float),
    "quarantine": bool,
    "integrity": bool,
    "max_outage_ops": int,
    "smoke": bool,
}

_BASELINE_FIELDS = {
    "exec_ns": (int, float),
    "stash_peak": int,
    "seals": int,
    "opens": int,
}

_CELL_FIELDS = {
    "fault": str,
    "rate": (int, float),
    "injected": int,
    "detected": int,
    "undetected": int,
    "masked": int,
    "latent": int,
    "detection_rate": (int, float),
    "recovered": int,
    "unrecovered": int,
    "recovery_rate": (int, float),
    "retries": int,
    "rebuilds": int,
    "quarantines": int,
    "payload_resets": int,
    "stash_served": int,
    "exec_ns": (int, float),
    "overhead_x": (int, float),
    "stash_peak": int,
}

_ERROR_CELL_FIELDS = {
    "fault": str,
    "rate": (int, float),
    "error": str,
}


def _check_fields(
    obj: Dict[str, Any], fields: Dict[str, Any], where: str, errors: List[str]
) -> None:
    for name, typ in fields.items():
        if name not in obj:
            errors.append(f"{where}: missing field {name!r}")
            continue
        val = obj[name]
        if typ is bool:
            ok = isinstance(val, bool)
        elif isinstance(val, bool):
            # bool subclasses int; reject it where a number is expected.
            ok = False
        else:
            ok = isinstance(val, typ)
        if not ok:
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(val).__name__}, expected {typ}"
            )


def validate_report(doc: Any) -> List[str]:
    """Validate a parsed report; returns a list of problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report root is {type(doc).__name__}, expected object"]
    if doc.get("kind") != REPORT_KIND:
        errors.append(f"kind is {doc.get('kind')!r}, expected {REPORT_KIND!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config: missing or not an object")
    else:
        _check_fields(config, _CONFIG_FIELDS, "config", errors)
    env = doc.get("environment")
    if not isinstance(env, dict):
        errors.append("environment: missing or not an object")
    doctor = doc.get("doctor")
    if not isinstance(doctor, list):
        errors.append("doctor: missing or not a list")
    baseline = doc.get("baseline")
    if not isinstance(baseline, dict):
        errors.append("baseline: missing or not an object")
    else:
        _check_fields(baseline, _BASELINE_FIELDS, "baseline", errors)
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing, not a list, or empty")
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        if "error" in cell:
            _check_fields(cell, _ERROR_CELL_FIELDS, where, errors)
        else:
            _check_fields(cell, _CELL_FIELDS, where, errors)
            det = cell.get("detection_rate")
            if isinstance(det, (int, float)) and not isinstance(det, bool):
                if not 0.0 <= det <= 1.0:
                    errors.append(
                        f"{where}: detection_rate must be in [0, 1], got {det}"
                    )
        key = (cell.get("fault"), cell.get("rate"))
        if key in seen:
            errors.append(f"{where}: duplicate cell {key}")
        seen.add(key)
        rate = cell.get("rate")
        if isinstance(rate, (int, float)) and not isinstance(rate, bool):
            if not 0.0 <= rate <= 1.0:
                errors.append(f"{where}: rate must be in [0, 1], got {rate}")
    return errors


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of one campaign cell."""
    return f"{cell['fault']}@{cell['rate']:g}"
