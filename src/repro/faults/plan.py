"""Seed-pinned fault plans.

A :class:`FaultPlan` decides, for every wrapper operation the
:class:`~repro.faults.memory.FaultyMemory` performs, whether a fault
fires and with what parameters. Decisions are *stateless*: each is a
pure function of ``(seed, kind, op index, bucket, slot)`` hashed
through BLAKE2b, so a campaign is reproducible across processes,
platforms and checkpoint/resume boundaries -- nothing about the draw
depends on Python's RNG state or on how many faults fired before.

Fault kinds (the taxonomy of docs/robustness.md):

- ``bit_flip``      -- one ciphertext byte is flipped on a read;
- ``replay``        -- a stale but internally consistent (ciphertext,
                       tag, version) triple is served, with the Merkle
                       chain consistently rebuilt (strongest replay);
- ``dropped_write`` -- a seal's bytes never reach memory: the previous
                       ciphertext + tag survive;
- ``unavailable``   -- the backend refuses the access for a bounded
                       number of attempts (transient outage).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

FAULT_KINDS = ("bit_flip", "replay", "dropped_write", "unavailable")

#: Kinds injected on ``open_slot`` (read-side), in priority order: at
#: most one fault fires per operation.
_OPEN_KINDS = ("unavailable", "bit_flip", "replay")


def _unit(seed: int, tag: str, op: int, bucket: int, slot: int) -> float:
    """Deterministic uniform draw in [0, 1) keyed by the full tuple."""
    h = hashlib.blake2b(
        f"{seed}|{tag}|{op}|{bucket}|{slot}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(h, "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """Which operations fail, decided by hashing, never by state.

    ``rates`` maps a fault kind to its per-eligible-operation
    probability; kinds absent from the mapping never fire. ``start_op``
    suppresses injection for the first operations (e.g. warm-fill).
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    start_op: int = 0
    max_outage_ops: int = 2

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1], got {rate}")
        if self.max_outage_ops < 1:
            raise ValueError("max_outage_ops must be >= 1")
        # Freeze the mapping so plans are hashable/immutable in spirit.
        object.__setattr__(self, "rates", dict(self.rates))

    # ------------------------------------------------------------- queries

    @property
    def any_enabled(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def _fires(self, kind: str, op: int, bucket: int, slot: int) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0 or op < self.start_op:
            return False
        return _unit(self.seed, kind, op, bucket, slot) < rate

    def pick_open_fault(self, op: int, bucket: int, slot: int) -> Optional[str]:
        """The fault (if any) striking this ``open_slot`` operation."""
        for kind in _OPEN_KINDS:
            if self._fires(kind, op, bucket, slot):
                return kind
        return None

    def pick_seal_fault(self, op: int, bucket: int, slot: int) -> Optional[str]:
        """The fault (if any) striking this ``seal_slot`` operation."""
        if self._fires("dropped_write", op, bucket, slot):
            return "dropped_write"
        return None

    def outage_ops(self, op: int, bucket: int, slot: int) -> int:
        """How many consecutive attempts an outage swallows (>= 1)."""
        draw = _unit(self.seed, "outage_len", op, bucket, slot)
        return 1 + int(draw * self.max_outage_ops)

    def flip_byte(self, op: int, bucket: int, slot: int, block_bytes: int) -> int:
        """Which ciphertext byte a bit flip corrupts."""
        draw = _unit(self.seed, "flip_byte", op, bucket, slot)
        return int(draw * block_bytes) % block_bytes

    # ----------------------------------------------------------- serialize

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rates": dict(sorted(self.rates.items())),
            "start_op": self.start_op,
            "max_outage_ops": self.max_outage_ops,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            rates=dict(data.get("rates", {})),
            start_op=int(data.get("start_op", 0)),
            max_outage_ops=int(data.get("max_outage_ops", 2)),
        )
