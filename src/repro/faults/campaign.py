"""The fault-injection campaign: sweep fault kind x rate, measure
detection and recovery.

One campaign is a fault-free *baseline* run plus one cell per (fault
kind, rate) pair, all replaying the identical trace against the
identical scheme with the identical seeds -- so a cell's ``exec_ns``
differs from the baseline's only through the recovery work the
injected faults caused (retries with backoff, quarantine rebuilds).

Every number in the report is deterministic: the trace, warm fill,
protocol RNG and fault draws are all seed-pinned and there are no
wall-clock measurements, so two runs of the same campaign emit
byte-identical JSON. That is what lets CI assert 100% detection for
tampering faults instead of eyeballing a flaky ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.core import schemes as schemes_mod
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.parallel.executor import Cell, report_progress, run_cells, worker_registry
from repro.faults.schema import REPORT_KIND, SCHEMA_VERSION
from repro.telemetry.metrics import merge_snapshots
from repro.oram.recovery import RobustnessConfig
from repro.oram.validate import diagnose_robustness
from repro.perf.runner import _environment
from repro.sim.engine import SimConfig, Simulation
from repro.sim.results import SimResult
from repro.sim.runner import make_trace


@dataclass
class CampaignConfig:
    """One campaign invocation (the report's ``config`` block)."""

    scheme: str = "ring"
    suite: str = "spec"
    bench: str = "mcf"
    levels: int = 10
    n_requests: int = 600
    warmup_requests: int = 0
    seed: int = 0
    kinds: Sequence[str] = FAULT_KINDS
    rates: Sequence[float] = (0.002, 0.01)
    retry_budget: int = 3
    backoff_base_ns: float = 200.0
    quarantine: bool = True
    integrity: bool = True
    max_outage_ops: int = 2
    smoke: bool = False
    #: Process-pool width for the kind x rate cells. Not part of
    #: to_dict(): the report's config block describes the sweep's
    #: *content*, which worker count must never change.
    workers: int = 1
    progress: Any = field(default=None, repr=False)  # callable(str)
    #: Collect a merged metrics-registry snapshot across the sweep.
    #: Excluded from to_dict() like workers/progress: the report's
    #: config block is compared byte-for-byte across runs and telemetry
    #: never changes what the cells compute.
    telemetry: bool = False

    def __post_init__(self) -> None:
        unknown = sorted(set(self.kinds).difference(FAULT_KINDS))
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown}; choose from {FAULT_KINDS}"
            )
        for r in self.rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fault rate must be in [0, 1], got {r}")
        if not self.rates:
            raise ValueError("need at least one fault rate")
        if not self.kinds:
            raise ValueError("need at least one fault kind")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "suite": self.suite,
            "bench": self.bench,
            "levels": self.levels,
            "n_requests": self.n_requests,
            "warmup_requests": self.warmup_requests,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rates": [float(r) for r in self.rates],
            "retry_budget": self.retry_budget,
            "backoff_base_ns": float(self.backoff_base_ns),
            "quarantine": self.quarantine,
            "integrity": self.integrity,
            "max_outage_ops": self.max_outage_ops,
            "smoke": self.smoke,
        }


def full_config(**overrides: Any) -> CampaignConfig:
    """The default sweep: every fault kind at two rates."""
    return replace(CampaignConfig(), **overrides)


def smoke_config(**overrides: Any) -> CampaignConfig:
    """A seconds-scale campaign for CI: one rate, a small tree."""
    base = CampaignConfig(
        levels=9,
        n_requests=250,
        rates=(0.01,),
        smoke=True,
    )
    return replace(base, **overrides)


def _robustness(cfg: CampaignConfig) -> RobustnessConfig:
    return RobustnessConfig(
        integrity=cfg.integrity,
        retry_budget=cfg.retry_budget,
        backoff_base_ns=cfg.backoff_base_ns,
        quarantine=cfg.quarantine,
    )


def _run_one(
    cfg: CampaignConfig, plan: Optional[FaultPlan]
) -> SimResult:
    scheme = schemes_mod.by_name(cfg.scheme, cfg.levels)
    trace = make_trace(
        cfg.suite, cfg.bench, scheme.n_real_blocks, cfg.n_requests,
        seed=cfg.seed,
    )
    sim = SimConfig(
        seed=cfg.seed,
        warmup_requests=cfg.warmup_requests,
        robustness=_robustness(cfg),
        fault_plan=plan,
    )
    return Simulation(scheme, trace, sim).run()


def _cell(
    kind: str,
    rate: float,
    result: SimResult,
    baseline_exec_ns: float,
) -> Dict[str, Any]:
    rb = result.robustness or {}
    f = rb.get("faults") or {}
    c = rb.get("counters") or {}
    injected = int(sum((f.get("injected") or {}).values()))
    detected = int(sum((f.get("detected") or {}).values()))
    undetected = int(sum((f.get("undetected") or {}).values()))
    observed = detected + undetected
    pending = int(c.get("quarantines", 0)) - int(c.get("rebuilds", 0))
    recovered = int(c.get("recovered", 0)) + int(c.get("transient_recovered", 0))
    unrecovered = int(c.get("unrecovered", 0)) + max(0, pending)
    return {
        "fault": kind,
        "rate": float(rate),
        "injected": injected,
        "detected": detected,
        "undetected": undetected,
        "masked": int(f.get("masked_drops", 0)),
        "latent": int(f.get("latent_drops", 0)),
        # Observed = detected + undetected; masked drops (overwritten
        # before any read) and latent ones (never read again) are not
        # detection opportunities and sit outside the denominator.
        "detection_rate": (detected / observed) if observed else 1.0,
        "recovered": recovered,
        "unrecovered": unrecovered,
        "recovery_rate": (
            recovered / (recovered + unrecovered)
            if (recovered + unrecovered) else 1.0
        ),
        "retries": int(c.get("retries", 0)),
        "rebuilds": int(c.get("rebuilds", 0)),
        "quarantines": int(c.get("quarantines", 0)),
        "payload_resets": int(c.get("payload_resets", 0)),
        "stash_served": int(c.get("stash_served_reads", 0)),
        "exec_ns": float(result.exec_ns),
        "overhead_x": (
            float(result.exec_ns) / baseline_exec_ns
            if baseline_exec_ns > 0 else 0.0
        ),
        "stash_peak": int(result.stash_peak),
    }


def _campaign_cell_task(payload: Any) -> Dict[str, Any]:
    """One (kind, rate) cell, runnable in-process or in a spawn worker.

    Returns the finished report cell; the baseline's exec_ns rides in
    the payload so workers never need shared state.
    """
    cfg, kind, rate, baseline_exec_ns = payload
    report_progress(f"injecting {kind} at rate {rate:g} ...")
    plan = FaultPlan(
        seed=cfg.seed,
        rates={kind: float(rate)},
        max_outage_ops=cfg.max_outage_ops,
    )
    result = _run_one(cfg, plan)
    cell = _cell(kind, rate, result, baseline_exec_ns)
    if cfg.telemetry:
        # Every recorded quantity is deterministic (seed-pinned fault
        # draws, no wall clock), so serial and parallel sweeps merge to
        # the identical snapshot.
        reg = worker_registry()
        reg.counter("faults.cells").inc()
        reg.counter("faults.injected").inc(cell["injected"])
        reg.counter("faults.detected").inc(cell["detected"])
        reg.counter("faults.undetected").inc(cell["undetected"])
        reg.counter("faults.retries").inc(cell["retries"])
        reg.counter("faults.rebuilds").inc(cell["rebuilds"])
        reg.counter("faults.quarantines").inc(cell["quarantines"])
        reg.counter("faults.recovered").inc(cell["recovered"])
        reg.counter("faults.unrecovered").inc(cell["unrecovered"])
        reg.gauge("faults.stash_peak").set(cell["stash_peak"])
        reg.histogram("faults.overhead_x", bounds=tuple(
            1.0 + 0.25 * i for i in range(1, 41)
        )).observe(cell["overhead_x"])
    return cell


def run_campaign(cfg: Optional[CampaignConfig] = None) -> Dict[str, Any]:
    """Run the sweep of ``cfg`` and return the report document.

    The fault-free baseline always runs first (serially -- every cell
    normalizes against it); ``cfg.workers > 1`` then fans the kind x
    rate cells over a spawn pool. The report contains no wall-clock
    fields, so serial and parallel runs emit byte-identical JSON. A
    cell whose worker raises -- or dies outright -- becomes an
    ``{"fault", "rate", "error"}`` entry instead of aborting the sweep.
    """
    cfg = cfg or full_config()
    doctor = diagnose_robustness(
        _robustness(cfg), n_requests=cfg.n_requests, faults_enabled=True
    )
    if cfg.progress is not None:
        cfg.progress("running fault-free baseline ...")
    base = _run_one(cfg, plan=None)
    base_rb = base.robustness or {}
    base_ds = base_rb.get("datastore") or {}
    baseline = {
        "exec_ns": float(base.exec_ns),
        "stash_peak": int(base.stash_peak),
        "seals": int(base_ds.get("seals", 0)),
        "opens": int(base_ds.get("opens", 0)),
    }
    # What ships to workers must be progress-free (callbacks do not
    # pickle; report_progress routes through the pool's queue).
    worker_cfg = replace(cfg, progress=None, workers=1)
    pairs = [(kind, rate) for kind in cfg.kinds for rate in cfg.rates]
    outputs = run_cells(
        _campaign_cell_task,
        [
            Cell(f"{kind}@{rate:g}", (worker_cfg, kind, rate, baseline["exec_ns"]))
            for kind, rate in pairs
        ],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    for (kind, rate), res in zip(pairs, outputs):
        if res.ok:
            cells.append(res.value)
        else:
            cells.append({
                "fault": kind,
                "rate": float(rate),
                "error": res.error,
            })
    doc: Dict[str, Any] = {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "doctor": [str(fd) for fd in doctor],
        "baseline": baseline,
        "cells": cells,
    }
    if cfg.telemetry:
        # Per-cell snapshots fold in submission order, so the merged
        # block is independent of worker count and scheduling.
        doc["telemetry"] = merge_snapshots(
            [r.metrics for r in outputs if r.metrics is not None]
        )
    return doc
