"""Human-readable rendering of fault-campaign reports."""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.report import render_mapping_table
from repro.faults.schema import cell_key


def render_report(doc: Dict[str, Any]) -> str:
    """Text table of one campaign's cells, baseline header included."""
    cfg = doc["config"]
    base = doc["baseline"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        rows.append({
            "cell": cell_key(cell),
            "inj": cell["injected"],
            "det": cell["detected"],
            "undet": cell["undetected"],
            "masked": cell["masked"],
            "latent": cell["latent"],
            "det_rate": cell["detection_rate"],
            "recov": cell["recovered"],
            "unrec": cell["unrecovered"],
            "rebuilds": cell["rebuilds"],
            "retries": cell["retries"],
            "overhead_x": cell["overhead_x"],
            "stash_peak": cell["stash_peak"],
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"fault campaign ({flavor}): {cfg['scheme']}/{cfg['bench']} "
        f"L={cfg['levels']} requests={cfg['n_requests']} "
        f"seed={cfg['seed']} integrity={'on' if cfg['integrity'] else 'off'} "
        f"| baseline exec_ns={base['exec_ns']:.0f}"
    )
    if rows:
        lines = [render_mapping_table(rows, title=title)]
    else:
        lines = [f"{title}\n(no completed cells)"]
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {cell_key(cell)}: {first[0] if first else 'cell failed'}"
        )
    if doc.get("doctor"):
        lines.append("doctor findings:")
        lines.extend(f"  {finding}" for finding in doc["doctor"])
    return "\n".join(lines)
