"""Remote allocation: AB-ORAM's extra level of address mapping.

A bucket at a DR level is physically allocated with a reduced ``S`` and,
at every reshuffle, tries to *extend* it back by renting
``remote_extension`` dead slots from its level's DeadQ (strategy (2) of
the paper's section V-C1). The rented slots become extra logical slots
of the renting bucket: its reshuffle scatters real blocks and dummies
uniformly across local + remote positions, so a readPath redirected to
a remote address is indistinguishable from any other read (this is what
keeps the paper's Fig. 7 attacker at exactly 1/L -- if remote slots
only ever held dummies, the cleartext mapping would let an attacker
exclude them from guessing).

Lifecycle of a rented slot:

1. some bucket's slot dies (a readPath consumes it) -> status DEAD;
2. ``gather`` sees it during a later readPath's metadata pass and
   queues it in its level's DeadQ -> status QUEUED;
3. a reshuffling bucket rents it (``acquire``) -> status IN_USE; the
   renter writes fresh content (real block or dummy) to the host
   address. The *logical* content is tracked here -- the host bucket's
   own slot row keeps showing CONSUMED so host-side scans never touch
   the rented slot;
4. either a readPath of the renter consumes the remote slot (it turns
   DEAD again and may be gathered anew), or the renter's next reshuffle
   returns it unconsumed to the DeadQ (``reclaim`` -> QUEUED).

Extension is all-or-nothing per bucket ("dynamicS is extended to S+2
only for the buckets that allocate their two logical tree blocks in
reclaimed dead blocks"); the grant/attempt ratio is the paper's Fig. 14
metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dead_queue import DeadQueueSet
from repro.oram.bucket import (
    CONSUMED,
    DUMMY,
    ST_IN_USE,
    ST_QUEUED,
    BucketStore,
    SlotStatus,
)
from repro.oram.config import OramConfig


class RemoteAllocator:
    """The AB-ORAM extension object plugged into a RingOram controller."""

    def __init__(self, cfg: OramConfig) -> None:
        self.cfg = cfg
        self.queues = DeadQueueSet(cfg.deadq_levels, cfg.deadq_capacity)
        # renter bucket -> list of unconsumed [host_bucket, host_slot, content]
        self._rentals: Dict[int, List[List[int]]] = {}
        self._store: Optional[BucketStore] = None
        self.extension_attempts = 0
        self.extension_grants = 0
        self.remote_reads = 0
        self.remote_real_reads = 0
        self.reclaimed_slots = 0

    # ------------------------------------------------------------- binding

    def bind(self, controller) -> None:
        """Attach to a RingOram controller (called by its constructor)."""
        self._store = controller.store

    @property
    def store(self) -> BucketStore:
        if self._store is None:
            raise RuntimeError("RemoteAllocator not bound to a controller")
        return self._store

    # -------------------------------------------------------------- gather

    def gather(self, bucket: int, level: int) -> int:
        """gatherDEADs: queue the DEAD slots of ``bucket`` (readPath hook).

        Only tracked levels participate; a bucket always keeps at least
        one non-ALLOCATED slot so it can serve a readPath even when no
        extension is granted. Returns how many slots were queued.
        """
        queue = self.queues.get(level)
        if queue is None or queue.is_full:
            return 0
        store = self.store
        dead = store.dead_slots(bucket)
        if not dead.size:
            return 0
        z = store.z_phys(bucket)
        st = store.status[bucket, :z]
        allocated = int(
            ((st == ST_QUEUED) | (st == ST_IN_USE)).sum()
        )
        queued = 0
        for slot in dead:
            if allocated >= z - 1 or queue.is_full:
                break
            slot = int(slot)
            if queue.push(bucket, slot, store.slot_generation(bucket, slot)):
                store.set_status(bucket, slot, SlotStatus.QUEUED)
                allocated += 1
                queued += 1
        return queued

    # ---------------------------------------------------------- extension

    def acquire(self, bucket: int, level: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Try to rent ``remote_extension`` dead slots for ``bucket``.

        Returns ``(granted_extension, host_slots)``. All-or-nothing: on
        shortage every popped entry goes back and the grant is 0. The
        caller assigns contents via :meth:`write_remote` and reports
        the memory writes.
        """
        r = self.cfg.geometry[level].remote_extension
        if r == 0:
            return 0, []
        queue = self.queues.get(level)
        self.extension_attempts += 1
        if queue is None:
            return 0, []
        store = self.store
        got: List[Tuple[int, int]] = []
        rejected: List[Tuple[int, int]] = []
        while len(got) < r:
            entry = queue.pop_valid(store)
            if entry is None:
                break
            if entry[0] == bucket:
                # Renting a slot from the bucket being reshuffled would
                # just shrink its own usable set; skip it.
                rejected.append(entry)
                continue
            got.append(entry)
        for hb, hs in rejected:
            queue.requeue_front(hb, hs, store.slot_generation(hb, hs))
        if len(got) < r:
            for hb, hs in got:
                queue.requeue_front(hb, hs, store.slot_generation(hb, hs))
            return 0, []
        for hb, hs in got:
            store.set_status(hb, hs, SlotStatus.IN_USE)
            # The host's own row must never expose the rented slot.
            store.set_slot(hb, hs, CONSUMED)
        self._rentals[bucket] = [[hb, hs, DUMMY] for hb, hs in got]
        self.extension_grants += 1
        return r, list(got)

    def write_remote(self, bucket: int, host: Tuple[int, int], content: int) -> None:
        """Set the logical content (block id or DUMMY) of a rented slot."""
        for entry in self._rentals.get(bucket, ()):
            if (entry[0], entry[1]) == host:
                entry[2] = content
                return
        raise KeyError(f"bucket {bucket} does not rent slot {host}")

    def reclaim(self, bucket: int) -> Tuple[List[int], List[Tuple[int, int]]]:
        """End ``bucket``'s rental round (its reshuffle begins).

        Unconsumed rented slots return to their level's DeadQ; any real
        blocks they held are handed back for the caller to stash.
        Returns ``(real_blocks, released_host_slots)``.
        """
        rentals = self._rentals.pop(bucket, None)
        if not rentals:
            return [], []
        store = self.store
        reals: List[int] = []
        released: List[Tuple[int, int]] = []
        for hb, hs, content in rentals:
            if content >= 0:
                reals.append(content)
            released.append((hb, hs))
            level = store.level(hb)
            queue = self.queues.get(level)
            store.set_status(hb, hs, SlotStatus.QUEUED)
            gen = store.slot_generation(hb, hs)
            if queue is None or not queue.push(hb, hs, gen):
                # Queue full: the slot stays dead until its host bucket
                # reshuffles over it.
                store.set_status(hb, hs, SlotStatus.DEAD)
            self.reclaimed_slots += 1
        return reals, released

    # ------------------------------------------------------- readPath side

    def rentals_of(self, bucket: int) -> List[List[int]]:
        """Unconsumed rented slots of ``bucket`` as [hb, hs, content]."""
        return self._rentals.get(bucket, [])

    def find_remote_block(self, bucket: int, block: int) -> Optional[Tuple[int, int]]:
        """Host location of ``block`` if ``bucket`` stores it remotely."""
        for hb, hs, content in self._rentals.get(bucket, ()):
            if content == block:
                return hb, hs
        return None

    def consume_remote(self, bucket: int, host: Tuple[int, int]) -> int:
        """Serve a readPath from a rented slot; returns its content.

        The host slot turns DEAD (gatherable again); the renter's access
        count advances exactly as for a local read.
        """
        rentals = self._rentals.get(bucket)
        if not rentals:
            raise RuntimeError(f"bucket {bucket} has no unconsumed remote slots")
        for i, (hb, hs, content) in enumerate(rentals):
            if (hb, hs) == host:
                rentals.pop(i)
                store = self.store
                store.set_slot(hb, hs, CONSUMED)
                store.set_status(hb, hs, SlotStatus.DEAD)
                store.count[bucket] += 1
                self.remote_reads += 1
                if content >= 0:
                    self.remote_real_reads += 1
                if not rentals:
                    self._rentals.pop(bucket, None)
                return content
        raise KeyError(f"bucket {bucket} does not rent slot {host}")

    # ------------------------------------------------------------- metrics

    @property
    def extension_ratio(self) -> float:
        """Granted / attempted extensions (the paper's Fig. 14)."""
        if self.extension_attempts == 0:
            return 0.0
        return self.extension_grants / self.extension_attempts

    def active_rentals(self) -> int:
        return sum(len(v) for v in self._rentals.values())

    def remote_real_blocks(self) -> List[Tuple[int, int]]:
        """(renter bucket, block) pairs currently stored remotely."""
        out: List[Tuple[int, int]] = []
        for bucket, rentals in self._rentals.items():
            for _hb, _hs, content in rentals:
                if content >= 0:
                    out.append((bucket, content))
        return out

    def stats(self) -> Dict[str, object]:
        return {
            "extension_attempts": self.extension_attempts,
            "extension_grants": self.extension_grants,
            "extension_ratio": self.extension_ratio,
            "remote_reads": self.remote_reads,
            "remote_real_reads": self.remote_real_reads,
            "reclaimed_slots": self.reclaimed_slots,
            "active_rentals": self.active_rentals(),
            "queues": self.queues.stats(),
        }
