"""Remote allocation: AB-ORAM's extra level of address mapping.

A bucket at a DR level is physically allocated with a reduced ``S`` and,
at every reshuffle, tries to *extend* it back by renting
``remote_extension`` dead slots from its level's DeadQ (strategy (2) of
the paper's section V-C1). The rented slots become extra logical slots
of the renting bucket: its reshuffle scatters real blocks and dummies
uniformly across local + remote positions, so a readPath redirected to
a remote address is indistinguishable from any other read (this is what
keeps the paper's Fig. 7 attacker at exactly 1/L -- if remote slots
only ever held dummies, the cleartext mapping would let an attacker
exclude them from guessing).

Lifecycle of a rented slot:

1. some bucket's slot dies (a readPath consumes it) -> status DEAD;
2. ``gather`` sees it during a later readPath's metadata pass and
   queues it in its level's DeadQ -> status QUEUED;
3. a reshuffling bucket rents it (``acquire``) -> status IN_USE; the
   renter writes fresh content (real block or dummy) to the host
   address. The *logical* content is tracked here -- the host bucket's
   own slot row keeps showing CONSUMED so host-side scans never touch
   the rented slot;
4. either a readPath of the renter consumes the remote slot (it turns
   DEAD again and may be gathered anew), or the renter's next reshuffle
   returns it unconsumed to the DeadQ (``reclaim`` -> QUEUED).

Extension is all-or-nothing per bucket ("dynamicS is extended to S+2
only for the buckets that allocate their two logical tree blocks in
reclaimed dead blocks"); the grant/attempt ratio is the paper's Fig. 14
metric.

Rental bookkeeping is a pooled struct-of-arrays host table: three
``(rows, r_max)`` numpy columns (host bucket, host slot, logical
content) where each row is one active renter, found through a
``renter -> row`` dict. Rows are recycled through a free list and the
table doubles on demand, so memory stays proportional to *concurrent*
renters (a handful) rather than the tree size. Batched entry points --
``gather_path`` over the tracked levels only, ``push_many`` into the
DeadQ, ``set_status_many`` on the host bucket, ``write_remote_all`` for
a reshuffle's scatter -- replace the per-slot call chains that dominated
the AB profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dead_queue import DeadQueueSet
from repro.oram.bucket import (
    CONSUMED,
    DUMMY,
    ST_DEAD,
    ST_IN_USE,
    ST_QUEUED,
    BucketStore,
)
from repro.oram.config import OramConfig


class RemoteAllocator:
    """The AB-ORAM extension object plugged into a RingOram controller."""

    def __init__(self, cfg: OramConfig) -> None:
        self.cfg = cfg
        self.queues = DeadQueueSet(cfg.deadq_levels, cfg.deadq_capacity)
        #: Levels with a DeadQ, ascending -- the only levels gather
        #: visits (gather on any other level is a guaranteed no-op).
        self._tracked: Tuple[int, ...] = self.queues.tracked_levels()
        #: (level, queue) pairs for the tracked levels -- gather_path
        #: iterates this to skip the per-access queue dict lookups.
        self._tracked_queues = [
            (lv, self.queues.get(lv)) for lv in self._tracked
        ]
        r_max = max((g.remote_extension for g in cfg.geometry), default=0)
        self._r_max = max(1, int(r_max))
        rows = 8
        self._host_bucket = np.full((rows, self._r_max), -1, dtype=np.int64)
        self._host_slot = np.full((rows, self._r_max), -1, dtype=np.int64)
        self._content = np.full((rows, self._r_max), DUMMY, dtype=np.int64)
        self._n_active: List[int] = [0] * rows
        self._row_of: Dict[int, int] = {}     # renter bucket -> table row
        self._free: List[int] = list(range(rows - 1, -1, -1))
        self._store: Optional[BucketStore] = None
        self.extension_attempts = 0
        self.extension_grants = 0
        self.remote_reads = 0
        self.remote_real_reads = 0
        self.reclaimed_slots = 0

    # ------------------------------------------------------------- binding

    def bind(self, controller) -> None:
        """Attach to a RingOram controller (called by its constructor)."""
        self._store = controller.store

    @property
    def store(self) -> BucketStore:
        if self._store is None:
            raise RuntimeError("RemoteAllocator not bound to a controller")
        return self._store

    # ---------------------------------------------------------- host table

    def _grow(self) -> None:
        rows = len(self._n_active)
        new_rows = rows * 2
        for name in ("_host_bucket", "_host_slot", "_content"):
            old = getattr(self, name)
            grown = np.full((new_rows, self._r_max), -1, dtype=np.int64)
            grown[:rows] = old
            setattr(self, name, grown)
        self._n_active.extend([0] * rows)
        self._free.extend(range(new_rows - 1, rows - 1, -1))

    def _alloc_row(self, bucket: int) -> int:
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._row_of[bucket] = row
        return row

    def _release_row(self, bucket: int, row: int) -> None:
        del self._row_of[bucket]
        self._n_active[row] = 0
        self._free.append(row)

    # -------------------------------------------------------------- gather

    def gather(self, bucket: int, level: int) -> int:
        """gatherDEADs: queue the DEAD slots of ``bucket`` (readPath hook).

        Only tracked levels participate; a bucket always keeps at least
        one non-ALLOCATED slot so it can serve a readPath even when no
        extension is granted. Returns how many slots were queued.
        """
        queue = self.queues.get(level)
        if queue is None or queue.is_full:
            return 0
        store = self.store
        if not store.dead_count[bucket]:
            return 0
        return self._gather_ready(queue, bucket, store)

    def _gather_ready(self, queue, bucket: int, store: BucketStore) -> int:
        """gather() after the no-op early-outs (queue usable, dead > 0)."""
        dead = store.dead_slots(bucket)
        z = store.z_phys(bucket)
        allocated = store.queued_count[bucket] + store.in_use_count[bucket]
        n = min(int(dead.size), z - 1 - allocated, queue.space)
        if n <= 0:
            return 0
        take = dead[:n]
        queue.push_many(bucket, take, store.generation[bucket, take])
        store.queue_dead(bucket, take)
        return n

    def gather_path(self, buckets: Sequence[int]) -> int:
        """gatherDEADs over one whole path (``buckets[lv]`` at level lv).

        Visits only the levels that have a DeadQ; untracked levels
        cannot queue anything, so skipping them is behaviour-neutral,
        as is skipping buckets with no DEAD slot (O(1) tally check).
        """
        total = 0
        store = self.store
        dead_count = store.dead_count
        for lv, queue in self._tracked_queues:
            b = buckets[lv]
            if dead_count[b] and not queue.is_full:
                total += self._gather_ready(queue, b, store)
        return total

    # ---------------------------------------------------------- extension

    def acquire(self, bucket: int, level: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Try to rent ``remote_extension`` dead slots for ``bucket``.

        Returns ``(granted_extension, host_slots)``. All-or-nothing: on
        shortage every popped entry goes back and the grant is 0. The
        caller assigns contents via :meth:`write_remote` /
        :meth:`write_remote_all` and reports the memory writes.
        """
        r = self.cfg.geometry[level].remote_extension
        if r == 0:
            return 0, []
        queue = self.queues.get(level)
        self.extension_attempts += 1
        if queue is None or not len(queue):
            # Popping an empty queue is side-effect free, so the empty
            # case (common before the DeadQs warm up) can skip straight
            # to the all-or-nothing denial.
            return 0, []
        store = self.store
        got: List[Tuple[int, int]] = []
        rejected: List[Tuple[int, int]] = []
        while len(got) < r:
            entry = queue.pop_valid(store)
            if entry is None:
                break
            if entry[0] == bucket:
                # Renting a slot from the bucket being reshuffled would
                # just shrink its own usable set; skip it.
                rejected.append(entry)
                continue
            got.append(entry)
        if rejected or len(got) < r:
            gen = store.generation
            for hb, hs in rejected:
                queue.requeue_front(hb, hs, int(gen[hb, hs]))
            if len(got) < r:
                for hb, hs in got:
                    queue.requeue_front(hb, hs, int(gen[hb, hs]))
                return 0, []
        row = self._row_of.get(bucket)
        if row is None:
            row = self._alloc_row(bucket)
        for i, (hb, hs) in enumerate(got):
            store.set_status(hb, hs, ST_IN_USE)
            # The host's own row must never expose the rented slot.
            store.set_slot(hb, hs, CONSUMED)
            self._host_bucket[row, i] = hb
            self._host_slot[row, i] = hs
        self._content[row, :r] = DUMMY
        self._n_active[row] = r
        self.extension_grants += 1
        return r, list(got)

    def write_remote(self, bucket: int, host: Tuple[int, int], content: int) -> None:
        """Set the logical content (block id or DUMMY) of a rented slot."""
        row = self._row_of.get(bucket)
        if row is not None:
            hb_row = self._host_bucket[row]
            hs_row = self._host_slot[row]
            for i in range(self._n_active[row]):
                if hb_row[i] == host[0] and hs_row[i] == host[1]:
                    self._content[row, i] = content
                    return
        raise KeyError(f"bucket {bucket} does not rent slot {host}")

    def write_remote_all(self, bucket: int, contents: Sequence[int]) -> None:
        """Set every rented slot's content in one store (rental order).

        ``contents[i]`` goes to the i-th host slot of the bucket's
        current rental (the order :meth:`acquire` returned them);
        equivalent to one :meth:`write_remote` per host.
        """
        row = self._row_of.get(bucket)
        if row is None:
            raise KeyError(f"bucket {bucket} rents no slots")
        n = self._n_active[row]
        if len(contents) != n:
            raise ValueError(
                f"bucket {bucket} rents {n} slots, got {len(contents)} contents"
            )
        self._content[row, :n] = contents

    def reclaim(self, bucket: int) -> Tuple[List[int], List[Tuple[int, int]]]:
        """End ``bucket``'s rental round (its reshuffle begins).

        Unconsumed rented slots return to their level's DeadQ; any real
        blocks they held are handed back for the caller to stash.
        Returns ``(real_blocks, released_host_slots)``.
        """
        row = self._row_of.get(bucket)
        if row is None:
            return [], []
        store = self.store
        n = self._n_active[row]
        hb_row = self._host_bucket[row]
        hs_row = self._host_slot[row]
        c_row = self._content[row]
        reals: List[int] = []
        released: List[Tuple[int, int]] = []
        for i in range(n):
            hb = int(hb_row[i])
            hs = int(hs_row[i])
            content = int(c_row[i])
            if content >= 0:
                reals.append(content)
            released.append((hb, hs))
            level = store.level(hb)
            queue = self.queues.get(level)
            store.set_status(hb, hs, ST_QUEUED)
            gen = int(store.generation[hb, hs])
            if queue is None or not queue.push(hb, hs, gen):
                # Queue full: the slot stays dead until its host bucket
                # reshuffles over it.
                store.set_status(hb, hs, ST_DEAD)
            self.reclaimed_slots += 1
        self._release_row(bucket, row)
        return reals, released

    # ------------------------------------------------------- readPath side

    def has_rentals(self, bucket: int) -> bool:
        """O(1): does ``bucket`` currently rent any unconsumed slot?"""
        return bucket in self._row_of

    def has_any_rentals(self) -> bool:
        """O(1): does *any* bucket currently rent a slot?"""
        return bool(self._row_of)

    def rental_view(
        self, bucket: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Raw host-table row of ``bucket``: (hosts, slots, contents, n).

        The readPath hot loop inspects a couple of rented slots per
        call; handing out the backing arrays (entries ``[:n]`` valid,
        rental order) avoids the per-call list building of
        :meth:`rentals_of`. Callers must not mutate them.
        """
        row = self._row_of[bucket]
        return (
            self._host_bucket[row],
            self._host_slot[row],
            self._content[row],
            self._n_active[row],
        )

    def rentals_of(self, bucket: int) -> List[List[int]]:
        """Unconsumed rented slots of ``bucket`` as [hb, hs, content]."""
        row = self._row_of.get(bucket)
        if row is None:
            return []
        hb_row = self._host_bucket[row].tolist()
        hs_row = self._host_slot[row].tolist()
        c_row = self._content[row].tolist()
        return [
            [hb_row[i], hs_row[i], c_row[i]]
            for i in range(self._n_active[row])
        ]

    def find_remote_block(self, bucket: int, block: int) -> Optional[Tuple[int, int]]:
        """Host location of ``block`` if ``bucket`` stores it remotely."""
        row = self._row_of.get(bucket)
        if row is None:
            return None
        c_row = self._content[row]
        for i in range(self._n_active[row]):
            if c_row[i] == block:
                return int(self._host_bucket[row, i]), int(self._host_slot[row, i])
        return None

    def consume_remote(self, bucket: int, host: Tuple[int, int]) -> int:
        """Serve a readPath from a rented slot; returns its content.

        The host slot turns DEAD (gatherable again); the renter's access
        count advances exactly as for a local read.
        """
        row = self._row_of.get(bucket)
        if row is None or self._n_active[row] == 0:
            raise RuntimeError(f"bucket {bucket} has no unconsumed remote slots")
        n = self._n_active[row]
        hb_row = self._host_bucket[row]
        hs_row = self._host_slot[row]
        c_row = self._content[row]
        for i in range(n):
            if hb_row[i] == host[0] and hs_row[i] == host[1]:
                content = int(c_row[i])
                if i < n - 1:
                    # Shift the tail left so rental order is preserved.
                    hb_row[i:n - 1] = hb_row[i + 1:n].copy()
                    hs_row[i:n - 1] = hs_row[i + 1:n].copy()
                    c_row[i:n - 1] = c_row[i + 1:n].copy()
                self._n_active[row] = n - 1
                if n == 1:
                    self._release_row(bucket, row)
                store = self.store
                hb, hs = host
                store.set_slot(hb, hs, CONSUMED)
                store.set_status(hb, hs, ST_DEAD)
                store.count[bucket] += 1
                self.remote_reads += 1
                if content >= 0:
                    self.remote_real_reads += 1
                return content
        raise KeyError(f"bucket {bucket} does not rent slot {host}")

    # ------------------------------------------------------------- metrics

    @property
    def extension_ratio(self) -> float:
        """Granted / attempted extensions (the paper's Fig. 14)."""
        if self.extension_attempts == 0:
            return 0.0
        return self.extension_grants / self.extension_attempts

    def active_rentals(self) -> int:
        return sum(self._n_active[row] for row in self._row_of.values())

    def remote_real_blocks(self) -> List[Tuple[int, int]]:
        """(renter bucket, block) pairs currently stored remotely."""
        out: List[Tuple[int, int]] = []
        for bucket, row in self._row_of.items():
            c_row = self._content[row]
            for i in range(self._n_active[row]):
                if c_row[i] >= 0:
                    out.append((bucket, int(c_row[i])))
        return out

    def stats(self) -> Dict[str, object]:
        return {
            "extension_attempts": self.extension_attempts,
            "extension_grants": self.extension_grants,
            "extension_ratio": self.extension_ratio,
            "remote_reads": self.remote_reads,
            "remote_real_reads": self.remote_real_reads,
            "reclaimed_slots": self.reclaimed_slots,
            "active_rentals": self.active_rentals(),
            "queues": self.queues.stats(),
        }
