"""Every ORAM configuration evaluated in the paper (section VII).

All builders take a ``levels`` argument so the same schemes can run on
scaled-down trees (the timing simulator's default) as well as the
paper's 24-level geometry (used for the exact space math). Level ranges
defined in the paper for L = 24 -- DR's bottom six levels, NS's bottom
two, IR's middle band -- are expressed as *counts from the bottom* or
*fractions of the tree*, which keeps the capacity fractions (and hence
the space-reduction ratios) essentially level-count-invariant.

Paper settings reproduced here (for L = 24):

==========  =======================================================
Baseline    CB everywhere: Z = 8 (Z' = 5, S = 3, Y = 4), sustain 7
IR          Baseline + Z' = 4 for L10..L18, Y = 3 everywhere
DR          Z = 6 (S = 1) for L18..L23, extension r = 2 via DeadQ
NS          Z = 6 (S = 1) for L22..L23 (the "L2-S2" point)
AB          Z = 6 (S = 1) for L18..L20 and Z = 5 (S = 0) for
            L21..L23, extension r = 2 over all six ("L3-S1" on NS)
Ring        classic Ring ORAM: Z = 12 (Z' = 5, S = 7), no overlap
==========  =======================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.oram.config import (
    BucketGeometry,
    OramConfig,
    bottom_range,
    override_levels,
    scaled_treetop,
    uniform_geometry,
)

# The paper's typical secure-processor setting (Ren et al.).
Z_REAL = 5          # Z'
RING_S = 7          # classic Ring ORAM reserved dummies
CB_S = 3            # bucket-compaction physical S
CB_OVERLAP = 4      # Y
EVICT_RATE = 5      # A
PAPER_LEVELS = 24

# DR / NS / AB level ranges, expressed as bottom-level counts (L = 24:
# bottom 6 = L18..L23, bottom 2 = L22..L23, bottom 3 = L21..L23).
DR_BOTTOM = 6
NS_BOTTOM = 2
AB_UPPER_BOTTOM = 6   # L18..L20 get S=1 ...
AB_LOWER_BOTTOM = 3   # ... and L21..L23 get S=0
DR_EXTENSION = 2
NS_REDUCE = 2         # NS shrinks S by 2 (L2-S2)


def _common(levels: int, **kw) -> Dict[str, object]:
    opts: Dict[str, object] = {
        "evict_rate": EVICT_RATE,
        "treetop_levels": scaled_treetop(levels),
        "base_z_real": Z_REAL,
    }
    opts.update(kw)
    return opts


def classic_ring(levels: int = PAPER_LEVELS, s: int = RING_S) -> OramConfig:
    """Ren et al.'s Ring ORAM: Z = 12, Z' = 5, S = 7, no compaction."""
    return OramConfig(
        levels=levels,
        geometry=uniform_geometry(levels, Z_REAL, s),
        name="ring",
        **_common(levels),
    )


def baseline_cb(levels: int = PAPER_LEVELS) -> OramConfig:
    """The paper's Baseline: Ring ORAM + Bucket Compaction (Y = 4)."""
    return OramConfig(
        levels=levels,
        geometry=uniform_geometry(levels, Z_REAL, CB_S, overlap=CB_OVERLAP),
        name="Baseline",
        **_common(levels),
    )


def ir_oram(levels: int = PAPER_LEVELS) -> OramConfig:
    """IR-ORAM's utilization optimization on the CB baseline.

    Z' drops to 4 for the middle band (L10..L18 at L = 24, scaled
    proportionally otherwise) and the overlap drops to Y = 3 everywhere
    to bound stash pressure, which costs reshuffles (sustain 6 < 7).
    """
    lo = round(levels * 10 / PAPER_LEVELS)
    hi = round(levels * 18 / PAPER_LEVELS)
    lo = max(1, min(levels - 2, lo))
    hi = max(lo, min(levels - 1, hi))
    geometry = list(uniform_geometry(levels, Z_REAL, CB_S, overlap=3))
    for lv in range(lo, hi + 1):
        geometry[lv] = BucketGeometry(z_real=4, s_reserved=CB_S, overlap=3)
    return OramConfig(
        levels=levels,
        geometry=tuple(geometry),
        name="IR",
        **_common(levels),
    )


def dr_scheme(
    levels: int = PAPER_LEVELS,
    bottom: int = DR_BOTTOM,
    extension: int = DR_EXTENSION,
    deadq_capacity: int = 1000,
) -> OramConfig:
    """Dead-block Reclaim: shrink S to 1 at the bottom, extend via DeadQ."""
    dr_levels = bottom_range(levels, min(bottom, levels - 1))
    geometry = override_levels(
        uniform_geometry(levels, Z_REAL, CB_S, overlap=CB_OVERLAP),
        {
            lv: BucketGeometry(Z_REAL, 1, overlap=CB_OVERLAP,
                               remote_extension=extension)
            for lv in dr_levels
        },
    )
    return OramConfig(
        levels=levels,
        geometry=geometry,
        deadq_levels=dr_levels,
        deadq_capacity=deadq_capacity,
        name=f"DR-L{levels - len(dr_levels)}" if bottom != DR_BOTTOM else "DR",
        **_common(levels),
    )


def dr_perf_scheme(
    levels: int = PAPER_LEVELS,
    bottom: int = DR_BOTTOM,
    extension: int = DR_EXTENSION,
    deadq_capacity: int = 1000,
) -> OramConfig:
    """Strategy (1) of section V-C1: extend S *beyond* the baseline.

    The paper describes two ways to exploit remote allocation and
    adopts the space-saving one (strategy (2), :func:`dr_scheme`). This
    is the other: keep the baseline's physical allocation (Z = 8,
    sustain 7) and extend buckets to sustain 9 at runtime by renting
    dead slots -- no space saving, but fewer earlyReshuffle operations
    and thus potentially better performance.
    """
    band = bottom_range(levels, min(bottom, levels - 1))
    geometry = override_levels(
        uniform_geometry(levels, Z_REAL, CB_S, overlap=CB_OVERLAP),
        {
            lv: BucketGeometry(Z_REAL, CB_S, overlap=CB_OVERLAP,
                               remote_extension=extension)
            for lv in band
        },
    )
    return OramConfig(
        levels=levels,
        geometry=geometry,
        deadq_levels=band,
        deadq_capacity=deadq_capacity,
        name="DR-perf",
        **_common(levels),
    )


def ns_scheme(
    levels: int = PAPER_LEVELS,
    bottom: int = NS_BOTTOM,
    reduce_by: int = NS_REDUCE,
) -> OramConfig:
    """Non-uniform S: permanently smaller S for the bottom levels."""
    ns_levels = bottom_range(levels, min(bottom, levels - 1))
    base = BucketGeometry(Z_REAL, CB_S, overlap=CB_OVERLAP)
    geometry = override_levels(
        uniform_geometry(levels, Z_REAL, CB_S, overlap=CB_OVERLAP),
        {lv: base.shrunk(reduce_by) for lv in ns_levels},
    )
    name = "NS" if (bottom, reduce_by) == (NS_BOTTOM, NS_REDUCE) else (
        f"NS-L{bottom}-S{reduce_by}"
    )
    return OramConfig(levels=levels, geometry=geometry, name=name,
                      **_common(levels))


def ab_scheme(
    levels: int = PAPER_LEVELS,
    deadq_capacity: int = 1000,
) -> OramConfig:
    """AB = DR + NS: S = 1 for the upper DR band, S = 0 for the bottom
    three levels, remote extension r = 2 throughout the band."""
    band = bottom_range(levels, min(AB_UPPER_BOTTOM, levels - 1))
    lower = set(bottom_range(levels, min(AB_LOWER_BOTTOM, levels - 1)))
    overrides = {}
    for lv in band:
        s = 0 if lv in lower else 1
        overrides[lv] = BucketGeometry(Z_REAL, s, overlap=CB_OVERLAP,
                                       remote_extension=DR_EXTENSION)
    geometry = override_levels(
        uniform_geometry(levels, Z_REAL, CB_S, overlap=CB_OVERLAP),
        overrides,
    )
    return OramConfig(
        levels=levels,
        geometry=geometry,
        deadq_levels=band,
        deadq_capacity=deadq_capacity,
        name="AB",
        **_common(levels),
    )


def ring_s_reduced(
    levels: int = PAPER_LEVELS, bottom: int = 1, reduce_by: int = 3
) -> OramConfig:
    """Fig. 4's motivational variants: classic Ring ORAM with S shrunk
    by ``reduce_by`` for the bottom ``bottom`` levels (the paper's L-x)."""
    lv_set = bottom_range(levels, min(bottom, levels - 1))
    base = BucketGeometry(Z_REAL, RING_S)
    geometry = override_levels(
        uniform_geometry(levels, Z_REAL, RING_S),
        {lv: base.shrunk(reduce_by) for lv in lv_set},
    )
    return OramConfig(levels=levels, geometry=geometry,
                      name=f"ring-L{bottom}-S{reduce_by}", **_common(levels))


def main_schemes(levels: int = PAPER_LEVELS) -> List[OramConfig]:
    """The five configurations of the paper's main evaluation (Fig. 8)."""
    return [
        baseline_cb(levels),
        ir_oram(levels),
        dr_scheme(levels),
        ns_scheme(levels),
        ab_scheme(levels),
    ]


def by_name(name: str, levels: int = PAPER_LEVELS) -> OramConfig:
    """Look a scheme up by its paper name."""
    table = {
        "baseline": baseline_cb,
        "cb": baseline_cb,
        "ir": ir_oram,
        "dr": dr_scheme,
        "dr-perf": dr_perf_scheme,
        "ns": ns_scheme,
        "ab": ab_scheme,
        "ring": classic_ring,
    }
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown scheme {name!r}; choose from {sorted(table)}")
    return table[key](levels)
