"""Transaction-pipelined timing sink: overlap path reads with drain.

:class:`PipelinedDramSink` is a drop-in replacement for
:class:`~repro.sim.engine.DramSink` that decouples the controller's
*logical* execution from the DRAM *timing* schedule. The controller
still runs strictly sequentially -- same code, same RNG streams, so
fetched values, stash contents and the position map are identical at
every depth -- but the timestamps its operations are replayed at may
overlap: the path read for access k+1 is issued while the reshuffle /
eviction write-backs for access k are still draining into DRAM.

How it works
------------

Every protocol operation (``begin_op`` .. ``end_op``) is *buffered*:
data/metadata touches are recorded as (kind, addresses, phase) events
instead of being issued to the DRAM model immediately. At ``end_op``
the operation is scheduled as a unit:

- Operations are grouped into *transactions*: one online operation
  (readPath or posMap) plus the maintenance work (evictPath,
  earlyReshuffle, background, recovery) that follows it. A new
  transaction opens at the next online ``begin_op`` after a clock
  advance, after any maintenance op, or after the current transaction
  already performed its online op -- so batched serving pipelines
  per-access without driver changes.
- An explicit in-flight transaction table enforces the pipeline
  shape: transaction k's first operation may not start before
  transaction k-1's first operation (in-order issue) nor before
  transaction k-depth completed (bounded depth); accumulated CPU gap
  (``advance``) is added once at transaction start. Operations within
  a transaction chain on each other, exactly as in the serial sink.
- A bucket-level conflict tracker replaces global serialization: an
  operation touching an off-chip bucket whose earlier operation (e.g.
  an in-flight reshuffle) has not completed waits for *that bucket*
  only; on-chip treetop levels never conflict. Stalls are counted as
  ``pipeline.conflict_stalls`` / ``conflict_stall_ns``.
- Within an operation the serial sink's phase rules are replayed
  verbatim (metadata read -> data reads -> data writes -> metadata
  write-back), so at ``depth=1`` every float operation matches
  :class:`~repro.sim.engine.DramSink` and the schedule is
  bit-identical (production configs route depth 1 through the serial
  sink anyway).

Operations are issued to the DRAM model in program order with
possibly-earlier arrival stamps; the model's bank/bus frontiers only
move forward, so earlier-issued operations are never retroactively
delayed (a conservative, causal approximation). Two consequences are
documented rather than hidden: summed per-kind operation times can
exceed ``exec_ns`` once operations overlap, and ``now`` is the
completion frontier advanced by CPU pacing, so an idle ``advance``
lands on top of the frontier.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.oram.stats import MemorySink, OpKind

#: Online (latency-critical) operation kinds; everything else is
#: maintenance that a later transaction's read may overlap with.
ONLINE_KINDS = frozenset((OpKind.READ_PATH, OpKind.POSMAP))


class PipelinedDramSink(MemorySink):
    """Schedule buffered protocol ops with bounded-depth overlap."""

    def __init__(
        self,
        layout: TreeLayout,
        dram: DramModel,
        depth: int,
        telemetry: Optional[Any] = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.layout = layout
        self.dram = dram
        self.depth = depth
        self.telemetry = telemetry
        # Address computation mirrors DramSink (plain-int arithmetic
        # over a materialized offset list).
        self._data_base = layout.base_addr
        self._data_off = layout._offsets.tolist()
        self._block_bytes = layout.cfg.block_bytes
        self._meta_base = layout.meta_base
        self._meta_stride = layout.meta_stride
        #: Completion frontier advanced by CPU pacing (see module doc).
        self.now = 0.0
        self.time_by_kind: Dict[OpKind, float] = {k: 0.0 for k in OpKind}
        self.ops_by_kind: Dict[OpKind, int] = {k: 0 for k in OpKind}
        self.readpath_latencies: List[float] = []
        self.remote_accesses = 0
        # ---------------------------------------- transaction table
        #: Start time of the last transaction's first op (in-order issue).
        self._issue_frontier = 0.0
        #: Max completion over transactions retired from the window.
        self._retire_floor = 0.0
        #: Completions of the last < depth finalized transactions.
        self._inflight: Deque[float] = deque()
        self._txn_index = -1
        self._txn_open = False
        self._txn_end = 0.0
        self._txn_has_online = False
        self._boundary = True
        self._pending_gap = 0.0
        #: bucket id -> completion of its last in-flight *write-back*
        #: (reshuffle / eviction refill). Reads only check this table;
        #: they never register in it -- read-vs-read overlap on a
        #: bucket is harmless, only a bucket whose reshuffle is still
        #: draining must stall the transactions that touch it.
        self._bucket_free: Dict[int, float] = {}
        # ---------------------------------------- per-op buffering
        self._op_kind: Optional[OpKind] = None
        self._op_new_txn = False
        self._ev: List[Tuple] = []
        self._op_buckets: Set[int] = set()
        self._op_wbuckets: Set[int] = set()
        # ---------------------------------------- pipeline metrics
        self.txns = 0
        self.conflict_stalls = 0
        self.conflict_stall_ns = 0.0
        self.inflight_peak = 0
        self.inflight_sum = 0
        self.inflight_samples = 0
        if telemetry is not None:
            tracks = getattr(telemetry, "track_names", None)
            if tracks is not None:
                for lane in range(depth):
                    tracks.setdefault(1 + lane, f"pipeline lane {lane}")

    # ------------------------------------------------------------- clocking

    def advance(self, ns: float) -> None:
        """Advance the clock (CPU compute between requests).

        The gap is banked and added once at the next transaction's
        start, so pacing constrains issue order without serializing
        against in-flight maintenance drain.
        """
        if ns < 0:
            raise ValueError(f"cannot advance time by {ns}")
        self._pending_gap += ns
        self.now += ns
        self._boundary = True

    def stall(self, ns: float) -> None:
        """Charge controller stall time (retry backoff) to the clock."""
        if ns < 0:
            raise ValueError(f"cannot stall for {ns}")
        self.dram.stats.stalled_ns += ns
        if self._op_kind is None:
            self._pending_gap += ns
            self.now += ns
            self._boundary = True
        else:
            self._ev.append(("t", ns))

    def reset_measurement(self) -> float:
        """Zero the attribution counters (end of warm-up).

        DRAM bank/bus state, the clock and the transaction table are
        preserved; returns the measurement start time. Transactions
        already in flight at the boundary keep draining, so the first
        measured transactions may overlap warm-up work -- the same
        boundary approximation the serial model makes for open rows.
        """
        self.time_by_kind = {k: 0.0 for k in OpKind}
        self.ops_by_kind = {k: 0 for k in OpKind}
        self.readpath_latencies = []
        self.remote_accesses = 0
        self.txns = 0
        self.conflict_stalls = 0
        self.conflict_stall_ns = 0.0
        self.inflight_peak = 0
        self.inflight_sum = 0
        self.inflight_samples = 0
        self.dram.stats.__init__()
        busy = self.dram.channel_busy_ns
        busy[:] = [0.0] * len(busy)
        bank = self.dram.bank_busy_ns
        bank[:] = [0.0] * len(bank)
        return self.now

    # ------------------------------------------------------------ sink API

    def begin_op(self, kind: OpKind) -> None:
        if self._op_kind is not None:
            raise RuntimeError(f"nested op {kind} inside {self._op_kind}")
        self._op_kind = kind
        self._op_new_txn = kind in ONLINE_KINDS and (
            self._boundary or self._txn_has_online
        )
        self._ev = []
        self._op_buckets = set()
        self._op_wbuckets = set()

    def data_access(self, bucket, slot, level, write, onchip=False,
                    remote=False):
        if onchip:
            return
        if remote:
            self.remote_accesses += 1
        addr = (self._data_base + self._data_off[bucket]
                + slot * self._block_bytes)
        self._ev.append(("s", addr, write, 2 if write else 1))
        self._op_buckets.add(bucket)
        if write:
            self._op_wbuckets.add(bucket)

    def metadata_access(self, bucket, level, write, onchip=False, blocks=1):
        if onchip:
            return
        addr = self._meta_base + bucket * self._meta_stride
        phase = 3 if write else 0
        if blocks == 1:
            self._ev.append(("s", addr, write, phase))
        else:
            bb = self._block_bytes
            self._ev.append(
                ("b", [addr + i * bb for i in range(blocks)], write, phase)
            )
        self._op_buckets.add(bucket)

    def data_access_many(self, items, write):
        # Same all-onchip phase rule as the serial sink: an empty
        # off-chip batch records nothing, so later lower-phase events
        # replay before any phase transition.
        base = self._data_base
        off = self._data_off
        bb = self._block_bytes
        addrs = []
        append = addrs.append
        buckets = self._op_buckets
        remotes = 0
        wbuckets = self._op_wbuckets
        for bucket, slot, level, onchip, remote in items:
            if onchip:
                continue
            if remote:
                remotes += 1
            append(base + off[bucket] + slot * bb)
            buckets.add(bucket)
            if write:
                wbuckets.add(bucket)
        if not addrs:
            return
        self.remote_accesses += remotes
        self._ev.append(("b", addrs, write, 2 if write else 1))

    def data_access_repeat(self, bucket, slot, level, count, write,
                           onchip=False, remote=False):
        if onchip or count <= 0:
            return
        if remote:
            self.remote_accesses += count
        addr = (self._data_base + self._data_off[bucket]
                + slot * self._block_bytes)
        self._ev.append(("r", addr, count, write, 2 if write else 1))
        self._op_buckets.add(bucket)
        if write:
            self._op_wbuckets.add(bucket)

    def data_access_block(self, bucket, slots, level, write,
                          onchip=False, remote=False):
        if onchip or not slots:
            return
        if remote:
            self.remote_accesses += len(slots)
        base = self._data_base + self._data_off[bucket]
        bb = self._block_bytes
        self._ev.append(
            ("b", [base + slot * bb for slot in slots], write,
             2 if write else 1)
        )
        self._op_buckets.add(bucket)
        if write:
            self._op_wbuckets.add(bucket)

    def metadata_access_many(self, items, write, blocks=1):
        base = self._meta_base
        stride = self._meta_stride
        bb = self._block_bytes
        addrs = []
        append = addrs.append
        buckets = self._op_buckets
        if blocks == 1:
            for bucket, level, onchip in items:
                if not onchip:
                    append(base + bucket * stride)
                    buckets.add(bucket)
        else:
            for bucket, level, onchip in items:
                if onchip:
                    continue
                addr = base + bucket * stride
                for _ in range(blocks):
                    append(addr)
                    addr += bb
                buckets.add(bucket)
        if not addrs:
            return
        self._ev.append(("b", addrs, write, 3 if write else 0))

    # ----------------------------------------------------------- scheduling

    def end_op(self) -> None:
        kind = self._op_kind
        if kind is None:
            raise RuntimeError("end_op without begin_op")
        self._op_kind = None
        if self._op_new_txn:
            # Finalize the previous transaction into the in-flight
            # window; entries pushed past the depth bound retire into
            # the floor every later transaction must clear.
            if self._txn_open:
                self._inflight.append(self._txn_end)
                while len(self._inflight) > self.depth - 1:
                    done = self._inflight.popleft()
                    if done > self._retire_floor:
                        self._retire_floor = done
            chain = self._issue_frontier
            if self._retire_floor > chain:
                chain = self._retire_floor
            self._txn_open = True
            self._txn_index += 1
            self._txn_has_online = False
            self._txn_end = 0.0
        else:
            chain = self._txn_end if self._txn_open else 0.0
        start = chain + self._pending_gap
        self._pending_gap = 0.0
        # Bucket-level conflicts: wait for the latest in-flight op on
        # any off-chip bucket this op touches (and only for those).
        free = self._bucket_free
        pre = start
        for bucket in self._op_buckets:
            t = free.get(bucket)
            if t is not None and t > start:
                start = t
        if start > pre:
            self.conflict_stalls += 1
            self.conflict_stall_ns += start - pre
        if self._op_new_txn:
            self.txns += 1
            # The issue frontier advances by the *pre-conflict* issue
            # point: a bucket conflict stalls only this transaction,
            # never the ones behind it.
            self._issue_frontier = pre
            occupancy = 1
            for done in self._inflight:
                if done > start:
                    occupancy += 1
            self.inflight_sum += occupancy
            self.inflight_samples += 1
            if occupancy > self.inflight_peak:
                self.inflight_peak = occupancy
        end = self._replay(start)
        for bucket in self._op_wbuckets:
            free[bucket] = end
        if end > self._txn_end:
            self._txn_end = end
        if kind in ONLINE_KINDS:
            self._txn_has_online = True
        else:
            # Maintenance finished: the next online op is a new access
            # even if the driver never advances the clock (serving).
            self._boundary = True
        if end > self.now:
            self.now = end
        duration = end - start
        self.time_by_kind[kind] += duration
        self.ops_by_kind[kind] += 1
        if kind is OpKind.READ_PATH:
            self.readpath_latencies.append(duration)
        t = self.telemetry
        if t is not None:
            t.record_span(str(kind), start, duration)
            t.extra_events.append({
                "name": str(kind),
                "cat": "pipeline",
                "ph": "X",
                "pid": 0,
                "tid": 1 + self._txn_index % self.depth,
                "ts": start / 1000.0,
                "dur": duration / 1000.0,
                "args": {"start_ns": start, "dur_ns": duration,
                         "txn": self._txn_index},
            })
        self._ev = []
        self._op_buckets = set()
        self._op_wbuckets = set()

    def _replay(self, start: float) -> float:
        """Issue the buffered op at ``start``; returns its completion.

        Phase chaining is verbatim from the serial sink: entering a
        later phase waits for every earlier request of the operation.
        """
        dram = self.dram
        op_end = start
        phase = 0
        phase_start = start
        for ev in self._ev:
            tag = ev[0]
            if tag == "t":
                op_end += ev[1]
                continue
            p = ev[-1]
            if p > phase:
                phase = p
                phase_start = op_end
            if tag == "b":
                done = dram.access_batch(ev[1], ev[2], phase_start)
            elif tag == "s":
                done = dram.access(ev[1], ev[2], phase_start)
            else:
                done = dram.access_repeat(ev[1], ev[2], ev[3], phase_start)
            if done > op_end:
                op_end = done
        return op_end

    # -------------------------------------------------------------- metrics

    def pipeline_metrics(self) -> Dict[str, float]:
        """Occupancy / conflict counters for telemetry export."""
        online = 0.0
        maint = 0.0
        for kind, ns in self.time_by_kind.items():
            if kind in ONLINE_KINDS:
                online += ns
            else:
                maint += ns
        return {
            "depth": self.depth,
            "txns": self.txns,
            "inflight_peak": self.inflight_peak,
            "inflight_mean": (
                self.inflight_sum / self.inflight_samples
                if self.inflight_samples else 0.0
            ),
            "conflict_stalls": self.conflict_stalls,
            "conflict_stall_ns": self.conflict_stall_ns,
            "online_busy_ns": online,
            "maint_busy_ns": maint,
        }
