"""AB-ORAM: the paper's contribution.

- :mod:`repro.core.dead_queue` -- the per-level DeadQ FIFOs that track
  recently generated dead blocks.
- :mod:`repro.core.remote` -- the remote-allocation machinery: slot
  gathering, rental (S extension), release, and the extension-success
  accounting behind the paper's Fig. 14.
- :mod:`repro.core.schemes` -- every configuration evaluated in the
  paper (Baseline/CB, IR, DR, NS, AB, classic Ring, Fig. 4 variants).
- :mod:`repro.core.ab_oram` -- the user-facing controller that wires a
  Ring ORAM instance to the AB extensions.
- :mod:`repro.core.security` -- the empirical attacker of section VI-C.
"""

from repro.core.dead_queue import DeadQueue, DeadQueueSet
from repro.core.remote import RemoteAllocator
from repro.core.ab_oram import AbOram, build_oram
from repro.core import schemes

__all__ = [
    "DeadQueue",
    "DeadQueueSet",
    "RemoteAllocator",
    "AbOram",
    "build_oram",
    "schemes",
]
