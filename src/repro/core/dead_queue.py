"""DeadQ: per-level FIFO queues of reclaimable dead slots.

The paper keeps one small (1000-entry) on-chip FIFO per *bottom* tree
level. ``gatherDEADs`` pushes the {slotAddr, slotInd} of DEAD slots seen
during readPath metadata accesses; remote allocation pops entries to
extend a reshuffling bucket's ``S``.

Entries can go stale: the slot's host bucket may get reshuffled (and the
slot rewritten) while the entry still sits in the queue. Rather than
searching the FIFO at every reshuffle, the bucket store bumps a per-slot
*generation* counter when it reclaims a queued slot; the queue validates
generations at pop time and silently discards stale entries. This keeps
both ends of the queue O(1), matching the paper's "since they are FIFO
queues, the maintenance cost is low".

The storage is a struct-of-arrays ring buffer: three preallocated
``capacity``-sized numpy columns (host bucket, host slot, generation)
plus a head index and a size. ``gatherDEADs`` appends whole batches with
``push_many`` (two slice stores at most, one per wrap segment) instead
of one Python call per slot, which is what keeps the per-readPath gather
cost flat on DR/AB configurations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.oram.bucket import BucketStore, ST_QUEUED


class DeadQueue:
    """One level's FIFO of (bucket, slot, generation) entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"DeadQueue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._bucket = np.zeros(capacity, dtype=np.int64)
        self._slot = np.zeros(capacity, dtype=np.int64)
        self._gen = np.zeros(capacity, dtype=np.int64)
        self._head = 0
        self._size = 0
        self.pushed = 0
        self.dropped_full = 0
        self.popped = 0
        self.stale_discarded = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    @property
    def space(self) -> int:
        """Free entries left before the queue is full."""
        return self.capacity - self._size

    def push(self, bucket: int, slot: int, generation: int) -> bool:
        """Queue a dead slot; False if the queue is full (slot skipped)."""
        if self._size >= self.capacity:
            self.dropped_full += 1
            return False
        tail = self._head + self._size
        if tail >= self.capacity:
            tail -= self.capacity
        self._bucket[tail] = bucket
        self._slot[tail] = slot
        self._gen[tail] = generation
        self._size += 1
        self.pushed += 1
        return True

    def push_many(
        self,
        bucket: int,
        slots: Sequence[int],
        generations: Sequence[int],
    ) -> None:
        """Append several slots of one host bucket, oldest-slot first.

        Equivalent to one :meth:`push` per slot. The caller pre-limits
        the batch to :attr:`space` (gatherDEADs stops collecting at the
        queue's free room rather than dropping), so overflow here is a
        caller bug, not an expected event.
        """
        n = len(slots)
        if n == 0:
            return
        cap = self.capacity
        if n > cap - self._size:
            raise ValueError(
                f"push_many of {n} entries exceeds free space "
                f"{cap - self._size}"
            )
        start = self._head + self._size
        if start >= cap:
            start -= cap
        end = start + n
        if end <= cap:
            self._bucket[start:end] = bucket
            self._slot[start:end] = slots
            self._gen[start:end] = generations
        else:
            k = cap - start
            self._bucket[start:] = bucket
            self._slot[start:] = slots[:k]
            self._gen[start:] = generations[:k]
            self._bucket[:end - cap] = bucket
            self._slot[:end - cap] = slots[k:]
            self._gen[:end - cap] = generations[k:]
        self._size += n
        self.pushed += n

    def pop_valid(self, store: BucketStore) -> Optional[Tuple[int, int]]:
        """Pop the oldest entry that still describes a reclaimable slot.

        An entry is valid iff the slot's generation is unchanged and its
        status is still QUEUED (i.e. the host bucket has not reshuffled
        it away and nobody else consumed it).
        """
        cap = self.capacity
        bkt_col, slt_col, gen_col = self._bucket, self._slot, self._gen
        gen_arr = store.generation
        st_arr = store.status
        while self._size:
            h = self._head
            b = int(bkt_col[h])
            s = int(slt_col[h])
            g = int(gen_col[h])
            h += 1
            self._head = h if h < cap else 0
            self._size -= 1
            if gen_arr[b, s] == g and st_arr[b, s] == ST_QUEUED:
                self.popped += 1
                return b, s
            self.stale_discarded += 1
        return None

    def requeue_front(self, bucket: int, slot: int, generation: int) -> None:
        """Put an entry back at the head (used when a pop must be undone)."""
        if self._size >= self.capacity:
            raise RuntimeError("requeue_front on a full DeadQueue")
        h = self._head - 1
        if h < 0:
            h += self.capacity
        self._head = h
        self._bucket[h] = bucket
        self._slot[h] = slot
        self._gen[h] = generation
        self._size += 1
        self.popped -= 1

    def entries(self) -> List[Tuple[int, int, int]]:
        """Snapshot of (bucket, slot, generation) entries, oldest first."""
        if not self._size:
            return []
        idx = (self._head + np.arange(self._size)) % self.capacity
        return list(zip(
            self._bucket[idx].tolist(),
            self._slot[idx].tolist(),
            self._gen[idx].tolist(),
        ))


class DeadQueueSet:
    """The collection of DeadQs, one per tracked level."""

    def __init__(self, levels: Iterable[int], capacity: int) -> None:
        self.queues: Dict[int, DeadQueue] = {
            int(lv): DeadQueue(capacity) for lv in levels
        }

    def __contains__(self, level: int) -> bool:
        return level in self.queues

    def get(self, level: int) -> Optional[DeadQueue]:
        return self.queues.get(level)

    def tracked_levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self.queues))

    def total_entries(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def stats(self) -> Dict[int, Dict[str, int]]:
        return {
            lv: {
                "size": len(q),
                "pushed": q.pushed,
                "popped": q.popped,
                "dropped_full": q.dropped_full,
                "stale_discarded": q.stale_discarded,
            }
            for lv, q in self.queues.items()
        }
