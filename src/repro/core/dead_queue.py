"""DeadQ: per-level FIFO queues of reclaimable dead slots.

The paper keeps one small (1000-entry) on-chip FIFO per *bottom* tree
level. ``gatherDEADs`` pushes the {slotAddr, slotInd} of DEAD slots seen
during readPath metadata accesses; remote allocation pops entries to
extend a reshuffling bucket's ``S``.

Entries can go stale: the slot's host bucket may get reshuffled (and the
slot rewritten) while the entry still sits in the queue. Rather than
searching the FIFO at every reshuffle, the bucket store bumps a per-slot
*generation* counter when it reclaims a queued slot; the queue validates
generations at pop time and silently discards stale entries. This keeps
both ends of the queue O(1), matching the paper's "since they are FIFO
queues, the maintenance cost is low".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple

from repro.oram.bucket import BucketStore, SlotStatus


class DeadQueue:
    """One level's FIFO of (bucket, slot, generation) entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"DeadQueue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._fifo: Deque[Tuple[int, int, int]] = deque()
        self.pushed = 0
        self.dropped_full = 0
        self.popped = 0
        self.stale_discarded = 0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    def push(self, bucket: int, slot: int, generation: int) -> bool:
        """Queue a dead slot; False if the queue is full (slot skipped)."""
        if self.is_full:
            self.dropped_full += 1
            return False
        self._fifo.append((bucket, slot, generation))
        self.pushed += 1
        return True

    def pop_valid(self, store: BucketStore) -> Optional[Tuple[int, int]]:
        """Pop the oldest entry that still describes a reclaimable slot.

        An entry is valid iff the slot's generation is unchanged and its
        status is still QUEUED (i.e. the host bucket has not reshuffled
        it away and nobody else consumed it).
        """
        while self._fifo:
            bucket, slot, gen = self._fifo.popleft()
            if (
                store.slot_generation(bucket, slot) == gen
                and store.get_status(bucket, slot) == SlotStatus.QUEUED
            ):
                self.popped += 1
                return bucket, slot
            self.stale_discarded += 1
        return None

    def requeue_front(self, bucket: int, slot: int, generation: int) -> None:
        """Put an entry back at the head (used when a pop must be undone)."""
        self._fifo.appendleft((bucket, slot, generation))
        self.popped -= 1


class DeadQueueSet:
    """The collection of DeadQs, one per tracked level."""

    def __init__(self, levels: Iterable[int], capacity: int) -> None:
        self.queues: Dict[int, DeadQueue] = {
            int(lv): DeadQueue(capacity) for lv in levels
        }

    def __contains__(self, level: int) -> bool:
        return level in self.queues

    def get(self, level: int) -> Optional[DeadQueue]:
        return self.queues.get(level)

    def tracked_levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self.queues))

    def total_entries(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def stats(self) -> Dict[int, Dict[str, int]]:
        return {
            lv: {
                "size": len(q),
                "pushed": q.pushed,
                "popped": q.popped,
                "dropped_full": q.dropped_full,
                "stale_discarded": q.stale_discarded,
            }
            for lv, q in self.queues.items()
        }
