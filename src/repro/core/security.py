"""Empirical security analysis (paper section VI-C).

The attacker observes every readPath: the L (bucket, slot) pairs it
touches, including any remote redirections (those are cleartext). It
then guesses which one of the L reads returned the real block. If Ring
ORAM's indistinguishability holds -- and AB-ORAM preserves it -- the
success rate converges to exactly 1/L regardless of the application
(the paper measures 0.041666 = 1/24 for both Baseline and AB).

:class:`GuessingAttacker` implements exactly that experiment as a
controller observer; it also keeps per-level guess histograms so tests
can verify that no tree level leaks a bias.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.oram.observer import BaseObserver


class GuessingAttacker(BaseObserver):
    """Observer that guesses the real block of every readPath."""

    def __init__(self, levels: int, seed: int = 0) -> None:
        self.levels = levels
        self.rng = np.random.default_rng(seed)
        self.guesses = 0
        self.correct = 0
        self.guess_histogram = np.zeros(levels, dtype=np.int64)
        self.real_histogram = np.zeros(levels, dtype=np.int64)

    # ------------------------------------------------------ observer hooks

    def on_read_path(
        self,
        leaf: int,
        reads: List[Tuple[int, int, int, bool]],
        target_bucket: int,
    ) -> None:
        """Guess one of the path's reads uniformly at random.

        ``reads`` holds (bucket, slot, level, remote) for each of the L
        reads in path order; ``target_bucket`` is the bucket that
        actually returned the real block (-1 for a fully-dummy path,
        e.g. a stash hit or background access -- the attacker cannot
        tell and still guesses; those guesses are necessarily wrong,
        exactly as they would be against the baseline).
        """
        if not reads:
            return
        self.guesses += 1
        pick = int(self.rng.integers(len(reads)))
        self.guess_histogram[reads[pick][2]] += 1
        if target_bucket >= 0:
            # Level of the real read, for bias analysis.
            for b, _slot, lv, _remote in reads:
                if b == target_bucket:
                    self.real_histogram[lv] += 1
                    break
        if target_bucket >= 0 and reads[pick][0] == target_bucket:
            self.correct += 1

    # ------------------------------------------------------------- metrics

    @property
    def success_rate(self) -> float:
        if self.guesses == 0:
            return 0.0
        return self.correct / self.guesses

    @property
    def expected_rate(self) -> float:
        """1/L: the rate an indistinguishable protocol admits."""
        return 1.0 / self.levels

    def advantage(self) -> float:
        """Attacker advantage over blind guessing (should be ~0)."""
        return self.success_rate - self.expected_rate

    def summary(self) -> Dict[str, float]:
        return {
            "guesses": float(self.guesses),
            "success_rate": self.success_rate,
            "expected_rate": self.expected_rate,
            "advantage": self.advantage(),
        }


class RemoteMappingCollector(BaseObserver):
    """Observer building the attacker's dictionary of remote mappings.

    Section VI-A argues that collecting every remote (host bucket, host
    slot) pair reveals nothing about real vs. dummy blocks. This
    collector gathers that exact dictionary so tests can check the
    claim empirically.

    The meaningful comparison is *conditioned on the tree level*: a
    read's level is public in every tree ORAM (path positions are
    observable), real blocks concentrate near the leaves, and the
    fraction of remote reads varies by level (truncated reshuffle
    rounds over-sample dummy reads at upper band levels). Those two
    priors combine into a harmless Simpson's-paradox gap in aggregate
    statistics. The genuine leak test is therefore per level: within
    one level, P(remote | real read) must match P(remote | dummy
    read); :meth:`level_bias` reports that gap per level and
    :meth:`weighted_bias` combines them weighted by real-read counts.
    """

    def __init__(self, band_levels: Optional[Tuple[int, ...]] = None) -> None:
        self.remote_reads = 0
        self.total_reads = 0
        self.remote_real_hits = 0
        self.real_hits = 0
        self.mappings: List[Tuple[int, int]] = []
        # level -> [real, real_remote, dummy, dummy_remote]
        self.per_level: Dict[int, List[int]] = {}
        self._band = set(band_levels) if band_levels is not None else None

    def on_read_path(self, leaf, reads, target_bucket) -> None:
        for b, s, lv, remote in reads:
            self.total_reads += 1
            is_real = target_bucket >= 0 and b == target_bucket
            if remote:
                self.remote_reads += 1
                if len(self.mappings) < 100000:
                    self.mappings.append((b, s))
            if is_real:
                self.real_hits += 1
                if remote:
                    self.remote_real_hits += 1
            if self._band is None or lv in self._band:
                st = self.per_level.setdefault(lv, [0, 0, 0, 0])
                if is_real:
                    st[0] += 1
                    st[1] += int(remote)
                else:
                    st[2] += 1
                    st[3] += int(remote)

    @property
    def remote_fraction(self) -> float:
        return self.remote_reads / self.total_reads if self.total_reads else 0.0

    def level_bias(self, level: int) -> Optional[float]:
        """P(remote|real) - P(remote|dummy) at one level (None if unseen)."""
        st = self.per_level.get(level)
        if not st or st[0] == 0 or st[2] == 0:
            return None
        return st[1] / st[0] - st[3] / st[2]

    def weighted_bias(self) -> float:
        """Per-level biases combined, weighted by real-read counts.

        This is the attacker's usable signal: ~0 means that even
        knowing the full remote-mapping dictionary and the (public)
        level of each read, remote reads are no more likely to be real
        than local ones.
        """
        total_real = 0
        acc = 0.0
        for lv in self.per_level:
            bias = self.level_bias(lv)
            if bias is None:
                continue
            weight = self.per_level[lv][0]
            acc += bias * weight
            total_real += weight
        return acc / total_real if total_real else 0.0

    def level_rows(self) -> List[Dict[str, float]]:
        """Per-level remote-rate table for reporting."""
        rows = []
        for lv in sorted(self.per_level):
            real, real_rem, dummy, dummy_rem = self.per_level[lv]
            rows.append({
                "level": lv,
                "real_reads": real,
                "P(remote|real)": real_rem / real if real else float("nan"),
                "dummy_reads": dummy,
                "P(remote|dummy)": dummy_rem / dummy if dummy else float("nan"),
            })
        return rows
