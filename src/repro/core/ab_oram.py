"""User-facing AB-ORAM controller.

:class:`AbOram` bundles a Ring ORAM instance with the AB-ORAM
extensions (DeadQ tracking + remote allocation) whenever the
configuration asks for them, and exposes a small block-device-style API
(``read``/``write``) plus the statistics the paper reports.

Quick start::

    from repro.core.ab_oram import AbOram

    oram = AbOram.from_scheme("ab", levels=14, seed=7, store_data=True)
    oram.write(42, b"secret payload")
    assert oram.read(42) == b"secret payload"
    print(oram.space_report())
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.core import schemes as schemes_mod
from repro.core.remote import RemoteAllocator
from repro.oram.config import OramConfig
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, MemorySink


def needs_extensions(cfg: OramConfig) -> bool:
    """True if the configuration uses DeadQ tracking / remote allocation."""
    return bool(cfg.deadq_levels) or any(
        g.remote_extension > 0 for g in cfg.geometry
    )


def build_oram(
    cfg: OramConfig,
    sink: Optional[MemorySink] = None,
    seed: int = 0,
    observers: Sequence[Any] = (),
    store_data: bool = False,
    datastore: Optional[Any] = None,
    posmap_mode: str = "onchip",
    robustness: Optional[Any] = None,
) -> RingOram:
    """Construct a RingOram with AB extensions iff the config needs them."""
    ext = RemoteAllocator(cfg) if needs_extensions(cfg) else None
    return RingOram(
        cfg,
        sink=sink,
        seed=seed,
        extensions=ext,
        observers=observers,
        store_data=store_data,
        datastore=datastore,
        posmap_mode=posmap_mode,
        robustness=robustness,
    )


class AbOram:
    """High-level facade over a (possibly AB-extended) Ring ORAM."""

    def __init__(
        self,
        cfg: OramConfig,
        sink: Optional[MemorySink] = None,
        seed: int = 0,
        observers: Sequence[Any] = (),
        store_data: bool = True,
        warm: bool = False,
    ) -> None:
        self.cfg = cfg
        self.oram = build_oram(
            cfg, sink=sink, seed=seed, observers=observers, store_data=store_data
        )
        if warm:
            self.oram.warm_fill()

    @classmethod
    def from_scheme(
        cls,
        scheme: str,
        levels: int = schemes_mod.PAPER_LEVELS,
        **kwargs: Any,
    ) -> "AbOram":
        """Build from a paper scheme name (baseline/ir/dr/ns/ab/ring)."""
        return cls(schemes_mod.by_name(scheme, levels), **kwargs)

    # ----------------------------------------------------------- block API

    @property
    def n_blocks(self) -> int:
        """Number of protected user blocks."""
        return self.cfg.n_real_blocks

    @property
    def block_bytes(self) -> int:
        return self.cfg.block_bytes

    def read(self, block: int) -> Any:
        return self.oram.access(block, write=False)

    def write(self, block: int, value: Any) -> None:
        self.oram.access(block, write=True, value=value)

    # --------------------------------------------------------------- stats

    @property
    def allocator(self) -> Optional[RemoteAllocator]:
        return self.oram.ext

    @property
    def sink(self) -> MemorySink:
        return self.oram.sink

    def space_report(self) -> Dict[str, object]:
        """Space metrics in the paper's terms."""
        cfg = self.cfg
        return {
            "scheme": cfg.name,
            "tree_bytes": cfg.tree_bytes,
            "user_bytes": cfg.user_bytes,
            "space_utilization": cfg.space_utilization,
            "levels": cfg.levels,
            "blocks_protected": cfg.n_real_blocks,
        }

    def runtime_report(self) -> Dict[str, object]:
        """Protocol counters after some accesses."""
        oram = self.oram
        report: Dict[str, object] = {
            "online_accesses": oram.online_accesses,
            "background_accesses": oram.background_accesses,
            "evictions": oram.evict_counter,
            "stash_occupancy": oram.stash.occupancy,
            "stash_peak": oram.stash.peak_occupancy,
            "reshuffles_by_level": oram.store.reshuffles_by_level.tolist(),
            "dead_blocks": oram.store.total_dead_slots(),
        }
        if isinstance(oram.sink, CountingSink):
            report["memory"] = oram.sink.summary()
        if oram.ext is not None:
            report["remote"] = oram.ext.stats()
        return report

    def check(self) -> None:
        """Assert global protocol invariants (delegates to the controller)."""
        self.oram.check_invariants()
