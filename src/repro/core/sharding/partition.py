"""The oblivious partition map: keyed-PRF routing of blocks to shards.

A fleet of N subtrees is only as oblivious as its routing. The
partition map assigns every logical identity (a block id or a KV key)
to one shard with a keyed pseudorandom function: SHA-256 over a
seed-derived salt plus the identity, reduced mod N. The adversary
watching shard traffic learns exactly which *shard* each access went
to -- but that choice is a PRF of the identity, independent of the
request stream, so it reveals nothing an N-times-smaller single tree
would not (see docs/design/sharding.md for the full argument).

Determinism discipline: the map is a pure function of ``(num_shards,
seed)``. Every harness that partitions work -- the sharded simulator,
the serving fleet, the capacity benchmark -- rebuilds the identical
map from those two integers, so per-shard work never depends on which
process computed the split.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np


class PartitionMap:
    """Keyed-PRF assignment of identities to ``num_shards`` buckets."""

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)
        self._salt = hashlib.sha256(
            b"repro/shard-map|" + str(self.seed).encode()
        ).digest()

    # ------------------------------------------------------------- routing

    def shard_of_bytes(self, key: bytes) -> int:
        """Shard of one byte-string identity (KV keys)."""
        digest = hashlib.sha256(self._salt + key).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def shard_of_block(self, block: int) -> int:
        """Shard of one logical block id."""
        return self.shard_of_bytes(b"b|%d" % block)

    # ---------------------------------------------------------- bulk forms

    def split_blocks(self, n_blocks: int) -> Tuple[np.ndarray, np.ndarray]:
        """Partition the dense id range ``[0, n_blocks)``.

        Returns ``(shard_ids, local_ids)``: ``shard_ids[b]`` is block
        ``b``'s shard and ``local_ids[b]`` its dense rank *within* that
        shard (assignment order = global id order), so every shard sees
        a compact local address space it can host in a smaller tree.
        The split covers the whole block universe -- not just the ids a
        particular trace touches -- so shard membership is a property
        of the address, never of the workload.
        """
        if n_blocks < 0:
            raise ValueError("n_blocks must be >= 0")
        shard_ids = np.fromiter(
            (self.shard_of_block(b) for b in range(n_blocks)),
            dtype=np.int64, count=n_blocks,
        )
        local_ids = np.zeros(n_blocks, dtype=np.int64)
        counts = np.zeros(self.num_shards, dtype=np.int64)
        for b in range(n_blocks):
            s = shard_ids[b]
            local_ids[b] = counts[s]
            counts[s] += 1
        return shard_ids, local_ids

    def split_keys(
        self, keys: Iterable[bytes]
    ) -> List[List[bytes]]:
        """Group byte-string keys by shard, preserving input order."""
        out: List[List[bytes]] = [[] for _ in range(self.num_shards)]
        for key in keys:
            out[self.shard_of_bytes(key)].append(key)
        return out

    def occupancy(self, keys: Sequence[bytes]) -> List[int]:
        """Per-shard key counts (balance diagnostics and tests)."""
        counts = [0] * self.num_shards
        for key in keys:
            counts[self.shard_of_bytes(key)] += 1
        return counts

    # -------------------------------------------------------------- report

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "keyed-prf",
            "hash": "sha256",
            "num_shards": self.num_shards,
            "seed": self.seed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionMap(num_shards={self.num_shards}, seed={self.seed})"
