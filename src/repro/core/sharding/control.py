"""The fleet control plane: registration, heartbeats, health states.

Each shard of a fleet runs in its own worker process on its own
simulated clock; the control plane lives in the parent and never
touches a shard directly. Instead, every shard cell returns a
deterministic *event stream* stamped in its simulated DRAM-ns --
``register`` at start, ``heartbeat`` at a fixed cadence, paired
``degraded_enter``/``degraded_exit`` markers when the resilient
serving loop quarantines storage, and ``complete`` at the end. The
parent merges all streams into one global timeline (ordered by
``(ns, shard, kind)``) and drives a per-shard state machine over it::

    REGISTERED --heartbeat--> HEALTHY
    HEALTHY    --degraded_enter--> DEGRADED        (quarantine hit)
    DEGRADED   --degraded_exit--> REBUILDING       (repair + journal)
    REBUILDING --heartbeat--> HEALTHY              (back in rotation)
    any live   --heartbeat gap > miss_after*interval--> DEAD
    DEAD       --heartbeat--> REBUILDING           (rejoin)

Because the event streams are pure functions of each shard's seeded
run and the merge order is total, the control summary is byte-stable:
the same fleet config produces the same transition log at any worker
count, which is what lets reports embed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

REGISTERED = "registered"
HEALTHY = "healthy"
DEGRADED = "degraded"
REBUILDING = "rebuilding"
DEAD = "dead"

STATES = (REGISTERED, HEALTHY, DEGRADED, REBUILDING, DEAD)

#: Event kinds a shard stream may carry, in tie-break order for events
#: sharing a timestamp (an exit processes before the heartbeat that
#: proves the rebuild worked).
EVENT_KINDS = (
    "register", "degraded_enter", "degraded_exit", "heartbeat", "complete",
)


@dataclass(frozen=True)
class ShardEvent:
    """One control-plane observation from a shard's simulated timeline."""

    shard: int
    kind: str
    ns: float

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"shard": self.shard, "kind": self.kind, "ns": self.ns}


class ShardHealth:
    """State machine of one registered shard."""

    def __init__(self, shard: int, registered_ns: float) -> None:
        self.shard = shard
        self.state = REGISTERED
        self.last_heartbeat_ns = registered_ns
        self.completed = False
        #: Transition log: (ns, from_state, to_state, event_kind).
        self.transitions: List[Tuple[float, str, str, str]] = []

    def _move(self, ns: float, to_state: str, kind: str) -> None:
        if to_state != self.state:
            self.transitions.append((ns, self.state, to_state, kind))
            self.state = to_state

    def observe(self, event: ShardEvent) -> None:
        kind = event.kind
        if kind == "heartbeat":
            self.last_heartbeat_ns = event.ns
            if self.state == DEAD:
                # A DEAD shard's first heartbeat re-enters through
                # REBUILDING: it must prove a clean cycle before
                # counting as healthy again.
                self._move(event.ns, REBUILDING, kind)
            elif self.state in (REGISTERED, REBUILDING):
                self._move(event.ns, HEALTHY, kind)
        elif kind == "degraded_enter":
            self._move(event.ns, DEGRADED, kind)
        elif kind == "degraded_exit":
            if self.state == DEGRADED:
                self._move(event.ns, REBUILDING, kind)
        elif kind == "complete":
            self.completed = True
            self.last_heartbeat_ns = event.ns
            if self.state in (REGISTERED, REBUILDING):
                # The run finished before the next heartbeat tick; a
                # clean completion is the same evidence of health a
                # heartbeat would have been.
                self._move(event.ns, HEALTHY, kind)

    def miss_check(self, now_ns: float, timeout_ns: float) -> None:
        """Declare the shard DEAD if its heartbeats stopped."""
        if self.completed or self.state == DEAD:
            return
        if now_ns - self.last_heartbeat_ns > timeout_ns:
            self._move(now_ns, DEAD, "heartbeat")


class ControlPlane:
    """Fleet-scope registry driven by merged shard event streams."""

    def __init__(self, heartbeat_ns: float, miss_after: int = 3) -> None:
        if heartbeat_ns <= 0:
            raise ValueError("heartbeat_ns must be positive")
        if miss_after < 1:
            raise ValueError("miss_after must be >= 1")
        self.heartbeat_ns = float(heartbeat_ns)
        self.miss_after = int(miss_after)
        self.shards: Dict[int, ShardHealth] = {}

    def register(self, shard: int, ns: float = 0.0) -> ShardHealth:
        if shard in self.shards:
            raise ValueError(f"shard {shard} already registered")
        health = ShardHealth(shard, ns)
        self.shards[shard] = health
        return health

    def observe(self, event: ShardEvent) -> None:
        if event.kind == "register":
            if event.shard not in self.shards:
                self.register(event.shard, event.ns)
            return
        if event.shard not in self.shards:
            raise ValueError(f"event for unregistered shard {event.shard}")
        # A long silence is noticed when the *next* event (from any
        # shard) advances the timeline past the miss window.
        self.shards[event.shard].miss_check(
            event.ns, self.miss_after * self.heartbeat_ns
        )
        self.shards[event.shard].observe(event)

    def run(self, events: Iterable[ShardEvent]) -> None:
        """Drive the fleet over a merged timeline (total order)."""
        ordered = sorted(
            events, key=lambda e: (e.ns, e.shard, EVENT_KINDS.index(e.kind))
        )
        for event in ordered:
            self.observe(event)
        if ordered:
            self.finalize(ordered[-1].ns)

    def finalize(self, end_ns: float) -> None:
        """End-of-run sweep: shards that fell silent are DEAD."""
        for health in self.shards.values():
            health.miss_check(end_ns, self.miss_after * self.heartbeat_ns)

    # -------------------------------------------------------------- report

    def all_healthy(self) -> bool:
        return bool(self.shards) and all(
            h.state == HEALTHY for h in self.shards.values()
        )

    def summary(self) -> Dict[str, Any]:
        """Deterministic control block for fleet reports."""
        shards = []
        for shard in sorted(self.shards):
            h = self.shards[shard]
            shards.append({
                "shard": shard,
                "state": h.state,
                "completed": h.completed,
                "transitions": [
                    {"ns": ns, "from": a, "to": b, "event": kind}
                    for ns, a, b, kind in h.transitions
                ],
            })
        return {
            "heartbeat_ns": self.heartbeat_ns,
            "miss_after": self.miss_after,
            "all_healthy": self.all_healthy(),
            "shards": shards,
        }


def control_metrics(summary: Dict[str, Any], registry: Any) -> Any:
    """Fold a control summary into a metrics registry.

    The observability bridge for health transitions: every ``from ->
    to`` edge becomes a ``control.transitions.<from>_to_<to>`` counter,
    each shard's terminal state a ``control.shard.<k>.state`` gauge
    (indexed into :data:`STATES`, so dashboards can threshold on it),
    plus fleet-level ``control.all_healthy`` / ``control.completed`` /
    ``control.deaths``. ``registry`` is a
    :class:`~repro.telemetry.metrics.MetricsRegistry`; passed in rather
    than imported so the control plane stays telemetry-agnostic.
    """
    registry.gauge("control.all_healthy").set(
        1.0 if summary.get("all_healthy") else 0.0
    )
    registry.gauge("control.shards").set(float(len(summary.get("shards", []))))
    for entry in summary.get("shards", []):
        shard = entry["shard"]
        registry.gauge(f"control.shard.{shard}.state").set(
            float(STATES.index(entry["state"]))
        )
        if entry.get("completed"):
            registry.counter("control.completed").inc()
        for t in entry.get("transitions", []):
            registry.counter(
                f"control.transitions.{t['from']}_to_{t['to']}"
            ).inc()
            if t["to"] == DEAD:
                registry.counter("control.deaths").inc()
    return registry


def heartbeat_events(
    shard: int, start_ns: float, end_ns: float, heartbeat_ns: float
) -> List[ShardEvent]:
    """The deterministic heartbeat train of one shard's serving window."""
    events = [ShardEvent(shard, "register", start_ns)]
    k = 1
    while start_ns + k * heartbeat_ns < end_ns:
        events.append(
            ShardEvent(shard, "heartbeat", start_ns + k * heartbeat_ns)
        )
        k += 1
    events.append(ShardEvent(shard, "complete", end_ns))
    return events
