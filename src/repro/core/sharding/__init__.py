"""Horizontal scale: N AB-ORAM subtrees behind an oblivious router.

- :mod:`~repro.core.sharding.partition` -- the keyed-PRF partition map
  (block/key -> shard; the security-relevant piece).
- :mod:`~repro.core.sharding.sharded` -- ``ShardedOram`` and the
  partitioned trace simulator with its merged fleet ``sim`` block.
- :mod:`~repro.core.sharding.fleet` -- the serving fleet: per-shard
  worker processes, batched cross-shard routing, the kill-a-shard
  drill.
- :mod:`~repro.core.sharding.control` -- shard registration,
  heartbeats, and the health state machine.

See ``docs/design/sharding.md`` for the partition-map security
argument and the control-plane state diagram.
"""

from repro.core.sharding.control import (
    ControlPlane, ShardEvent, ShardHealth, heartbeat_events,
)
from repro.core.sharding.fleet import (
    FleetConfig, KillShardDrill, ShardRouter, ShardedStack,
    build_sharded_stack, run_fleet, shard_requests,
)
from repro.core.sharding.partition import PartitionMap
from repro.core.sharding.sharded import (
    ShardedOram, ShardedSimOutcome, levels_for_blocks, run_sharded_sim,
    split_trace,
)

__all__ = [
    "ControlPlane",
    "FleetConfig",
    "KillShardDrill",
    "PartitionMap",
    "ShardEvent",
    "ShardHealth",
    "ShardRouter",
    "ShardedOram",
    "ShardedSimOutcome",
    "ShardedStack",
    "build_sharded_stack",
    "heartbeat_events",
    "levels_for_blocks",
    "run_fleet",
    "run_sharded_sim",
    "shard_requests",
    "split_trace",
]
