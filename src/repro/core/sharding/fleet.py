"""The serving fleet: N worker shards behind one batched router.

This is the serving-layer face of sharding (the simulator face lives
in :mod:`repro.core.sharding.sharded`): each shard is a complete
:class:`~repro.serve.stack.ServedStack` -- its own ORAM, DRAM model,
clock and scheduler -- and a request stream is split across them by
the keyed-PRF partition map over the request *key*. Two execution
forms share the exact same routing rule:

- :class:`ShardRouter` -- in-process: one
  :class:`~repro.serve.scheduler.BatchScheduler` per shard, a window
  of requests is grouped by shard (a stable partition of arrival
  order) and each sub-batch served on its shard. Because one key maps
  to exactly one shard, the per-key FIFO contract of the scheduler is
  inherited verbatim: operations on one key all land on one scheduler
  in arrival order.

- :func:`run_fleet` -- multi-process: each shard is one cell of
  :func:`repro.parallel.executor.run_cells`, rebuilt in its worker
  from ``(FleetConfig, shard id)`` alone. A shard regenerates the full
  workload, keeps exactly the requests the partition map routes to it,
  and serves them on its own simulated clock -- so an N-shard fleet
  *is* N independently-run serial reference shards by construction,
  and the merged per-shard blocks are byte-identical to running each
  shard alone (the fleet-vs-serial CI gate).

Fleet timing: shards drain concurrently, so the fleet's service time
for a window of requests is the *makespan* -- the slowest shard's
simulated serving window -- and fleet throughput is total completions
over that makespan. That is the quantity the capacity benchmark's
>=3x-at-4-shards gate measures.

The fleet also carries the minimal control plane
(:mod:`repro.core.sharding.control`): every shard cell emits a
deterministic event stream on its simulated clock (register,
heartbeats, degraded markers, complete) and the parent drives the
health state machines over the merged timeline. The
``kill-a-shard-under-load`` drill arms a fault plan under exactly one
shard (a sealed chaos stack), which drives that shard through
quarantine -> degraded serving -> rebuild while the rest of the fleet
serves untouched -- PR 2's recovery ladder and PR 7's degraded mode,
exercised at fleet scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.sharding.control import (
    ControlPlane, ShardEvent, control_metrics, heartbeat_events,
)
from repro.core.sharding.partition import PartitionMap
from repro.faults.plan import FaultPlan
from repro.oram.recovery import RobustnessConfig
from repro.parallel.executor import Cell, derive_seed, report_progress, run_cells
from repro.serve.loadgen import WorkloadConfig, generate_requests, initial_items
from repro.serve.replay import replay
from repro.serve.request import OK, STATUSES, Completion, Request
from repro.serve.resilience import ResilienceConfig, resilient_replay
from repro.serve.scheduler import BatchScheduler
from repro.serve.stack import ServedStack, build_stack
from repro.telemetry.metrics import merge_snapshots


# ------------------------------------------------------- in-process routing

@dataclass
class ShardedStack:
    """N independent served stacks behind one partition map.

    What ``build_stack(num_shards=N)`` returns: the in-process fleet,
    for interactive use and the routing-contract tests. Each shard's
    stack is seeded independently (``derive_seed(seed, "shard:i")``)
    and keeps its own simulated clock.
    """

    num_shards: int
    stacks: List[ServedStack]
    pmap: PartitionMap

    @property
    def now_ns(self) -> float:
        """The fleet clock: the slowest shard's simulated time."""
        return max(s.now_ns for s in self.stacks)

    def shard_of(self, key: bytes) -> int:
        return self.pmap.shard_of_bytes(key)

    def preload(self, items: Sequence[Tuple[bytes, bytes]]) -> int:
        """Route and bulk-load initial items; returns blocks consumed."""
        routed: List[List[Tuple[bytes, bytes]]] = [
            [] for _ in range(self.num_shards)
        ]
        for key, value in items:
            routed[self.shard_of(key)].append((key, value))
        return sum(
            stack.kv.preload(batch)
            for stack, batch in zip(self.stacks, routed)
        )

    def arm_faults(self) -> None:
        for stack in self.stacks:
            stack.arm_faults()

    def router(
        self, policy: str = "batch", seed: int = 0
    ) -> "ShardRouter":
        return ShardRouter(self, policy=policy, seed=seed)


def build_sharded_stack(
    scheme: str = "ab",
    levels: int = 10,
    num_shards: int = 2,
    seed: int = 0,
    **stack_kwargs: Any,
) -> ShardedStack:
    """Build an in-process fleet of ``num_shards`` served stacks.

    ``levels`` is the *per-shard* tree depth (a fleet of N L-level
    subtrees holds ~N times the blocks of one L-level tree).
    Per-stack keyword arguments pass through to
    :func:`~repro.serve.stack.build_stack`, except ``telemetry``:
    per-operation tracing assumes one clock and a fleet has N.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if stack_kwargs.get("telemetry") is not None:
        raise ValueError("telemetry tracing is per-stack; fleets do not "
                         "support it (trace a single shard instead)")
    stack_kwargs.pop("telemetry", None)
    stacks = [
        build_stack(
            scheme=scheme, levels=levels,
            seed=derive_seed(seed, f"shard:{i}"), **stack_kwargs,
        )
        for i in range(num_shards)
    ]
    return ShardedStack(
        num_shards=num_shards,
        stacks=stacks,
        pmap=PartitionMap(num_shards, seed=seed),
    )


class ShardRouter:
    """Batched cross-shard routing over an in-process fleet.

    A window of requests is *stably partitioned* by shard -- each
    shard's sub-batch keeps the window's arrival order -- and served
    shard by shard; completions return grouped by shard in shard
    order. Per-key FIFO survives routing because the partition map
    sends every operation on one key to the same shard, whose
    scheduler already guarantees the contract.
    """

    def __init__(
        self, stack: ShardedStack, policy: str = "batch", seed: int = 0
    ) -> None:
        self.stack = stack
        self.pmap = stack.pmap
        self.schedulers = [
            BatchScheduler(
                s.kv, policy=policy, seed=derive_seed(seed, f"shard:{i}"),
                clock=(lambda s=s: s.dram_sink.now),
            )
            for i, s in enumerate(stack.stacks)
        ]

    def route(self, window: Sequence[Request]) -> List[List[Request]]:
        """Group one admission window by shard, preserving order."""
        batches: List[List[Request]] = [
            [] for _ in range(self.stack.num_shards)
        ]
        for req in window:
            batches[self.pmap.shard_of_bytes(req.key)].append(req)
        return batches

    def serve_window(self, window: Sequence[Request]) -> List[Completion]:
        """Dispatch one window's shard batches and merge completions."""
        out: List[Completion] = []
        for shard, batch in enumerate(self.route(window)):
            if batch:
                out.extend(self.schedulers[shard].serve_batch(batch))
        return out

    def stats(self) -> List[Dict[str, Any]]:
        """Per-shard scheduler stats, shard order."""
        return [s.stats() for s in self.schedulers]


# ---------------------------------------------------------- the fleet sweep

#: ORAM-level recovery policy a drilled shard's sealed stack runs
#: under (matches the chaos campaign's default: transient blips retry
#: inline, persistent tamper escalates to quarantine-and-rebuild).
DRILL_ROBUSTNESS = RobustnessConfig(integrity=True, retry_budget=6)


@dataclass(frozen=True)
class KillShardDrill:
    """Kill-a-shard-under-load: one shard serves through a fault plan.

    The drilled shard is built as a sealed chaos stack
    (ChaCha20 + MAC + Merkle with a
    :class:`~repro.faults.memory.FaultyMemory` underneath) and served
    through :func:`~repro.serve.resilience.resilient_replay`; every
    other shard serves normally. The fleet gate then asks: did the
    drilled shard's quarantine-and-rebuild complete (control plane back
    to all-healthy) and did clients keep being answered (availability
    above the floor) while it happened?
    """

    shard: int = 0
    faults: Optional[FaultPlan] = None
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    min_availability: float = 0.0
    robustness: RobustnessConfig = field(
        default_factory=lambda: DRILL_ROBUSTNESS
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "resilience": self.resilience.to_dict(),
            "min_availability": self.min_availability,
            "robustness": self.robustness.to_dict(),
        }


@dataclass
class FleetConfig:
    """One fleet serving run: workload, shard count, optional drill."""

    workload: WorkloadConfig
    scheme: str = "ab"
    #: Per-shard tree depth (every subtree runs at the same depth so
    #: per-access costs are comparable across shard counts).
    levels: int = 9
    num_shards: int = 4
    seed: int = 0
    max_batch: int = 32
    policy: str = "batch"
    drill: Optional[KillShardDrill] = None
    #: Heartbeat cadence on the shards' simulated clocks.
    heartbeat_ns: float = 100_000.0
    miss_after: int = 3
    workers: int = 1
    progress: Any = None   # callable(str) for live shard updates

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "scheme": self.scheme,
            "levels": self.levels,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "policy": self.policy,
            "drill": None if self.drill is None else self.drill.to_dict(),
            "heartbeat_ns": self.heartbeat_ns,
            "miss_after": self.miss_after,
        }


def shard_requests(
    cfg: FleetConfig, shard: int
) -> Tuple[List[Tuple[bytes, bytes]], List[Request]]:
    """The slice of the fleet workload one shard owns.

    Regenerates the full workload (a pure function of its config) and
    keeps the items/requests the partition map routes to ``shard``,
    preserving arrival order and request ids -- this is the "serial
    reference shard" the fleet-vs-serial identity gate quantifies over.
    """
    pmap = PartitionMap(cfg.num_shards, seed=cfg.seed)
    items = [
        (key, value) for key, value in initial_items(cfg.workload)
        if pmap.shard_of_bytes(key) == shard
    ]
    reqs = [
        r for r in generate_requests(cfg.workload)
        if pmap.shard_of_bytes(r.key) == shard
    ]
    return items, reqs


def _percentile_block(latencies: Sequence[float]) -> Dict[str, float]:
    from repro.serve.bench import _percentiles
    return _percentiles(latencies)


def _fleet_shard_task(payload: Tuple[FleetConfig, int]) -> Dict[str, Any]:
    """Serve one shard's slice end-to-end; the unit of fleet fan-out.

    Pure in ``(cfg, shard)``: workload, partition map, stack seed and
    scheduler seed are all derived from the payload, so the result is
    identical whether the shard runs in-process, in a spawn worker, or
    alone as a serial reference. Returns the shard's deterministic
    report block plus its control-plane event stream and the latency
    samples the parent folds into fleet percentiles. No wall-clock
    fields: everything here lands in the deterministic view.
    """
    cfg, shard = payload
    drilled = cfg.drill is not None and cfg.drill.shard == shard
    report_progress(
        f"shard {shard}/{cfg.num_shards}{' [drill]' if drilled else ''} ..."
    )
    items, reqs = shard_requests(cfg, shard)
    stack_seed = derive_seed(cfg.seed, f"shard:{shard}")
    if drilled:
        stack = build_stack(
            scheme=cfg.scheme, levels=cfg.levels, seed=stack_seed,
            observer=True, robustness=cfg.drill.robustness,
            fault_plan=cfg.drill.faults,
        )
        # Sealed stacks cannot bulk-preload: populate through real puts
        # while the fault wrapper is disarmed, then arm it so faults
        # fire only on the live-serving portion.
        for key, value in items:
            stack.kv.put(key, value)
        stack.arm_faults()
        t0 = stack.dram_sink.now
        reqs = [replace(r, arrival_ns=r.arrival_ns + t0) for r in reqs]
    else:
        stack = build_stack(
            scheme=cfg.scheme, levels=cfg.levels, seed=stack_seed,
            observer=True,
        )
        stack.kv.preload(items)
    scheduler = BatchScheduler(
        stack.kv, policy=cfg.policy, seed=stack_seed,
        clock=lambda: stack.dram_sink.now,
    )
    if drilled:
        result = resilient_replay(
            stack, reqs, scheduler, cfg.drill.resilience,
            max_batch=cfg.max_batch,
        )
    else:
        result = replay(stack, reqs, scheduler, max_batch=cfg.max_batch)
    comps = result.completions
    served = [c for c in comps if c.status == OK]
    status: Dict[str, int] = {s: 0 for s in STATUSES}
    for c in comps:
        status[c.status] += 1
    stats = scheduler.stats()
    sim: Dict[str, Any] = {
        "requests": len(reqs),
        "completions": len(comps),
        "status": status,
        "availability": status[OK] / len(comps) if comps else 1.0,
        "accesses_issued": stats["accesses_issued"],
        "dedup_hits": stats["dedup_hits"],
        "coalesced_puts": stats["coalesced_puts"],
        "absent_gets": stats["absent_gets"],
        "sim_ns": result.sim_ns,
        "latency_ns": _percentile_block([c.latency_ns for c in served]),
    }
    events = heartbeat_events(
        shard, result.start_ns, result.end_ns, cfg.heartbeat_ns
    )
    if drilled:
        from repro.serve.chaos import _detection_block, _episode_block
        sim["degraded_reads"] = result.degraded_reads
        sim["retries"] = result.retries
        sim["journal"] = {
            "appends": result.journal_appends,
            "replayed": result.journal_replayed,
            "sheds": result.journal_sheds,
        }
        sim["episodes"] = _episode_block(result.episodes)
        if stack.faulty is not None:
            summary = stack.faulty.summary()
            sim["faults"] = summary
            sim["detection"] = _detection_block(summary)
        for episode in result.episodes:
            events.append(
                ShardEvent(shard, "degraded_enter", episode["enter_ns"])
            )
            events.append(
                ShardEvent(shard, "degraded_exit", episode["exit_ns"])
            )
    return {
        "cell": {
            "shard": shard,
            "drill": drilled,
            "stored_keys": len(items),
            "sim": sim,
        },
        "events": [e.to_dict() for e in events],
        "latencies": [c.latency_ns for c in served],
    }


def run_fleet(cfg: FleetConfig) -> Dict[str, Any]:
    """Serve one workload across the fleet; returns the fleet block.

    Fans the shards over :func:`run_cells` (``cfg.workers > 1`` uses
    the spawn pool; the merged result is byte-identical at any worker
    count), drives the control plane over the merged event timeline,
    and folds per-shard telemetry snapshots in shard order. A shard
    whose worker raises becomes an ``{"shard", "error"}`` entry and
    fails the control plane's ``all_healthy``.
    """
    if cfg.num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {cfg.num_shards}")
    if cfg.drill is not None and not (
        0 <= cfg.drill.shard < cfg.num_shards
    ):
        raise ValueError(
            f"drill shard {cfg.drill.shard} outside fleet of "
            f"{cfg.num_shards}"
        )
    worker_cfg = replace(cfg, progress=None, workers=1)
    outputs = run_cells(
        _fleet_shard_task,
        [Cell(f"shard:{i}", (worker_cfg, i)) for i in range(cfg.num_shards)],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    shards: List[Dict[str, Any]] = []
    events: List[ShardEvent] = []
    latencies: List[float] = []
    snapshots: List[dict] = []
    failed = False
    for i, res in enumerate(outputs):
        if not res.ok:
            shards.append({"shard": i, "error": res.error})
            failed = True
            continue
        shards.append(res.value["cell"])
        events.extend(
            ShardEvent(**e) for e in res.value["events"]
        )
        latencies.extend(res.value["latencies"])
        if res.metrics:
            snapshots.append(res.metrics)
    control = ControlPlane(cfg.heartbeat_ns, miss_after=cfg.miss_after)
    control.run(events)
    ok_cells = [s for s in shards if "error" not in s]
    completions = sum(s["sim"]["completions"] for s in ok_cells)
    requests = sum(s["sim"]["requests"] for s in ok_cells)
    served = sum(s["sim"]["status"][OK] for s in ok_cells)
    makespan = max((s["sim"]["sim_ns"] for s in ok_cells), default=0.0)
    status: Dict[str, int] = {s: 0 for s in STATUSES}
    for cell in ok_cells:
        for key, count in cell["sim"]["status"].items():
            status[key] += count
    fleet: Dict[str, Any] = {
        "requests": requests,
        "completions": completions,
        "status": status,
        "availability": served / completions if completions else 1.0,
        "makespan_ns": makespan,
        "ns_per_request": makespan / completions if completions else 0.0,
        "requests_per_s_sim": (
            completions / (makespan / 1e9) if makespan > 0 else 0.0
        ),
        "latency_ns": _percentile_block(latencies),
    }
    doc: Dict[str, Any] = {
        "num_shards": cfg.num_shards,
        "shards": shards,
        "fleet": fleet,
        "control": control.summary(),
    }
    if failed:
        doc["error"] = "one or more shards failed"
    # The control plane's health story rides along as metrics: shard
    # telemetry snapshots (when any) merged with the transition
    # counters and state gauges derived from the summary above.
    from repro.telemetry.metrics import MetricsRegistry
    registry = control_metrics(doc["control"], MetricsRegistry())
    doc["metrics"] = merge_snapshots(snapshots + [registry.snapshot()])
    return doc


__all__ = [
    "DRILL_ROBUSTNESS",
    "FleetConfig",
    "KillShardDrill",
    "ShardRouter",
    "ShardedStack",
    "build_sharded_stack",
    "run_fleet",
    "shard_requests",
    "_fleet_shard_task",
]
