"""``ShardedOram``: N independent AB-ORAM subtrees behind one map.

Horizontal scale for the single-controller bottleneck: every logical
block routes to one of N subtrees through the keyed-PRF
:class:`~repro.core.sharding.partition.PartitionMap`, each subtree is
a standard (smaller) scheme instance with its own stash, position map,
RNG stream and clock, and nothing is ever shared between shards -- so
per-shard security arguments are untouched and shards can run in
separate processes.

Two layers live here:

- :class:`ShardedOram` -- the in-process object: build N subtrees,
  route ``access(block)`` calls, merge stats. Each shard's behaviour
  is *identical by construction* to running that shard alone, because
  the only cross-shard state is the stateless partition map.
- :func:`run_sharded_sim` -- the harness form: partition a trace by
  block id, simulate every shard independently (optionally over the
  spawn pool of :mod:`repro.parallel`), and merge the per-shard
  results into one fleet-level ``sim`` block where ``exec_ns`` is the
  makespan (shards drain concurrently) and the counters are sums.

Because the partition covers the whole block universe -- not just the
ids a trace touches -- each shard's local address space is dense and
bounded by ``ceil(n_blocks / N)``-ish (PRF balance), which lets every
subtree run at the smallest tree depth that fits its slice:
``levels_for_blocks`` picks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core import schemes as schemes_mod
from repro.core.ab_oram import build_oram
from repro.core.sharding.partition import PartitionMap
from repro.parallel.executor import Cell, derive_seed, report_progress, run_cells
from repro.sim.engine import SimConfig, simulate
from repro.sim.results import SimResult
from repro.traces.trace import Trace, TraceRequest

#: Smallest per-shard tree depth ``levels_for_blocks`` will pick; the
#: schemes' bottom-level special cases are all calibrated at L >= 6.
MIN_SHARD_LEVELS = 6


def levels_for_blocks(scheme: str, n_blocks: int, max_levels: int = 26) -> int:
    """Smallest tree depth whose scheme instance holds ``n_blocks``."""
    for levels in range(MIN_SHARD_LEVELS, max_levels + 1):
        if schemes_mod.by_name(scheme, levels).n_real_blocks >= n_blocks:
            return levels
    raise ValueError(
        f"no {scheme} tree up to L={max_levels} holds {n_blocks} blocks"
    )


class ShardedOram:
    """N independent subtrees routing one logical block space."""

    def __init__(
        self,
        scheme: str,
        levels: int,
        num_shards: int,
        seed: int = 0,
        total_blocks: Optional[int] = None,
    ) -> None:
        """Build a fleet whose union capacity covers ``total_blocks``.

        ``levels`` is the *reference* single-tree depth: by default the
        fleet protects exactly the block space of one ``scheme`` tree
        at that depth, while each shard runs at the smallest depth that
        fits its PRF slice of it.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.scheme = scheme
        self.seed = int(seed)
        self.num_shards = int(num_shards)
        reference = schemes_mod.by_name(scheme, levels)
        self.n_real_blocks = (
            int(total_blocks) if total_blocks is not None
            else reference.n_real_blocks
        )
        self.pmap = PartitionMap(num_shards, seed=seed)
        self.shard_ids, self.local_ids = self.pmap.split_blocks(
            self.n_real_blocks
        )
        counts = np.bincount(self.shard_ids, minlength=num_shards)
        self.shard_blocks = [int(c) for c in counts]
        self.shard_levels = levels_for_blocks(
            scheme, max(1, int(counts.max())) if self.n_real_blocks else 1
        )
        self.shard_cfg = schemes_mod.by_name(scheme, self.shard_levels)
        self.shards = []
        for i in range(num_shards):
            oram = build_oram(
                self.shard_cfg, seed=derive_seed(self.seed, f"shard:{i}")
            )
            oram.warm_fill()
            self.shards.append(oram)

    def access(self, block: int, write: bool = False) -> Any:
        """Route one logical access to its shard's subtree."""
        if not 0 <= block < self.n_real_blocks:
            raise IndexError(
                f"block {block} outside [0, {self.n_real_blocks})"
            )
        shard = int(self.shard_ids[block])
        local = int(self.local_ids[block])
        return self.shards[shard].access(local, write=write)

    def stats_by_shard(self) -> List[Dict[str, Any]]:
        """Per-shard DRAM counter summaries, shard order."""
        return [oram.sink.summary() for oram in self.shards]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "num_shards": self.num_shards,
            "n_real_blocks": self.n_real_blocks,
            "shard_levels": self.shard_levels,
            "shard_blocks": self.shard_blocks,
            "partition": self.pmap.to_dict(),
        }


# ----------------------------------------------------------- trace splitting

def split_trace(
    trace: Trace, pmap: PartitionMap, n_blocks: int,
) -> List[Trace]:
    """Partition a trace into per-shard local traces.

    Block ids are remapped to each shard's dense local space, so every
    sub-trace replays against a right-sized subtree. Relative request
    order within a shard is preserved (routing is a stable partition of
    the program order).
    """
    shard_ids, local_ids = pmap.split_blocks(n_blocks)
    per_shard: List[List[TraceRequest]] = [
        [] for _ in range(pmap.num_shards)
    ]
    for req in trace.requests:
        shard = int(shard_ids[req.block])
        per_shard[shard].append(
            TraceRequest(block=int(local_ids[req.block]), write=req.write)
        )
    return [
        Trace(
            name=f"{trace.name}@s{i}",
            requests=reqs,
            read_mpki=trace.read_mpki,
            write_mpki=trace.write_mpki,
            suite=trace.suite,
        )
        for i, reqs in enumerate(per_shard)
    ]


@dataclass
class ShardedSimOutcome:
    """One partitioned simulation: per-shard results plus the merge."""

    scheme: str
    trace: str
    num_shards: int
    shard_levels: int
    #: Blocks of the full universe assigned to each shard.
    shard_blocks: List[int]
    #: Requests of the trace that routed to each shard.
    shard_requests: List[int]
    per_shard: List[SimResult]

    @property
    def exec_ns(self) -> float:
        """Fleet makespan: shards drain concurrently."""
        return max((r.exec_ns for r in self.per_shard), default=0.0)

    @property
    def requests(self) -> int:
        return sum(r.requests for r in self.per_shard)

    def merged_sim_block(self) -> Dict[str, Any]:
        """The fleet-level ``sim`` block (perf-schema shaped).

        ``exec_ns`` is the makespan and ``ns_per_access`` the aggregate
        DRAM-ns per request at fleet scope; counters are sums,
        ``stash_peak`` the worst shard, and ``row_hit_rate`` the
        traffic-weighted mean.
        """
        results = self.per_shard
        exec_ns = self.exec_ns
        requests = self.requests
        depth = max(
            (len(r.reshuffles_by_level) for r in results), default=0
        )
        by_level = [0] * depth
        for r in results:
            for lv, count in enumerate(r.reshuffles_by_level):
                by_level[lv] += int(count)
        traffic = [int(r.dram_reads) + int(r.dram_writes) for r in results]
        total_traffic = sum(traffic)
        row_hit = (
            sum(r.row_hit_rate * t for r, t in zip(results, traffic))
            / total_traffic if total_traffic else 0.0
        )
        return {
            "exec_ns": exec_ns,
            "ns_per_access": exec_ns / requests if requests else 0.0,
            "stash_peak": max((r.stash_peak for r in results), default=0),
            "reshuffles_total": sum(by_level),
            "reshuffles_by_level": by_level,
            "dram_reads": sum(int(r.dram_reads) for r in results),
            "dram_writes": sum(int(r.dram_writes) for r in results),
            "row_hit_rate": row_hit,
            "online_accesses": sum(int(r.online_accesses) for r in results),
            "background_accesses": sum(
                int(r.background_accesses) for r in results
            ),
            "evictions": sum(int(r.evictions) for r in results),
            "dead_blocks": sum(int(r.dead_blocks) for r in results),
            "remote_accesses": sum(int(r.remote_accesses) for r in results),
        }


def _shard_sim_task(payload: Any) -> SimResult:
    """One shard's simulation, runnable in-process or in a spawn worker."""
    scheme, levels, sub_trace, warmup, seed, shard, pipeline_depth = payload
    report_progress(f"shard {shard}: {len(sub_trace)} requests ...")
    cfg = schemes_mod.by_name(scheme, levels)
    return simulate(cfg, sub_trace, SimConfig(
        seed=derive_seed(seed, f"shard:{shard}"),
        warmup_requests=warmup,
        pipeline_depth=pipeline_depth,
    ))


def run_sharded_sim(
    scheme: str,
    trace: Trace,
    n_blocks: int,
    num_shards: int,
    warmup_requests: int = 0,
    seed: int = 0,
    pipeline_depth: int = 1,
    workers: int = 1,
    progress: Any = None,
) -> ShardedSimOutcome:
    """Partition ``trace`` over ``num_shards`` subtrees and simulate.

    Each shard is one :func:`repro.parallel.executor.run_cells` cell:
    an independent, seed-pinned simulation of its slice at the smallest
    tree depth that fits the largest slice (all shards share a depth so
    their per-access costs are comparable). Warmup is split
    proportionally to each shard's request share. The outcome's merge
    is byte-identical at any ``workers`` width because every shard's
    result is a pure function of ``(config, shard id)``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    pmap = PartitionMap(num_shards, seed=seed)
    sub_traces = split_trace(trace, pmap, n_blocks)
    shard_ids, _ = pmap.split_blocks(n_blocks)
    counts = np.bincount(shard_ids, minlength=num_shards)
    shard_levels = levels_for_blocks(scheme, max(1, int(counts.max())))
    total = len(trace.requests)
    payloads = []
    for i, sub in enumerate(sub_traces):
        share = len(sub.requests) / total if total else 0.0
        warmup = int(round(warmup_requests * share))
        warmup = min(warmup, len(sub.requests))
        payloads.append(
            (scheme, shard_levels, sub, warmup, seed, i, pipeline_depth)
        )
    outputs = run_cells(
        _shard_sim_task,
        [Cell(f"shard:{i}", p) for i, p in enumerate(payloads)],
        workers=workers,
        progress=progress,
    )
    results: List[SimResult] = []
    for i, res in enumerate(outputs):
        if not res.ok:
            raise RuntimeError(f"shard {i} simulation failed:\n{res.error}")
        results.append(res.value)
    return ShardedSimOutcome(
        scheme=scheme,
        trace=trace.name,
        num_shards=num_shards,
        shard_levels=shard_levels,
        shard_blocks=[int(c) for c in counts],
        shard_requests=[len(t.requests) for t in sub_traces],
        per_shard=results,
    )


__all__: Sequence[str] = (
    "MIN_SHARD_LEVELS",
    "ShardedOram",
    "ShardedSimOutcome",
    "levels_for_blocks",
    "run_sharded_sim",
    "split_trace",
)
