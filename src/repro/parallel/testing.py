"""Importable task functions for exercising the parallel executor.

Spawn workers import tasks by module path, so the tasks used by the
test suite must live in a real module -- lambdas and locals defined in
a test body cannot cross the process boundary. Kept inside the package
(not under ``tests/``) so they resolve regardless of how pytest sets
up ``sys.path`` in the children.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Tuple

from repro.parallel.executor import derive_seed, report_progress, worker_registry


def echo_task(payload: Any) -> Any:
    """Return the payload unchanged (ordering/merge tests)."""
    return payload


def square_task(payload: int) -> int:
    """Deterministic arithmetic with the pid attached nowhere."""
    return payload * payload


def seeded_task(payload: Tuple[int, str]) -> Dict[str, int]:
    """Derive a per-cell seed the canonical way (determinism tests)."""
    base_seed, key = payload
    return {"seed": derive_seed(base_seed, key), "pid_independent": 1}


def failing_task(payload: Any) -> Any:
    """Raise inside the worker (error-entry isolation tests)."""
    if payload == "boom":
        raise ValueError("requested failure")
    return payload


def hard_exit_task(payload: Any) -> Any:
    """Kill the worker process outright (crash-isolation tests).

    ``os._exit`` skips all interpreter cleanup, exactly like a native
    crash would; the executor must confine the damage to this cell.
    """
    if payload == "die":
        os._exit(13)
    return payload


def progress_task(payload: Any) -> Any:
    """Emit a progress line from inside the worker (queue routing)."""
    report_progress(f"cell {payload} running")
    return payload


def metrics_task(payload: Tuple[str, int]) -> int:
    """Record deterministic metrics into the worker registry.

    Used by the telemetry merge tests: the per-cell snapshots must fold
    to the same merged result whatever the worker count.
    """
    name, n = payload
    reg = worker_registry()
    reg.counter("cells").inc()
    reg.counter(f"by_name.{name}").inc(n)
    reg.gauge("last_n").set(n)
    reg.histogram("values", bounds=(1.0, 10.0, 100.0)).observe(float(n))
    return n * 2


def plain_task(payload: int) -> int:
    """Touch no metrics at all (metrics-free cells must ship None)."""
    return payload + 1
