"""The parallel cell executor: spawn fan-out, ordered merge, crash isolation.

Design constraints, in order:

1. **Determinism.** A sweep's *content* must not depend on worker count
   or scheduling. Cells are merged by submission index, and every cell
   must derive its randomness from its payload (see :func:`derive_seed`
   for the canonical helper), never from execution order.
2. **Crash isolation.** A cell that raises reports an error entry; a
   cell whose worker dies outright (``os._exit``, segfault, OOM kill)
   must not take the rest of the sweep with it. A broken pool triggers
   a one-cell-per-pool fallback for whatever was still unfinished, so
   the crash is charged to the cell that caused it and every other cell
   still completes. Cells are therefore required to be *pure*: the
   fallback re-runs cells whose first pool died under them.
3. **Process-safe progress.** Callbacks are never pickled. Worker code
   calls :func:`report_progress`, which routes through a queue owned by
   the parent; a drain thread invokes the user's callable locally. In
   serial mode the same :func:`report_progress` calls it directly, so
   task functions are written once and run identically in both modes.

The ``spawn`` start method is used everywhere: it is the only method
that behaves identically across platforms and it guarantees workers
import task functions fresh instead of inheriting arbitrary parent
state through ``fork``.
"""

from __future__ import annotations

import hashlib
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "Cell",
    "CellResult",
    "derive_seed",
    "report_progress",
    "run_cells",
    "worker_registry",
]


@dataclass(frozen=True)
class Cell:
    """One unit of independent work.

    ``key`` names the cell in progress messages and error entries and
    must be unique within a sweep; ``payload`` is handed to the task
    function and must be picklable (workers are separate processes).
    """

    key: str
    payload: Any = None


@dataclass
class CellResult:
    """Outcome of one cell, in the submission order of its Cell.

    ``ok`` distinguishes a value from a failure; ``error`` carries the
    formatted traceback (worker exception) or a crash note (worker
    death) so sweep reports can embed it. ``metrics`` is the cell's
    telemetry-registry snapshot, present only when the task recorded
    into :func:`worker_registry` (see the merge protocol there).
    """

    key: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    metrics: Optional[dict] = None


def derive_seed(base_seed: int, key: str) -> int:
    """A stable per-cell seed: hash of ``(base_seed, key)``.

    Cells must not share random streams and must not depend on
    execution order, so per-cell seeds are derived from the cell's
    *identity*, never from a shared counter. The hash keeps distinct
    keys statistically independent even when base seeds are small
    consecutive integers.
    """
    digest = hashlib.sha256(f"{base_seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1   # non-negative int64


# --------------------------------------------------------------- progress

# In a worker process this holds the parent's queue (installed by the
# pool initializer); in the parent's serial path it holds the user
# callable itself. Either way, task code only ever calls
# ``report_progress``.
_progress_sink: Any = None


def _pool_init(queue: Any) -> None:
    """Worker-side pool initializer: remember the progress queue."""
    global _progress_sink
    _progress_sink = queue


def report_progress(message: str) -> None:
    """Emit one progress line from inside a task function.

    No-op when the sweep runs without a progress callback. Never
    raises: progress is best-effort and must not fail a cell.
    """
    sink = _progress_sink
    if sink is None:
        return
    try:
        if callable(sink):
            sink(message)
        else:
            sink.put(message)
    except Exception:
        pass


def _drain_progress(queue: Any, progress: Callable[[str], None]) -> None:
    """Parent-side drain thread: queue messages -> local callback."""
    while True:
        try:
            msg = queue.get()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        try:
            progress(msg)
        except Exception:
            pass


# --------------------------------------------------------------- telemetry

# Process-local metrics registry for the cell currently executing.
# ``_call_cell`` installs a fresh registry before each cell and ships
# its snapshot (a plain dict -- picklable) back with the result, so the
# parent can fold per-cell snapshots in submission order regardless of
# which worker ran which cell. That ordering rule is what makes a
# merged parallel sweep byte-identical to its serial run.
_worker_registry: Any = None


def worker_registry() -> Any:
    """The metrics registry for the currently-executing cell.

    Task functions call this to record counters/gauges/histograms; the
    executor snapshots the registry when the cell finishes and attaches
    it to the cell's :class:`CellResult` as ``metrics``. Outside a cell
    (plain library use) this lazily creates a standalone registry, so
    task code never needs to branch on execution mode.
    """
    global _worker_registry
    if _worker_registry is None:
        from repro.telemetry.metrics import MetricsRegistry
        _worker_registry = MetricsRegistry()
    return _worker_registry


# --------------------------------------------------------------- execution

def _call_cell(task: Callable[[Any], Any], key: str, payload: Any) -> Tuple[
    bool, Any, Optional[str], Optional[dict]
]:
    """Worker entry: run one cell, never let an exception escape.

    Runs in the worker process (or inline in serial mode); converting
    failures to values here is what keeps one bad cell from aborting
    the pool's whole future set. Each cell starts with a fresh worker
    registry; the snapshot rides home with the result (None when the
    cell recorded nothing, so metrics-free sweeps pay nothing).
    """
    global _worker_registry
    from repro.telemetry.metrics import MetricsRegistry
    prev = _worker_registry
    registry = _worker_registry = MetricsRegistry()
    try:
        value = task(payload)
        snap = registry.snapshot() if len(registry) else None
        return True, value, None, snap
    except Exception as exc:
        return False, None, (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        ), None
    finally:
        _worker_registry = prev


def _run_serial(
    task: Callable[[Any], Any],
    cells: List[Cell],
    progress: Optional[Callable[[str], None]],
) -> List[CellResult]:
    """In-process execution; the default and the baseline for identity.

    The sink is saved and restored, not cleared: sweeps nest (a perf
    cell's task runs ``run_suite``, which is itself a ``run_cells``
    sweep), and the inner serial sweep must not clobber the outer
    sweep's progress routing -- including the queue sink a spawn
    worker was initialized with.
    """
    global _progress_sink
    prev = _progress_sink
    _progress_sink = progress
    try:
        out: List[CellResult] = []
        for cell in cells:
            ok, value, error, metrics = _call_cell(task, cell.key, cell.payload)
            out.append(CellResult(cell.key, ok, value, error, metrics))
        return out
    finally:
        _progress_sink = prev


def _run_isolated(
    task: Callable[[Any], Any],
    pending: List[Tuple[int, Cell]],
    results: List[Optional[CellResult]],
    queue: Any,
) -> None:
    """Crash fallback: one single-worker pool per remaining cell.

    Only entered after a worker died hard. Each cell gets a pool of its
    own, so a repeat crash is attributed to exactly the cell that
    caused it while every other cell still completes.
    """
    ctx = get_context("spawn")
    for i, cell in pending:
        try:
            with ProcessPoolExecutor(
                max_workers=1, mp_context=ctx,
                initializer=_pool_init, initargs=(queue,),
            ) as pool:
                ok, value, error, metrics = pool.submit(
                    _call_cell, task, cell.key, cell.payload
                ).result()
            results[i] = CellResult(cell.key, ok, value, error, metrics)
        except BrokenProcessPool:
            results[i] = CellResult(
                cell.key, False, None,
                "worker process died while running this cell",
            )


def run_cells(
    task: Callable[[Any], Any],
    cells: Sequence[Cell],
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellResult]:
    """Run every cell through ``task``; results in submission order.

    ``task`` must be a module-level callable (workers import it by
    reference) mapping a cell's payload to its result value, and cells
    must be pure: independent of each other and reproducible from their
    payload alone. ``workers <= 1`` runs everything in-process with the
    exact same error handling, which is what keeps serial and parallel
    sweep reports identical cell for cell.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cell_list = list(cells)
    keys = [c.key for c in cell_list]
    if len(set(keys)) != len(keys):
        raise ValueError("cell keys must be unique within a sweep")
    if workers == 1 or len(cell_list) <= 1:
        return _run_serial(task, cell_list, progress)

    ctx = get_context("spawn")
    queue = ctx.Queue() if progress is not None else None
    drain: Optional[threading.Thread] = None
    if queue is not None:
        drain = threading.Thread(
            target=_drain_progress, args=(queue, progress), daemon=True
        )
        drain.start()
    results: List[Optional[CellResult]] = [None] * len(cell_list)
    try:
        broken = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cell_list)), mp_context=ctx,
            initializer=_pool_init, initargs=(queue,),
        ) as pool:
            futures = [
                (i, cell, pool.submit(_call_cell, task, cell.key, cell.payload))
                for i, cell in enumerate(cell_list)
            ]
            for i, cell, fut in futures:
                if broken:
                    # Pool is dead; salvage futures that finished
                    # before the crash, leave the rest for isolation.
                    if fut.done() and not fut.cancelled():
                        try:
                            ok, value, error, metrics = fut.result()
                            results[i] = CellResult(
                                cell.key, ok, value, error, metrics
                            )
                        except Exception:
                            pass
                    continue
                try:
                    ok, value, error, metrics = fut.result()
                except BrokenProcessPool:
                    broken = True
                    continue
                results[i] = CellResult(cell.key, ok, value, error, metrics)
        if broken:
            pending = [
                (i, cell) for i, (cell, res) in
                enumerate(zip(cell_list, results)) if res is None
            ]
            _run_isolated(task, pending, results, queue)
    finally:
        if queue is not None:
            queue.put(None)
            if drain is not None:
                drain.join(timeout=5.0)
            queue.close()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
