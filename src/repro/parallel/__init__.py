"""Deterministic parallel execution of independent sweep cells.

Every sweep in this repository -- the perf matrix, the fault-injection
campaign, the paper-figure benchmarks -- is a bag of *cells* that share
no state: each cell derives every random stream from pinned seeds, so
its result is a pure function of its payload. :func:`run_cells` fans
such cells over a ``spawn`` process pool and merges the results back in
submission order, which makes the parallel output indistinguishable
from the serial one (same entries, same order) while a failed or even
hard-crashed worker costs exactly its own cell.
"""

from repro.parallel.executor import (
    Cell,
    CellResult,
    derive_seed,
    report_progress,
    run_cells,
    worker_registry,
)

__all__ = [
    "Cell",
    "CellResult",
    "derive_seed",
    "report_progress",
    "run_cells",
    "worker_registry",
]
