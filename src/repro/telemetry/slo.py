"""Streaming SLO engine: windowed objectives on the simulated clock.

The serving layer answers requests on the simulated DRAM clock; this
module watches those answers *as a stream* and folds them into
fixed-width windows, exactly the way a production SLO pipeline folds
arrival-stamped events into minutely buckets -- except every timestamp
here is simulated, so the whole evaluation is a pure function of the
workload and replays byte-identically at any worker count.

Three rule kinds cover the campaign gates the chaos harness already
enforces offline:

- ``latency_p99``   -- the window's served-request p99 (estimated from
  a log-bucketed histogram) must stay under ``threshold`` ns.
- ``availability``  -- the window's served fraction must stay above the
  ``threshold`` floor. The **burn rate** is the classic error-budget
  ratio ``(1 - availability) / (1 - floor)``: burn 1.0 spends budget
  exactly as fast as the objective allows, burn 2.0 exhausts it in half
  the period.
- ``detection_rate`` -- evaluated once at :meth:`SloEngine.finish`
  against the campaign's tamper-detection block; a detection gap is an
  SLO violation like any other.

The engine emits two structured JSONL record types (``slo_window`` and
``slo_alert``) plus Perfetto instant events for the alert timeline, so
one evaluation feeds the report, the ops console and the merged fleet
trace without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Histogram, default_time_buckets

#: Rule kinds the engine evaluates.
RULE_KINDS = ("latency_p99", "availability", "detection_rate")

#: Category for SLO alert instants on the merged fleet trace.
CAT_SLO = "fleet.slo"


@dataclass(frozen=True)
class SloRule:
    """One service-level objective.

    ``threshold`` is nanoseconds for ``latency_p99`` and a fraction in
    [0, 1] for the other kinds. ``burn_alert`` is the burn-rate level
    at which a window trips an alert (1.0 = any budget overspend).
    """

    name: str
    kind: str
    threshold: float
    burn_alert: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"unknown SLO rule kind {self.kind!r} "
                f"(expected one of {RULE_KINDS})"
            )
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")
        if self.kind != "latency_p99" and self.threshold > 1.0:
            raise ValueError(
                f"{self.kind} threshold is a fraction, got {self.threshold}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "burn_alert": self.burn_alert,
        }


def default_slo_rules(
    min_availability: float = 0.9,
    p99_ns: float = 2_000_000.0,
    detection: bool = False,
) -> Tuple[SloRule, ...]:
    """The rule set the chaos campaign derives from each cell's gate."""
    rules = [
        SloRule("latency-p99", "latency_p99", p99_ns),
        SloRule(
            "availability", "availability",
            # A floor of 0 (or 1.0 exactly) breaks the budget ratio;
            # clamp into the open interval the burn math needs.
            min(max(min_availability, 0.05), 0.999),
        ),
    ]
    if detection:
        rules.append(SloRule("tamper-detection", "detection_rate", 0.999))
    return tuple(rules)


class SloEngine:
    """Fold completion events into SLO windows on the simulated clock.

    Feed :meth:`observe` in nondecreasing ``ns`` order (the caller
    merges shard streams by ``(done_ns, rid)`` first); each window
    crossing closes the previous window, appends one ``slo_window``
    record and zero or more ``slo_alert`` records to :attr:`records`.
    """

    def __init__(
        self,
        rules: Sequence[SloRule],
        window_ns: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.rules = tuple(rules)
        self.window_ns = float(window_ns)
        self._bounds = tuple(bounds or default_time_buckets())
        #: Cumulative served-latency histogram (the merge-property
        #: anchor: shard-wise folds of this must equal a serial fold).
        self.hist = Histogram(self._bounds)
        self.requests = 0
        self.ok = 0
        self.records: List[Dict[str, Any]] = []
        self.alerts: List[Dict[str, Any]] = []
        self._win: Optional[int] = None
        self._win_hist = Histogram(self._bounds)
        self._win_requests = 0
        self._win_ok = 0
        self._last_ns = float("-inf")
        self._finished = False

    # ------------------------------------------------------------- folding

    def observe(self, ns: float, ok: bool, latency_ns: float) -> None:
        """One completion: served (``ok``) or terminal failure."""
        if self._finished:
            raise RuntimeError("SloEngine already finished")
        if ns < self._last_ns:
            raise ValueError(
                f"observations must be time-ordered: {ns} after "
                f"{self._last_ns}"
            )
        self._last_ns = ns
        idx = int(ns // self.window_ns)
        if self._win is None:
            self._win = idx
        elif idx > self._win:
            self._close_window()
            self._win = idx
        self.requests += 1
        self._win_requests += 1
        if ok:
            self.ok += 1
            self._win_ok += 1
            self.hist.observe(latency_ns)
            self._win_hist.observe(latency_ns)

    def _burn(self, rule: SloRule, availability: float, p99: float) -> float:
        if rule.kind == "latency_p99":
            return p99 / rule.threshold
        if rule.kind == "availability":
            return (1.0 - availability) / (1.0 - rule.threshold)
        return 0.0   # detection_rate: evaluated at finish, not per window

    def _close_window(self) -> None:
        if self._win is None or self._win_requests == 0:
            self._reset_window()
            return
        idx = self._win
        end_ns = (idx + 1) * self.window_ns
        availability = self._win_ok / self._win_requests
        p50 = self._win_hist.quantile(0.5)
        p99 = self._win_hist.quantile(0.99)
        burns = {
            r.name: self._burn(r, availability, p99)
            for r in self.rules if r.kind != "detection_rate"
        }
        self.records.append({
            "type": "slo_window",
            "window": idx,
            "start_ns": idx * self.window_ns,
            "end_ns": end_ns,
            "requests": self._win_requests,
            "ok": self._win_ok,
            "availability": availability,
            "p50_ns": p50,
            "p99_ns": p99,
            "burn": burns,
        })
        for rule in self.rules:
            if rule.kind == "detection_rate":
                continue
            burn = burns[rule.name]
            if burn >= rule.burn_alert and (
                rule.kind != "availability" or availability < rule.threshold
            ):
                value = p99 if rule.kind == "latency_p99" else availability
                self._alert(rule, idx, end_ns, value, burn)
        self._reset_window()

    def _alert(
        self, rule: SloRule, window: int, ns: float, value: float, burn: float
    ) -> None:
        record = {
            "type": "slo_alert",
            "rule": rule.name,
            "kind": rule.kind,
            "window": window,
            "ns": ns,
            "value": value,
            "threshold": rule.threshold,
            "burn": burn,
        }
        self.records.append(record)
        self.alerts.append(record)

    def _reset_window(self) -> None:
        self._win_hist = Histogram(self._bounds)
        self._win_requests = 0
        self._win_ok = 0

    # -------------------------------------------------------------- output

    def finish(
        self,
        end_ns: float,
        detection: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Close the last window, evaluate end-of-run rules, summarize.

        ``detection`` is the chaos cell's detection block
        (``{"tamper_injected", "tamper_detected", "rate"}``); the
        ``detection_rate`` rules are judged against its ``rate``.
        """
        if not self._finished:
            self._close_window()
            self._finished = True
            for rule in self.rules:
                if rule.kind != "detection_rate" or detection is None:
                    continue
                rate = detection.get("rate", 1.0)
                if rate < rule.threshold:
                    budget = 1.0 - rule.threshold
                    burn = (1.0 - rate) / budget if budget > 0 else 1.0
                    self._alert(
                        rule, self._win if self._win is not None else 0,
                        end_ns, rate, burn,
                    )
        availability = self.ok / self.requests if self.requests else 1.0
        return {
            "rules": [r.to_dict() for r in self.rules],
            "window_ns": self.window_ns,
            "windows": sum(
                1 for r in self.records if r["type"] == "slo_window"
            ),
            "requests": self.requests,
            "ok": self.ok,
            "availability": availability,
            "p50_ns": self.hist.quantile(0.5),
            "p99_ns": self.hist.quantile(0.99),
            "alerts": len(self.alerts),
        }

    def snapshot(self) -> Dict[str, Any]:
        """The cumulative histogram in registry-snapshot shape."""
        return {
            "bounds": list(self.hist.bounds),
            "counts": list(self.hist.counts),
            "count": self.hist.count,
            "sum": self.hist.sum,
        }

    def trace_instants(self, tid: int, pid: int = 0) -> List[Dict[str, Any]]:
        """One Perfetto instant per alert, for the fleet trace's SLO track."""
        out: List[Dict[str, Any]] = []
        for alert in self.alerts:
            out.append({
                "name": f"slo:{alert['rule']}",
                "cat": CAT_SLO,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": alert["ns"] / 1000.0,
                "args": {
                    "rule": alert["rule"],
                    "kind": alert["kind"],
                    "value": alert["value"],
                    "threshold": alert["threshold"],
                    "burn": alert["burn"],
                },
            })
        return out


def fold_completions(
    engine: SloEngine,
    completions: Sequence[Any],
) -> None:
    """Feed serve-layer completions, ordered by ``(done_ns, rid)``.

    The merge point for fleet streams: concatenate every shard's
    completions, sort by the simulated completion stamp (rid breaks
    ties -- rids are fleet-unique), and fold. Identical to an
    in-order single-stack fold by construction.
    """
    for c in sorted(completions, key=lambda c: (c.done_ns, c.rid)):
        engine.observe(c.done_ns, c.status == "ok", c.latency_ns)


__all__ = [
    "CAT_SLO",
    "RULE_KINDS",
    "SloEngine",
    "SloRule",
    "default_slo_rules",
    "fold_completions",
]
