"""``repro.telemetry``: op-span tracing, live metrics, progress output.

The observability layer of the simulator:

- :class:`Telemetry` -- one run's handle: span list, metrics registry,
  Chrome trace-event + JSONL outputs (see :mod:`repro.telemetry.handle`);
- :class:`MetricsRegistry` / :func:`merge_snapshots` -- counters,
  gauges, fixed-bucket histograms, and the process-safe snapshot/merge
  protocol parallel sweeps use (:mod:`repro.telemetry.metrics`);
- :class:`TracingSink` / :class:`TelemetryObserver` -- the
  MemorySink/BaseObserver pair bracketing protocol operations
  (:mod:`repro.telemetry.spans`);
- :func:`stderr_progress` -- the shared progress callback with the
  ``REPRO_QUIET`` escape hatch (:mod:`repro.telemetry.progress`).

Everything here observes and never steers: attaching telemetry to a
simulation leaves its RNG streams, DRAM timing and ``SimResult``
bit-identical to a bare run.
"""

from repro.telemetry.console import (
    OpsSampler,
    frames_from_stream,
    render_frame,
    render_replay,
    run_console,
)
from repro.telemetry.fleet import (
    ShardFragment,
    TraceContext,
    control_instants,
    fleet_trace_doc,
    mint_context,
    mint_trace_id,
)
from repro.telemetry.handle import Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_time_buckets,
    merge_snapshots,
    quantiles_from_snapshot,
)
from repro.telemetry.progress import quiet, stderr_progress
from repro.telemetry.slo import SloEngine, SloRule, default_slo_rules, fold_completions
from repro.telemetry.spans import TelemetryObserver, TracingSink, trace_event_doc
from repro.telemetry.view import load_stream, render_stream

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpsSampler",
    "ShardFragment",
    "SloEngine",
    "SloRule",
    "Telemetry",
    "TelemetryObserver",
    "TraceContext",
    "TracingSink",
    "control_instants",
    "default_slo_rules",
    "default_time_buckets",
    "fleet_trace_doc",
    "fold_completions",
    "frames_from_stream",
    "load_stream",
    "merge_snapshots",
    "mint_context",
    "mint_trace_id",
    "quantiles_from_snapshot",
    "quiet",
    "render_frame",
    "render_replay",
    "render_stream",
    "run_console",
    "stderr_progress",
    "trace_event_doc",
]
