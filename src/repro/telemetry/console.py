"""The live ops console: ``serve top`` over a recorded ops stream.

Serving campaigns can record a per-shard *ops stream* -- one JSONL
``snapshot`` record per (cell, shard, window) sampled on the simulated
clock by :class:`OpsSampler` inside the resilient serving loop, plus
the SLO engine's ``slo_window`` / ``slo_alert`` records. This module
turns that stream into a periodically-refreshing terminal table: one
row per shard showing health state, queue depth, stash occupancy,
DeadQ depth, journal depth, throughput and p50/p99 -- the ``top(1)``
view of an ORAM fleet.

Because every record is stamped in simulated ns, a ``--replay`` render
is deterministic: the same stream produces the same frames, byte for
byte, which is how the CI smoke checks it.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Sequence, TextIO

import numpy as np

from repro.analysis.report import render_mapping_table


class OpsSampler:
    """Sample one shard's serving state at window boundaries.

    The resilient serving loop calls :meth:`sample` once per scheduling
    round with its live state; the sampler emits one ``snapshot``
    record per elapsed simulated window. Sampling only *reads* --
    attaching a sampler never changes serving decisions, clocks or
    results.
    """

    def __init__(
        self, cell: str, shard: int, window_ns: float, stack: Any,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.cell = cell
        self.shard = shard
        self.window_ns = float(window_ns)
        self._stack = stack
        self.records: List[Dict[str, Any]] = []
        self._win: Optional[int] = None
        self._taken = 0        # completions pulled off the live list
        self._attributed = 0   # completions folded into closed windows
        self._carry: List[Any] = []   # seen, but done after the window
        self._state: Dict[str, Any] = {}

    def _oram_depths(self) -> Dict[str, int]:
        oram = self._stack.kv.oram
        deadq = 0
        if oram.ext is not None:
            deadq = sum(
                len(q) for q in oram.ext.queues.queues.values()
            )
        return {
            "stash_occupancy": int(oram.stash.occupancy),
            "deadq_depth": int(deadq),
        }

    def _close(self, window: int, completions: Sequence[Any]) -> None:
        # Attribute by completion stamp: a clock jump can close several
        # windows at once, and each completion belongs to the window
        # its ``done_ns`` falls in, not to the first one closed.
        end_ns = (window + 1) * self.window_ns
        pool = self._carry + list(completions[self._taken:])
        self._taken = len(completions)
        fresh = [c for c in pool if c.done_ns < end_ns]
        self._carry = [c for c in pool if c.done_ns >= end_ns]
        self._attributed += len(fresh)
        served = [c.latency_ns for c in fresh if c.status == "ok"]
        window_s = self.window_ns / 1e9
        record = {
            "type": "snapshot",
            "cell": self.cell,
            "shard": self.shard,
            "window": window,
            "ns": end_ns,
            "requests": self._attributed,
            "window_requests": len(fresh),
            "window_ok": len(served),
            "throughput_rps": len(fresh) / window_s,
            "p50_ns": (
                float(np.percentile(served, 50)) if served else 0.0
            ),
            "p99_ns": (
                float(np.percentile(served, 99)) if served else 0.0
            ),
        }
        record.update(self._state)
        self.records.append(record)

    def sample(
        self,
        now: float,
        queue_depth: int,
        completions: Sequence[Any],
        degraded: bool,
        journal_depth: int,
    ) -> None:
        idx = int(now // self.window_ns)
        if self._win is None:
            self._win = idx
        while self._win < idx:
            self._close(self._win, completions)
            self._win += 1
        self._state = {
            "state": "degraded" if degraded else "ok",
            "queue_depth": int(queue_depth),
            "journal_depth": int(journal_depth),
            **self._oram_depths(),
        }

    def finish(self, end_ns: float, completions: Sequence[Any]) -> None:
        """Close every window up to and including the run's last."""
        idx = int(end_ns // self.window_ns)
        if self._win is None:
            self._win = idx
        while self._win < idx:
            self._close(self._win, completions)
            self._win += 1
        self._close(self._win, completions)


# ---------------------------------------------------------------- rendering

def frames_from_stream(stream: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Group a loaded ops stream into renderable frames.

    One frame per (cell, window) with per-shard rows plus any SLO
    alerts that fired in that window. Frames come back in stream
    order: cells as recorded, windows ascending.
    """
    frames: Dict[Any, Dict[str, Any]] = {}
    order: List[Any] = []
    for snap in stream.get("snapshots", []):
        if "shard" not in snap or "window" not in snap:
            continue
        key = (snap.get("cell"), snap["window"])
        frame = frames.get(key)
        if frame is None:
            frame = frames[key] = {
                "cell": snap.get("cell"),
                "window": snap["window"],
                "ns": snap.get("ns", 0.0),
                "shards": [],
                "alerts": [],
            }
            order.append(key)
        frame["shards"].append(snap)
    for record in stream.get("slo", []):
        if record.get("type") != "slo_alert":
            continue
        key = (record.get("cell"), record.get("window"))
        if key in frames:
            frames[key]["alerts"].append(record)
    out = []
    for key in order:
        frame = frames[key]
        frame["shards"].sort(key=lambda s: s["shard"])
        out.append(frame)
    return out


def render_frame(frame: Dict[str, Any]) -> str:
    """One console frame: the per-shard table plus alert lines."""
    rows = []
    for snap in frame["shards"]:
        reqs = snap.get("window_requests", 0)
        ok = snap.get("window_ok", 0)
        rows.append({
            "shard": snap["shard"],
            "state": snap.get("state", "?"),
            "queue": snap.get("queue_depth", 0),
            "stash": snap.get("stash_occupancy", 0),
            "deadq": snap.get("deadq_depth", 0),
            "journal": snap.get("journal_depth", 0),
            "reqs": reqs,
            "ok_pct": 100.0 * ok / reqs if reqs else 100.0,
            "krps": snap.get("throughput_rps", 0.0) / 1e3,
            "p50_us": snap.get("p50_ns", 0.0) / 1e3,
            "p99_us": snap.get("p99_ns", 0.0) / 1e3,
        })
    title = (
        f"cell {frame['cell']} | window {frame['window']} "
        f"| t={frame['ns'] / 1e3:.0f}us"
    )
    parts = [render_mapping_table(rows, title=title)]
    for alert in frame["alerts"]:
        parts.append(
            f"ALERT {alert['rule']}: value {alert['value']:.4g} vs "
            f"threshold {alert['threshold']:.4g} "
            f"(burn {alert['burn']:.2f}x)"
        )
    return "\n".join(parts)


def render_replay(
    path: str, max_frames: Optional[int] = None,
) -> List[str]:
    """Every frame of one recorded ops stream, rendered."""
    from repro.telemetry.view import load_stream

    stream = load_stream(path)
    frames = frames_from_stream(stream)
    if max_frames is not None:
        frames = frames[:max_frames]
    return [render_frame(f) for f in frames]


def run_console(
    path: str,
    interval: float = 0.0,
    max_frames: Optional[int] = None,
    clear: bool = True,
    out: TextIO = sys.stdout,
) -> int:
    """Play an ops stream as a refreshing console; returns frame count.

    ``interval`` seconds between frames (0 renders everything at once,
    the deterministic mode CI replays); ``clear`` redraws in place via
    ANSI home+clear when the stream is animated.
    """
    rendered = render_replay(path, max_frames=max_frames)
    for i, frame in enumerate(rendered):
        if interval > 0 and clear and out.isatty():
            out.write("\x1b[2J\x1b[H")
        out.write(frame)
        out.write("\n")
        if interval > 0 and i < len(rendered) - 1:
            out.flush()
            time.sleep(interval)
    out.flush()
    return len(rendered)


__all__ = [
    "OpsSampler",
    "frames_from_stream",
    "render_frame",
    "render_replay",
    "run_console",
]
