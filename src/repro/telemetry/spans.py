"""Op-span tracing: bracket every protocol operation into a timed span.

:class:`TracingSink` wraps the simulation's timing sink (any
:class:`~repro.oram.stats.MemorySink` with a ``now`` clock attribute,
i.e. :class:`~repro.sim.engine.DramSink`). It forwards every call
unchanged -- the DRAM model sees the identical request stream, so
simulation statistics stay bit-identical -- and stamps each
``begin_op``/``end_op`` pair with the DRAM-model nanosecond clock:
``begin_op`` samples the operation's start, ``end_op`` (which rewinds
the inner clock to the operation's completion time) samples its end.

:class:`TelemetryObserver` is the observer-side half of the pair: a
:class:`~repro.oram.observer.BaseObserver` that tallies protocol events
(slot deaths, reclaims by mechanism, reshuffles by kind) into a metrics
registry. It is attached only on request -- observers make the
controller build per-read event tuples, which costs more than the
metrics themselves.

Spans are exported as Chrome trace-event JSON (the ``traceEvents``
array format), directly loadable in Perfetto / ``chrome://tracing``.
Trace-event timestamps are microseconds by convention; the nanosecond
remainder survives because ``ts``/``dur`` are floats.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.oram.observer import BaseObserver
from repro.oram.stats import MemorySink, OpKind

#: One finished span: (op-kind name, start ns, duration ns).
Span = Tuple[str, float, float]


class TracingSink(MemorySink):
    """Forwarding sink that records one span per protocol operation."""

    def __init__(self, inner: Any, telemetry: Any) -> None:
        if not hasattr(inner, "now"):
            raise TypeError(
                f"TracingSink needs a clocked sink (with .now), "
                f"got {type(inner).__name__}"
            )
        self.inner = inner
        self.telemetry = telemetry
        self._kind: Optional[OpKind] = None
        self._start = 0.0

    def begin_op(self, kind: OpKind) -> None:
        if self._kind is not None:
            raise RuntimeError(f"nested operation: {kind} inside {self._kind}")
        self.inner.begin_op(kind)
        self._kind = kind
        self._start = self.inner.now

    def data_access(self, bucket, slot, level, write, onchip=False, remote=False):
        self.inner.data_access(bucket, slot, level, write,
                               onchip=onchip, remote=remote)

    def metadata_access(self, bucket, level, write, onchip=False, blocks=1):
        self.inner.metadata_access(bucket, level, write,
                                   onchip=onchip, blocks=blocks)

    def data_access_many(self, items, write):
        self.inner.data_access_many(items, write)

    def data_access_repeat(self, bucket, slot, level, count, write,
                           onchip=False, remote=False):
        self.inner.data_access_repeat(bucket, slot, level, count, write,
                                      onchip=onchip, remote=remote)

    def data_access_block(self, bucket, slots, level, write,
                          onchip=False, remote=False):
        self.inner.data_access_block(bucket, slots, level, write,
                                     onchip=onchip, remote=remote)

    def metadata_access_many(self, items, write, blocks=1):
        self.inner.metadata_access_many(items, write, blocks=blocks)

    def stall(self, ns: float) -> None:
        self.inner.stall(ns)

    def end_op(self) -> None:
        if self._kind is None:
            raise RuntimeError("end_op without begin_op")
        self.inner.end_op()
        # end_op set the inner clock to the operation's completion time.
        end = self.inner.now
        kind = self._kind
        self._kind = None
        self.telemetry.record_span(str(kind), self._start, end - self._start)


class TelemetryObserver(BaseObserver):
    """Tally controller protocol events into a metrics registry."""

    def __init__(self, registry: Any) -> None:
        self._deaths = registry.counter("events.slot_dead")
        self._reclaim_reshuffle = registry.counter("events.reclaimed.reshuffle")
        self._reclaim_remote = registry.counter("events.reclaimed.remote")
        self._evictions = registry.counter("events.evict_path")
        self._reshuffles: Dict[Any, Any] = {}
        self._registry = registry

    def on_slot_dead(self, bucket: int, slot: int, level: int) -> None:
        self._deaths.inc()

    def on_slot_reclaimed(self, bucket, slot, level, how) -> None:
        (self._reclaim_remote if how == "remote"
         else self._reclaim_reshuffle).inc()

    def on_slots_reclaimed(self, bucket, slots: Sequence[int], level, how) -> None:
        (self._reclaim_remote if how == "remote"
         else self._reclaim_reshuffle).inc(len(slots))

    def on_reshuffle(self, bucket, level, kind) -> None:
        c = self._reshuffles.get(kind)
        if c is None:
            c = self._reshuffles[kind] = self._registry.counter(
                f"events.reshuffle.{kind}"
            )
        c.inc()

    def on_evict_path(self, leaf: int) -> None:
        self._evictions.inc()


def trace_event_doc(
    spans: Sequence[Span],
    meta: Optional[Dict[str, Any]] = None,
    extra_events: Optional[Sequence[Dict[str, Any]]] = None,
    track_names: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON document for ``spans``.

    Every span becomes one complete ("X") event on a single
    pid/tid track; the simulated controller is sequential, so one
    timeline is the truthful rendering. ``ts``/``dur`` are in
    microseconds per the trace-event convention (sub-us resolution is
    preserved in the float); the original nanosecond values ride in
    ``args`` for tooling that wants them exact.

    ``track_names`` labels additional tids (pid 0) via ``thread_name``
    metadata events, and ``extra_events`` appends pre-built events --
    the serving harness uses both to lay per-request spans on their
    own tracks alongside the op-span timeline (tid 0).
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": "repro-sim"},
    }]
    for tid, track in sorted((track_names or {}).items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        })
    for name, start_ns, dur_ns in spans:
        events.append({
            "name": name,
            "cat": "oram",
            "ph": "X",
            "pid": 0,
            "tid": 0,
            "ts": start_ns / 1000.0,
            "dur": dur_ns / 1000.0,
            "args": {"start_ns": start_ns, "dur_ns": dur_ns},
        })
    if extra_events:
        events.extend(extra_events)
    doc: Dict[str, Any] = {
        "displayTimeUnit": "ns",
        "traceEvents": events,
    }
    if meta:
        doc["otherData"] = dict(meta)
    return doc
