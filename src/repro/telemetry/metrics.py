"""The live metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Cheap enough to leave on.** The hot-path operations are
   ``Counter.inc`` (one int add), ``Gauge.set`` (one float store) and
   ``Histogram.observe`` (one bisect + int add). Instruments are
   created once through the registry and cached by the caller, so the
   name lookup never sits on a per-access path.
2. **Deterministic snapshots.** :meth:`MetricsRegistry.snapshot`
   returns a plain JSON-able dict with instruments in sorted-name
   order, so two runs that made the same updates produce byte-identical
   serializations regardless of creation order.
3. **Process-safe merging.** Snapshots -- not registries -- cross
   process boundaries (they are plain dicts, hence picklable), and
   :func:`merge_snapshots` folds any number of per-worker snapshots
   into one. Merging is order-deterministic: counters and histogram
   bins sum (commutative), gauges keep the last merged value plus the
   running max, so folding per-cell snapshots in submission order
   yields the same result a serial run would have produced in place.

Histograms use *fixed* bucket bounds chosen at creation; quantiles are
estimated by linear interpolation inside the bucket that crosses the
requested rank. That trades exactness for O(1) memory and a merge that
is a plain elementwise sum -- the classic serving-stack compromise.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def default_time_buckets() -> Tuple[float, ...]:
    """Power-of-two bounds (ns) covering DRAM-op to whole-run scales."""
    return tuple(float(64 << i) for i in range(31))


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value instrument that also remembers its maximum."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if self.max is None or value > self.max:
            self.max = value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``bounds`` are ascending upper edges; observations above the last
    bound land in an implicit overflow bucket. ``counts`` therefore has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(float(b) for b in (bounds or default_time_buckets()))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the bucket counts.

        Linear interpolation inside the crossing bucket; the overflow
        bucket reports its lower edge (the estimate is then a floor).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= target:
                if i == len(self.bounds):        # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (target - seen) / c
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            seen += c
        return self.bounds[-1]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------ creation

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        elif bounds is not None and tuple(float(b) for b in bounds) != h.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with different bounds"
            )
        return h

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> Dict[str, Any]:
        """Plain JSON-able state dump, instruments in sorted-name order."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold one :meth:`snapshot` dict into this registry.

        Counters and histogram bins add; gauges adopt the snapshot's
        value (last-merged-wins) while the max accumulates. Histogram
        bounds must agree -- merging incompatible shapes is a caller
        bug, not something to paper over.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, g in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if g.get("max") is not None:
                gauge.set(float(g["max"]))
            if g.get("value") is not None:
                gauge.value = float(g["value"])
        for name, h in snap.get("histograms", {}).items():
            hist = self.histogram(name, h["bounds"])
            if len(h["counts"]) != len(hist.counts):
                raise ValueError(
                    f"histogram {name!r}: cannot merge {len(h['counts'])} "
                    f"bins into {len(hist.counts)}"
                )
            for i, c in enumerate(h["counts"]):
                hist.counts[i] += int(c)
            hist.count += int(h["count"])
            hist.sum += float(h["sum"])


def merge_snapshots(snaps: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-worker snapshots (in the given order) into one snapshot.

    The canonical merge protocol for parallel sweeps: each worker's
    registry crosses the process boundary as a snapshot dict, and the
    parent folds them in submission order -- so the merged result is
    identical to what a serial run accumulating into one registry would
    have produced, regardless of worker count or scheduling.
    """
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge_snapshot(snap)
    return reg.snapshot()


def quantiles_from_snapshot(
    hist: Dict[str, Any], qs: Sequence[float] = (0.5, 0.95, 0.99)
) -> List[float]:
    """Estimate quantiles from one snapshot's histogram entry."""
    h = Histogram(hist["bounds"])
    h.counts = [int(c) for c in hist["counts"]]
    h.count = int(hist["count"])
    h.sum = float(hist["sum"])
    return [h.quantile(q) for q in qs]
