"""The shared stderr progress helper.

Every sweep driver used to carry its own
``lambda msg: print(msg, file=sys.stderr)``; this is the one shared
implementation, with an escape hatch: setting ``REPRO_QUIET=1`` (or any
truthy value) in the environment silences progress output entirely --
useful when a harness scrapes stdout and stderr noise would pollute it.
"""

from __future__ import annotations

import os
import sys

_FALSY = ("", "0", "false", "no")


def quiet() -> bool:
    """True when REPRO_QUIET asks for silent progress."""
    return os.environ.get("REPRO_QUIET", "").strip().lower() not in _FALSY


def stderr_progress(message: str) -> None:
    """Print one progress line to stderr unless REPRO_QUIET is set.

    The canonical ``progress=`` callback for ``perf run``, ``faults
    run`` and the simulate CLI path. Checked per call, so flipping the
    environment variable mid-process takes effect immediately (the
    fault-campaign tests rely on that).
    """
    if not quiet():
        print(message, file=sys.stderr)
