"""Fleet-wide distributed tracing: one merged Perfetto timeline.

A sharded run executes in N spawn-pool worker processes, each on its
own simulated clock, with a router in the parent deciding where every
request goes. This module stitches those hops back into a single trace:

- **Trace contexts.** :func:`mint_trace_id` derives a request's trace
  id purely from ``(seed, rid)``, so the router and the shard worker
  agree on the id without communicating -- the distributed-tracing
  trick that keeps the merge deterministic.
- **Shard fragments.** Each worker returns a picklable
  :class:`ShardFragment` -- its op spans, completions and resilience
  events, all stamped in its simulated ns. Nothing host-dependent
  crosses the process boundary.
- **The merged document.** :func:`fleet_trace_doc` lays the router,
  control-plane and SLO tracks on pid 0 and each shard on its own
  process track (pid ``1 + shard``), and binds every request's router
  decision to its shard-side service span with a cross-process flow
  event pair (``ph "s"`` at the route, ``ph "f"`` at the service
  start) keyed by the minted trace id.

Event order in the emitted array is a pure function of the fragments,
so a serial run and a ``--workers N`` run of the same config produce
byte-identical trace files -- CI-gated like every other artifact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.spans import Span

#: Event categories of the fleet-level tracks.
CAT_ROUTER = "fleet.router"
CAT_FLOW = "fleet.flow"
CAT_CONTROL = "fleet.control"

#: pid 0 thread layout: the router lane, the control-plane timeline,
#: and the SLO alert timeline.
ROUTER_TID = 0
CONTROL_TID = 1
SLO_TID = 2


def mint_trace_id(seed: int, rid: int) -> str:
    """Deterministic 64-bit trace id for one request.

    Both sides of a process boundary can mint it independently from
    the fleet seed and the request id -- the fleet-wide analogue of
    :func:`repro.parallel.executor.derive_seed`.
    """
    digest = hashlib.sha256(f"trace:{seed}:{rid}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class TraceContext:
    """The context the router stamps on a request before dispatch."""

    trace_id: str
    rid: int
    shard: int


def mint_context(seed: int, rid: int, shard: int) -> TraceContext:
    return TraceContext(trace_id=mint_trace_id(seed, rid), rid=rid,
                        shard=shard)


@dataclass
class ShardFragment:
    """One shard's contribution to the merged fleet trace.

    Everything in here is stamped in the shard's simulated ns and
    picklable, so fragments cross the spawn-pool boundary unchanged.
    """

    shard: int
    completions: List[Any] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    #: Resilience-loop timeline events (degraded windows, fault
    #: markers) in the :mod:`repro.serve.resilience` dict shape.
    events: List[Dict[str, Any]] = field(default_factory=list)
    start_ns: float = 0.0
    end_ns: float = 0.0


def _meta_event(name: str, pid: int, tid: int, label: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def control_instants(
    control: Dict[str, Any], tid: int = CONTROL_TID, pid: int = 0,
) -> List[Dict[str, Any]]:
    """Health-state transitions as instant events on one timeline.

    ``control`` is a :meth:`~repro.core.sharding.control.ControlPlane
    .summary` block; each transition becomes one thread-scoped instant
    named after the state entered, so Perfetto shows the fleet's
    REGISTERED -> HEALTHY -> DEGRADED -> ... story on a single track.
    """
    out: List[Dict[str, Any]] = []
    marks = []
    for entry in control.get("shards", []):
        for t in entry.get("transitions", []):
            marks.append((t["ns"], entry["shard"], t))
    for ns, shard, t in sorted(marks, key=lambda m: (m[0], m[1])):
        out.append({
            "name": f"shard{shard}:{t['to']}",
            "cat": CAT_CONTROL,
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": ns / 1000.0,
            "args": {
                "shard": shard,
                "from": t["from"],
                "to": t["to"],
                "event": t["event"],
            },
        })
    return out


def _route_events(
    comp: Any, ctx: TraceContext,
) -> List[Dict[str, Any]]:
    """The router-side pair for one request: route span + flow start."""
    ts = comp.arrival_ns / 1000.0
    args = {
        "start_ns": comp.arrival_ns,
        "dur_ns": 0.0,
        "trace_id": ctx.trace_id,
        "rid": comp.rid,
        "shard": ctx.shard,
        "op": comp.op,
    }
    return [
        {
            "name": "route",
            "cat": CAT_ROUTER,
            "ph": "X",
            "pid": 0,
            "tid": ROUTER_TID,
            "ts": ts,
            "dur": 0.0,
            "args": args,
        },
        {
            "name": "req",
            "cat": CAT_FLOW,
            "ph": "s",
            "id": ctx.trace_id,
            "pid": 0,
            "tid": ROUTER_TID,
            "ts": ts,
        },
    ]


def _shard_events(
    frag: ShardFragment, seed: int,
) -> List[Dict[str, Any]]:
    """One shard's process track: op spans, request lanes, resilience."""
    from repro.serve.tracing import (
        _x_event, assign_lanes, resilience_track_events,
    )
    pid = 1 + frag.shard
    events: List[Dict[str, Any]] = []
    for name, start_ns, dur_ns in frag.spans:
        events.append({
            "name": name,
            "cat": "oram",
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": start_ns / 1000.0,
            "dur": dur_ns / 1000.0,
            "args": {"start_ns": start_ns, "dur_ns": dur_ns},
        })
    lanes = assign_lanes(frag.completions)
    for comp in frag.completions:
        tid = lanes[comp.rid] + 1
        trace_id = mint_trace_id(seed, comp.rid)
        args = {
            "trace_id": trace_id,
            "rid": comp.rid,
            "op": comp.op,
            "key": comp.key.decode("latin-1"),
            "ok": comp.ok,
            "accesses": comp.accesses,
            "shard": frag.shard,
        }
        if comp.status != "ok":
            args["status"] = comp.status
        if comp.degraded:
            args["degraded"] = True
        if comp.queue_ns > 0:
            events.append({
                **_x_event("queue", "serve.queue", tid,
                           comp.arrival_ns, comp.queue_ns, args),
                "pid": pid,
            })
        events.append({
            **_x_event(comp.op, "serve.oram", tid,
                       comp.start_ns, comp.service_ns, args),
            "pid": pid,
        })
        events.append({
            "name": "req",
            "cat": CAT_FLOW,
            "ph": "f",
            "bp": "e",
            "id": trace_id,
            "pid": pid,
            "tid": tid,
            "ts": comp.start_ns / 1000.0,
        })
    if frag.events:
        tid = max(lanes.values(), default=-1) + 2
        events.extend(
            {**e, "pid": pid}
            for e in resilience_track_events(frag.events, tid)
        )
    return events


def _shard_track_names(frag: ShardFragment) -> Dict[int, str]:
    from repro.serve.tracing import assign_lanes
    names = {0: "oram-ops"}
    lanes = assign_lanes(frag.completions)
    n_lanes = max(lanes.values(), default=-1) + 1
    for k in range(n_lanes):
        names[k + 1] = f"requests-{k}"
    if frag.events:
        names[n_lanes + 1] = "resilience"
    return names


def fleet_trace_doc(
    fragments: Sequence[ShardFragment],
    seed: int,
    meta: Optional[Dict[str, Any]] = None,
    control: Optional[Dict[str, Any]] = None,
    slo_instants: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Merge shard fragments into one deterministic Perfetto document.

    Process layout: pid 0 is the fleet front (router lane, control
    timeline, SLO alert timeline), pid ``1 + shard`` is that shard's
    worker (op spans on tid 0, request lanes above, the resilience
    track last). Every request is stitched across the boundary by a
    flow-event pair keyed on its minted trace id.
    """
    fragments = sorted(fragments, key=lambda f: f.shard)
    events: List[Dict[str, Any]] = [
        _meta_event("process_name", 0, 0, "fleet-router"),
        _meta_event("thread_name", 0, ROUTER_TID, "router"),
        _meta_event("thread_name", 0, CONTROL_TID, "control"),
        _meta_event("thread_name", 0, SLO_TID, "slo"),
    ]
    for frag in fragments:
        pid = 1 + frag.shard
        events.append(
            _meta_event("process_name", pid, 0, f"shard-{frag.shard}")
        )
        for tid, label in sorted(_shard_track_names(frag).items()):
            events.append(_meta_event("thread_name", pid, tid, label))
    # Router track: every request's dispatch decision, in arrival order
    # across the whole fleet (rids are fleet-unique tie-breakers).
    routed = [
        (comp, mint_context(seed, comp.rid, frag.shard))
        for frag in fragments for comp in frag.completions
    ]
    routed.sort(key=lambda pair: (pair[0].arrival_ns, pair[0].rid))
    for comp, ctx in routed:
        events.extend(_route_events(comp, ctx))
    if control is not None:
        events.extend(control_instants(control))
    if slo_instants:
        events.extend(slo_instants)
    for frag in fragments:
        events.extend(_shard_events(frag, seed))
    doc: Dict[str, Any] = {
        "displayTimeUnit": "ns",
        "traceEvents": events,
    }
    if meta:
        doc["otherData"] = dict(meta)
    return doc


__all__ = [
    "CAT_CONTROL",
    "CAT_FLOW",
    "CAT_ROUTER",
    "CONTROL_TID",
    "ROUTER_TID",
    "SLO_TID",
    "ShardFragment",
    "TraceContext",
    "control_instants",
    "fleet_trace_doc",
    "mint_context",
    "mint_trace_id",
]
