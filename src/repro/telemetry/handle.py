"""The :class:`Telemetry` handle: one run's tracing + metrics state.

A ``Telemetry`` object owns a :class:`~repro.telemetry.metrics
.MetricsRegistry`, a span list and (optionally) two output files:

- ``trace_path`` -- Chrome trace-event JSON with one complete event per
  protocol operation (readPath / evictPath / earlyReshuffle / ...),
  stamped in DRAM-model nanoseconds; load it in Perfetto.
- ``metrics_path`` -- a JSONL stream: one ``meta`` line, one
  ``snapshot`` line per periodic capture (stash occupancy, per-level
  DeadQ depth, remote rentals outstanding, reshuffle counts) and one
  final ``summary`` line with the full registry snapshot plus per-op
  span totals.

Telemetry *observes*: attaching it never changes protocol behaviour,
RNG streams or DRAM timing, so a telemetry-on run's
:class:`~repro.sim.results.SimResult` is bit-identical to the same run
with telemetry off. Drivers create the handle, pass it to
:class:`~repro.sim.engine.Simulation`, and ``close()`` it (or use it as
a context manager) once the run finishes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import (
    Span, TelemetryObserver, TracingSink, trace_event_doc,
)


class Telemetry:
    """Tracing + metrics collection for one simulation run."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        metrics_every: int = 100,
        observe_events: bool = False,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if metrics_every < 0:
            raise ValueError(f"metrics_every must be >= 0, got {metrics_every}")
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.metrics_every = metrics_every
        #: Attach a TelemetryObserver to the controller. Off by default:
        #: a non-empty observer list makes the controller assemble
        #: per-read event tuples, which costs more than the tallies.
        self.observe_events = observe_events
        self.meta: Dict[str, Any] = dict(meta or {})
        self.registry = MetricsRegistry()
        self.spans: List[Span] = []
        #: Pre-built trace events appended verbatim to the Chrome trace
        #: (the pipelined sink lays per-lane op spans here) and the
        #: thread_name labels for the extra tids they live on.
        self.extra_events: List[Dict[str, Any]] = []
        self.track_names: Dict[int, str] = {}
        self.snapshots = 0
        self._span_counters: Dict[str, Any] = {}
        self._span_hists: Dict[str, Histogram] = {}
        self._metrics_file: Optional[Any] = None
        self._closed = False

    # ------------------------------------------------------------ plumbing

    def tracing_sink(self, inner: Any) -> TracingSink:
        """Wrap the run's clocked sink; spans land in this handle."""
        return TracingSink(inner, self)

    def observer(self) -> TelemetryObserver:
        """An observer tallying protocol events into this registry."""
        return TelemetryObserver(self.registry)

    def record_span(self, name: str, start_ns: float, dur_ns: float) -> None:
        """One finished protocol operation (called by the sink)."""
        self.spans.append((name, start_ns, dur_ns))
        c = self._span_counters.get(name)
        if c is None:
            c = self._span_counters[name] = self.registry.counter(f"ops.{name}")
            self._span_hists[name] = self.registry.histogram(f"op_ns.{name}")
        c.inc()
        self._span_hists[name].observe(dur_ns)

    # ------------------------------------------------------------ snapshots

    def record_snapshot(self, record: Dict[str, Any]) -> None:
        """Capture one periodic state snapshot into gauges + the stream.

        ``record`` carries the simulation-state fields (built by
        :meth:`Simulation.telemetry_record`); the well-known ones are
        mirrored into registry gauges so the final summary carries
        their last/max values even without parsing the stream.
        """
        reg = self.registry
        for key, gauge_name in (
            ("stash_occupancy", "stash.occupancy"),
            ("stash_peak", "stash.peak"),
            ("rentals_outstanding", "rentals.outstanding"),
            ("reshuffles_total", "reshuffles.total"),
            ("evictions", "evictions.total"),
        ):
            if key in record:
                reg.gauge(gauge_name).set(record[key])
        for lv, depth in record.get("deadq_depth", {}).items():
            reg.gauge(f"deadq.depth.L{lv}").set(depth)
        if "dram_stalled_ns" in record:
            reg.gauge("dram.stalled_ns").set(record["dram_stalled_ns"])
        dram = record.get("dram")
        if dram:
            busy = dram.get("channel_busy_ns", ())
            for ch, ns in enumerate(busy):
                reg.gauge(f"dram.channel_busy_ns.ch{ch}").set(ns)
            if busy:
                reg.gauge("dram.channel_busy_ns.max").set(max(busy))
            for key in ("bank_busy_peak_ns", "queue_depth_peak",
                        "queue_depth_mean"):
                if key in dram:
                    reg.gauge(f"dram.{key}").set(dram[key])
        for name, value in (record.get("pipeline") or {}).items():
            reg.gauge(f"pipeline.{name}").set(value)
        for name, value in record.get("recovery", {}).items():
            reg.gauge(f"recovery.{name}").set(value)
        self.snapshots += 1
        self._write_line({"type": "snapshot", **record})

    # -------------------------------------------------------------- output

    def _write_line(self, record: Dict[str, Any]) -> None:
        if self.metrics_path is None:
            return
        f = self._metrics_file
        if f is None:
            parent = os.path.dirname(self.metrics_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            f = self._metrics_file = open(self.metrics_path, "w")
            json.dump({"type": "meta", **self.meta}, f, sort_keys=True)
            f.write("\n")
        json.dump(record, f, sort_keys=True)
        f.write("\n")

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-op totals: count and summed duration, sorted by name."""
        out: Dict[str, Dict[str, float]] = {}
        for name, _start, dur in self.spans:
            entry = out.setdefault(name, {"count": 0, "total_ns": 0.0})
            entry["count"] += 1
            entry["total_ns"] += dur
        return {name: out[name] for name in sorted(out)}

    def close(self) -> None:
        """Flush the summary line, the trace file, and close outputs."""
        if self._closed:
            return
        self._closed = True
        self._write_line({
            "type": "summary",
            "snapshots": self.snapshots,
            "spans": self.span_summary(),
            "metrics": self.registry.snapshot(),
        })
        if self._metrics_file is not None:
            self._metrics_file.close()
            self._metrics_file = None
        if self.trace_path is not None:
            parent = os.path.dirname(self.trace_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.trace_path, "w") as f:
                json.dump(
                    trace_event_doc(
                        self.spans, meta=self.meta,
                        extra_events=self.extra_events,
                        track_names=self.track_names,
                    ),
                    f,
                )
                f.write("\n")

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
