"""Render a telemetry JSONL stream as text summary tables.

The stream format (written by :class:`~repro.telemetry.handle
.Telemetry`) is one JSON object per line: a ``meta`` header, zero or
more ``snapshot`` records, and a trailing ``summary`` with the final
registry state and per-op span totals. ``repro telemetry view`` feeds a
stream through :func:`render_stream` for a quick look without firing up
Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.report import render_mapping_table
from repro.telemetry.metrics import quantiles_from_snapshot


def load_stream(path: str) -> Dict[str, Any]:
    """Parse one JSONL stream into {meta, snapshots, slo, summary}.

    Handles both the single-run metrics stream (PR 5) and the fleet
    ops stream: ``snapshot`` records may carry a ``shard`` field, and
    ``slo_window`` / ``slo_alert`` records from the streaming SLO
    engine collect under ``"slo"``.
    """
    meta: Dict[str, Any] = {}
    snapshots: List[Dict[str, Any]] = []
    slo: List[Dict[str, Any]] = []
    summary: Dict[str, Any] = {}
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "snapshot":
                snapshots.append(record)
            elif kind in ("slo_window", "slo_alert"):
                slo.append(record)
            elif kind == "summary":
                summary = record
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return {"meta": meta, "snapshots": snapshots, "slo": slo,
            "summary": summary}


def _span_rows(summary: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    metrics = summary.get("metrics", {})
    hists = metrics.get("histograms", {})
    for op, entry in summary.get("spans", {}).items():
        count = int(entry["count"])
        total = float(entry["total_ns"])
        row: Dict[str, Any] = {
            "op": op,
            "spans": count,
            "total_ns": total,
            "mean_ns": total / count if count else 0.0,
        }
        hist = hists.get(f"op_ns.{op}")
        if hist:
            p50, p95, p99 = quantiles_from_snapshot(hist, (0.5, 0.95, 0.99))
            row.update({"p50_ns": p50, "p95_ns": p95, "p99_ns": p99})
        rows.append(row)
    return rows


def _snapshot_rows(snapshots: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    if not snapshots:
        return []
    last = snapshots[-1]
    stash = [s.get("stash_occupancy", 0) for s in snapshots]
    rows = [
        {"metric": "snapshots", "last": len(snapshots), "peak": None},
        {"metric": "access", "last": last.get("access"), "peak": None},
        {"metric": "sim_ns", "last": last.get("ns"), "peak": None},
        {"metric": "stash_occupancy", "last": last.get("stash_occupancy"),
         "peak": max(stash)},
        {"metric": "stash_peak", "last": last.get("stash_peak"), "peak": None},
        {"metric": "rentals_outstanding",
         "last": last.get("rentals_outstanding"),
         "peak": max(s.get("rentals_outstanding", 0) for s in snapshots)},
        {"metric": "reshuffles_total", "last": last.get("reshuffles_total"),
         "peak": None},
        {"metric": "evictions", "last": last.get("evictions"), "peak": None},
    ]
    for lv in sorted(last.get("deadq_depth", {}), key=int):
        depths = [s.get("deadq_depth", {}).get(lv, 0) for s in snapshots]
        rows.append({
            "metric": f"deadq_depth.L{lv}",
            "last": last["deadq_depth"][lv],
            "peak": max(depths),
        })
    dram = last.get("dram")
    if dram:
        busy = dram.get("channel_busy_ns", [])
        rows.append({"metric": "dram.channel_busy_ns",
                     "last": sum(busy), "peak": max(busy) if busy else None})
        rows.append({"metric": "dram.bank_busy_peak_ns",
                     "last": dram.get("bank_busy_peak_ns"), "peak": None})
        rows.append({
            "metric": "dram.queue_depth",
            "last": dram.get("queue_depth_mean"),
            "peak": max(s.get("dram", {}).get("queue_depth_peak", 0)
                        for s in snapshots),
        })
    pipe = last.get("pipeline")
    if pipe:
        rows.append({"metric": "pipeline.depth",
                     "last": pipe.get("depth"), "peak": None})
        rows.append({
            "metric": "pipeline.inflight",
            "last": pipe.get("inflight_mean"),
            "peak": max(s.get("pipeline", {}).get("inflight_peak", 0)
                        for s in snapshots),
        })
        rows.append({"metric": "pipeline.conflict_stalls",
                     "last": pipe.get("conflict_stalls"),
                     "peak": None})
        rows.append({"metric": "pipeline.conflict_stall_ns",
                     "last": pipe.get("conflict_stall_ns"),
                     "peak": None})
        rows.append({"metric": "pipeline.dram_busy_frac",
                     "last": pipe.get("dram_busy_frac"),
                     "peak": max(s.get("pipeline", {}).get("dram_busy_frac", 0.0)
                                 for s in snapshots)})
    return rows


def _fleet_snapshot_rows(
    snapshots: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-shard columns for a multi-shard ops stream.

    A fleet stream interleaves every shard's snapshots; summing them
    into one column (what :func:`_snapshot_rows` would effectively do)
    hides exactly the skew a fleet view exists to show, so each shard
    gets its own ``s<k>`` column, one metric per row.
    """
    by_shard: Dict[int, List[Dict[str, Any]]] = {}
    for snap in snapshots:
        by_shard.setdefault(int(snap["shard"]), []).append(snap)
    shards = sorted(by_shard)
    metrics = (
        ("state", "state", None),
        ("queue_depth", "queue (peak)", max),
        ("stash_occupancy", "stash (peak)", max),
        ("deadq_depth", "deadq (peak)", max),
        ("journal_depth", "journal (peak)", max),
        ("requests", "requests", None),
        ("throughput_rps", "last_krps", None),
        ("p99_ns", "last_p99_us", None),
    )
    rows: List[Dict[str, Any]] = []
    for key, label, agg in metrics:
        row: Dict[str, Any] = {"metric": label}
        seen = False
        for shard in shards:
            stream = by_shard[shard]
            last = stream[-1].get(key)
            if last is None:
                continue
            seen = True
            if key == "throughput_rps":
                row[f"s{shard}"] = f"{last / 1e3:.1f}"
            elif key == "p99_ns":
                row[f"s{shard}"] = f"{last / 1e3:.1f}"
            elif agg is not None:
                peak = agg(s.get(key, 0) for s in stream)
                row[f"s{shard}"] = f"{last} ({peak})"
            else:
                row[f"s{shard}"] = last
        if seen:
            rows.append(row)
    return rows


def _slo_window_rows(slo: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One summary row per cell over its closed SLO windows.

    Alerts are the exceptional signal; the window summary is what shows
    a *healthy* stream actually streamed -- windows closed, budget
    burned (or not) -- so the view never renders an SLO stream as
    nothing but its meta header.
    """
    by_cell: Dict[Any, List[Dict[str, Any]]] = {}
    for record in slo:
        if record.get("type") == "slo_window":
            by_cell.setdefault(record.get("cell", "-"), []).append(record)
    rows: List[Dict[str, Any]] = []
    for cell, windows in by_cell.items():
        burns: Dict[str, float] = {}
        for w in windows:
            for rule, burn in w.get("burn", {}).items():
                burns[rule] = max(burns.get(rule, 0.0), float(burn))
        worst = max(burns.items(), key=lambda kv: kv[1]) if burns else None
        rows.append({
            "cell": cell,
            "windows": len(windows),
            "requests": sum(int(w.get("requests", 0)) for w in windows),
            "min_avail": min(float(w.get("availability", 1.0))
                             for w in windows),
            "max_p99_us": max(float(w.get("p99_ns", 0.0))
                              for w in windows) / 1e3,
            "worst_burn": (f"{worst[1]:.3g}x {worst[0]}"
                           if worst else "-"),
        })
    return rows


def _slo_rows(slo: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for record in slo:
        if record.get("type") != "slo_alert":
            continue
        rows.append({
            "rule": record.get("rule"),
            "cell": record.get("cell", "-"),
            "window": record.get("window"),
            "value": record.get("value"),
            "threshold": record.get("threshold"),
            "burn": record.get("burn"),
        })
    return rows


def render_stream(path: str) -> str:
    """The ``repro telemetry view`` text report for one JSONL stream."""
    stream = load_stream(path)
    parts: List[str] = []
    meta = {k: v for k, v in stream["meta"].items() if k != "type"}
    if meta:
        parts.append(render_mapping_table([meta], title=f"Telemetry: {path}"))
    span_rows = _span_rows(stream["summary"])
    if span_rows:
        parts.append(render_mapping_table(
            span_rows, title="Operation spans (DRAM-model ns)"))
    fleet = [s for s in stream["snapshots"] if "shard" in s]
    if fleet:
        cells = []
        for snap in fleet:
            cell = snap.get("cell")
            if cell not in cells:
                cells.append(cell)
        for cell in cells:
            subset = [s for s in fleet if s.get("cell") == cell]
            rows = _fleet_snapshot_rows(subset)
            if rows:
                title = ("Fleet snapshots (last / peak), per shard"
                         if cell is None else
                         f"Fleet snapshots: {cell} (last / peak), per shard")
                parts.append(render_mapping_table(rows, title=title))
    snap_rows = _snapshot_rows(
        [s for s in stream["snapshots"] if "shard" not in s]
    )
    if snap_rows:
        parts.append(render_mapping_table(
            snap_rows, title="State snapshots (last / peak over stream)"))
    window_rows = _slo_window_rows(stream.get("slo", []))
    if window_rows:
        parts.append(render_mapping_table(
            window_rows, title="SLO windows (per cell, worst over stream)"))
    slo_rows = _slo_rows(stream.get("slo", []))
    if slo_rows:
        parts.append(render_mapping_table(
            slo_rows, title="SLO alerts (error-budget burn)"))
    counters = stream["summary"].get("metrics", {}).get("counters", {})
    event_rows = [
        {"counter": name, "count": value}
        for name, value in counters.items() if not name.startswith("ops.")
    ]
    if event_rows:
        parts.append(render_mapping_table(event_rows, title="Counters"))
    if not parts:
        return f"{path}: empty telemetry stream"
    return "\n\n".join(parts)
