"""Render a telemetry JSONL stream as text summary tables.

The stream format (written by :class:`~repro.telemetry.handle
.Telemetry`) is one JSON object per line: a ``meta`` header, zero or
more ``snapshot`` records, and a trailing ``summary`` with the final
registry state and per-op span totals. ``repro telemetry view`` feeds a
stream through :func:`render_stream` for a quick look without firing up
Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.report import render_mapping_table
from repro.telemetry.metrics import quantiles_from_snapshot


def load_stream(path: str) -> Dict[str, Any]:
    """Parse one JSONL stream into {meta, snapshots, summary}."""
    meta: Dict[str, Any] = {}
    snapshots: List[Dict[str, Any]] = []
    summary: Dict[str, Any] = {}
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "snapshot":
                snapshots.append(record)
            elif kind == "summary":
                summary = record
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return {"meta": meta, "snapshots": snapshots, "summary": summary}


def _span_rows(summary: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    metrics = summary.get("metrics", {})
    hists = metrics.get("histograms", {})
    for op, entry in summary.get("spans", {}).items():
        count = int(entry["count"])
        total = float(entry["total_ns"])
        row: Dict[str, Any] = {
            "op": op,
            "spans": count,
            "total_ns": total,
            "mean_ns": total / count if count else 0.0,
        }
        hist = hists.get(f"op_ns.{op}")
        if hist:
            p50, p95, p99 = quantiles_from_snapshot(hist, (0.5, 0.95, 0.99))
            row.update({"p50_ns": p50, "p95_ns": p95, "p99_ns": p99})
        rows.append(row)
    return rows


def _snapshot_rows(snapshots: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    if not snapshots:
        return []
    last = snapshots[-1]
    stash = [s.get("stash_occupancy", 0) for s in snapshots]
    rows = [
        {"metric": "snapshots", "last": len(snapshots), "peak": None},
        {"metric": "access", "last": last.get("access"), "peak": None},
        {"metric": "sim_ns", "last": last.get("ns"), "peak": None},
        {"metric": "stash_occupancy", "last": last.get("stash_occupancy"),
         "peak": max(stash)},
        {"metric": "stash_peak", "last": last.get("stash_peak"), "peak": None},
        {"metric": "rentals_outstanding",
         "last": last.get("rentals_outstanding"),
         "peak": max(s.get("rentals_outstanding", 0) for s in snapshots)},
        {"metric": "reshuffles_total", "last": last.get("reshuffles_total"),
         "peak": None},
        {"metric": "evictions", "last": last.get("evictions"), "peak": None},
    ]
    for lv in sorted(last.get("deadq_depth", {}), key=int):
        depths = [s.get("deadq_depth", {}).get(lv, 0) for s in snapshots]
        rows.append({
            "metric": f"deadq_depth.L{lv}",
            "last": last["deadq_depth"][lv],
            "peak": max(depths),
        })
    dram = last.get("dram")
    if dram:
        busy = dram.get("channel_busy_ns", [])
        rows.append({"metric": "dram.channel_busy_ns",
                     "last": sum(busy), "peak": max(busy) if busy else None})
        rows.append({"metric": "dram.bank_busy_peak_ns",
                     "last": dram.get("bank_busy_peak_ns"), "peak": None})
        rows.append({
            "metric": "dram.queue_depth",
            "last": dram.get("queue_depth_mean"),
            "peak": max(s.get("dram", {}).get("queue_depth_peak", 0)
                        for s in snapshots),
        })
    pipe = last.get("pipeline")
    if pipe:
        rows.append({"metric": "pipeline.depth",
                     "last": pipe.get("depth"), "peak": None})
        rows.append({
            "metric": "pipeline.inflight",
            "last": pipe.get("inflight_mean"),
            "peak": max(s.get("pipeline", {}).get("inflight_peak", 0)
                        for s in snapshots),
        })
        rows.append({"metric": "pipeline.conflict_stalls",
                     "last": pipe.get("conflict_stalls"),
                     "peak": None})
        rows.append({"metric": "pipeline.conflict_stall_ns",
                     "last": pipe.get("conflict_stall_ns"),
                     "peak": None})
        rows.append({"metric": "pipeline.dram_busy_frac",
                     "last": pipe.get("dram_busy_frac"),
                     "peak": max(s.get("pipeline", {}).get("dram_busy_frac", 0.0)
                                 for s in snapshots)})
    return rows


def render_stream(path: str) -> str:
    """The ``repro telemetry view`` text report for one JSONL stream."""
    stream = load_stream(path)
    parts: List[str] = []
    meta = {k: v for k, v in stream["meta"].items() if k != "type"}
    if meta:
        parts.append(render_mapping_table([meta], title=f"Telemetry: {path}"))
    span_rows = _span_rows(stream["summary"])
    if span_rows:
        parts.append(render_mapping_table(
            span_rows, title="Operation spans (DRAM-model ns)"))
    snap_rows = _snapshot_rows(stream["snapshots"])
    if snap_rows:
        parts.append(render_mapping_table(
            snap_rows, title="State snapshots (last / peak over stream)"))
    counters = stream["summary"].get("metrics", {}).get("counters", {})
    event_rows = [
        {"counter": name, "count": value}
        for name, value in counters.items() if not name.startswith("ops.")
    ]
    if event_rows:
        parts.append(render_mapping_table(event_rows, title="Counters"))
    if not parts:
        return f"{path}: empty telemetry stream"
    return "\n\n".join(parts)
