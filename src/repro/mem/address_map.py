"""Physical address interleaving.

Maps a byte address onto (channel, bank, row, column) coordinates the
way USIMM's default address mapping does: cache lines are interleaved
across channels (so a path read spreads over all channels), columns of
one row are contiguous within a channel (so sequential lines in the
same bucket hit the open row), then banks, then rows.

Address bit layout, from least significant:

    [ line offset | channel | column | bank | row ]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class AddressMapping:
    """Channel/bank/row/column decomposition of byte addresses."""

    n_channels: int = 4
    n_banks: int = 16          # banks per channel (ranks folded in)
    row_bytes: int = 8192      # row-buffer size per bank
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.n_channels < 1 or self.n_banks < 1:
            raise ValueError("need at least one channel and one bank")
        if self.row_bytes % self.line_bytes:
            raise ValueError("row_bytes must be a multiple of line_bytes")

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    def decompose(self, byte_addr: int) -> Tuple[int, int, int, int]:
        """Return (channel, bank, row, column) of ``byte_addr``."""
        if byte_addr < 0:
            raise ValueError(f"negative address {byte_addr:#x}")
        line = byte_addr // self.line_bytes
        channel = line % self.n_channels
        rest = line // self.n_channels
        column = rest % self.lines_per_row
        rest //= self.lines_per_row
        bank = rest % self.n_banks
        row = rest // self.n_banks
        return channel, bank, row, column

    def channel_of(self, byte_addr: int) -> int:
        return (byte_addr // self.line_bytes) % self.n_channels
