"""USIMM-style DRAM timing substrate.

The paper evaluates with USIMM, a trace-driven cycle-accurate DRAM
simulator. This package provides the event-based equivalent (see
DESIGN.md section 4): per-bank open-row state with hit/miss timing from
DDR3-1600 parameters, per-channel data buses, and a first-ready
approximation of FR-FCFS. ORAM performance differences in the paper
come from access *counts* and row-buffer *locality* -- both are modelled
exactly; absolute cycle counts are not.

- :mod:`repro.mem.timing` -- DDR timing parameter sets.
- :mod:`repro.mem.address_map` -- physical address interleaving.
- :mod:`repro.mem.dram` -- the channel/bank timing model.
- :mod:`repro.mem.layout` -- ORAM tree -> physical address layout.
"""

from repro.mem.timing import DramTiming, DDR3_1600
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel, DramStats
from repro.mem.layout import TreeLayout

__all__ = [
    "DramTiming",
    "DDR3_1600",
    "AddressMapping",
    "DramModel",
    "DramStats",
    "TreeLayout",
]
