"""Physical layout of the ORAM tree in memory.

The data tree is laid out bucket-after-bucket in level order; each
bucket's slots are contiguous, so reshuffles enjoy row-buffer locality
while remote allocation's redirected accesses land in *other* buckets'
rows -- the row-hit degradation the paper cites as DR's main overhead
("it may incur a slight increase in memory block accesses due to lower
row buffer hit in DRAM DIMMs").

Bucket metadata lives in a separate region after the data tree, one or
more 64B lines per bucket.

Because AB-ORAM geometries are non-uniform, per-bucket byte offsets are
a prefix sum over per-level bucket sizes (vectorized; trees with
millions of buckets take milliseconds).
"""

from __future__ import annotations

import numpy as np

from repro.oram.config import OramConfig


class TreeLayout:
    """Byte addresses for every (bucket, slot) and every metadata record."""

    def __init__(
        self,
        cfg: OramConfig,
        metadata_blocks: int = 1,
        base_addr: int = 0,
    ) -> None:
        self.cfg = cfg
        self.metadata_blocks = metadata_blocks
        self.base_addr = base_addr
        bucket_bytes = np.empty(cfg.n_buckets, dtype=np.int64)
        for lv in range(cfg.levels):
            lo = (1 << lv) - 1
            hi = (1 << (lv + 1)) - 1
            bucket_bytes[lo:hi] = cfg.geometry[lv].z_total * cfg.block_bytes
        self._offsets = np.zeros(cfg.n_buckets, dtype=np.int64)
        np.cumsum(bucket_bytes[:-1], out=self._offsets[1:])
        self.data_bytes = int(bucket_bytes.sum())
        self.meta_base = base_addr + self.data_bytes
        self.meta_stride = metadata_blocks * cfg.block_bytes
        self.meta_bytes = cfg.n_buckets * self.meta_stride

    @property
    def total_bytes(self) -> int:
        """Data tree plus metadata tree."""
        return self.data_bytes + self.meta_bytes

    def data_addr(self, bucket: int, slot: int) -> int:
        """Byte address of one slot."""
        if not 0 <= bucket < self.cfg.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        return self.base_addr + int(self._offsets[bucket]) + slot * self.cfg.block_bytes

    def meta_addr(self, bucket: int, block: int = 0) -> int:
        """Byte address of one 64B line of a bucket's metadata record."""
        if not 0 <= bucket < self.cfg.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        return self.meta_base + bucket * self.meta_stride + block * self.cfg.block_bytes
