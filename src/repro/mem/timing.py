"""DDR timing parameter sets.

All values are in nanoseconds so the model is frequency-agnostic; the
provided presets are derived from the JEDEC DDR3-1600 speed bin the
paper's configuration implies (800 MHz DRAM clock, Table III).

A memory access decomposes into:

- *row activation* (``t_rcd``) after a *precharge* (``t_rp``) when the
  bank's open row differs from the target (row-buffer miss);
- column access (``t_cas`` for reads, ``t_cwd`` for writes);
- the data burst on the channel bus (``burst_ns``: BL8 on a 64-bit bus
  at 1600 MT/s = 4 bus cycles = 5 ns per 64B line).

``t_wr`` (write recovery) keeps a bank busy after a write burst before
the next precharge may start.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTiming:
    """Nanosecond-granularity DRAM timing set.

    Beyond the per-bank latencies, two channel-level constraints shape
    ORAM traffic decisively:

    - ``t_rrd``: minimum spacing between row activations on one channel
      (the tRRD/tFAW four-activate-window limit, folded into a single
      effective rate). Path-wide operations activate one row per
      bucket, so their cost scales with the number of buckets touched
      -- largely independent of bucket *size*;
    - ``t_wtr`` / ``t_rtw``: bus turnaround penalties when a channel
      switches between reads and writes (reshuffles pay these twice);
    - ``t_refi`` / ``t_rfc``: periodic refresh -- every ``t_refi`` a
      channel's banks stall for ``t_rfc`` and their row buffers close,
      which caps row-hit streaks for low-intensity workloads.
    """

    t_ck: float      # bus clock period
    t_cas: float     # CL: column access strobe latency (reads)
    t_cwd: float     # CWL: write delivery latency
    t_rcd: float     # RAS-to-CAS (activate) delay
    t_rp: float      # precharge delay
    t_wr: float      # write recovery
    burst_ns: float  # bus occupancy of one 64B transfer
    t_rrd: float     # effective activate-to-activate spacing per channel
    t_wtr: float     # write-to-read turnaround
    t_rtw: float     # read-to-write turnaround
    t_refi: float = 7800.0  # refresh interval (0 disables refresh)
    t_rfc: float = 350.0    # refresh cycle time (banks stall, rows close)

    def __post_init__(self) -> None:
        for name in (
            "t_ck", "t_cas", "t_cwd", "t_rcd", "t_rp", "t_wr", "burst_ns",
            "t_rrd", "t_wtr", "t_rtw", "t_refi", "t_rfc",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.t_ck <= 0 or self.burst_ns <= 0:
            raise ValueError("t_ck and burst_ns must be positive")

    def column_ns(self, write: bool) -> float:
        """Column command to data latency."""
        return self.t_cwd if write else self.t_cas

    def recovery_ns(self, write: bool) -> float:
        """Bank busy time after the burst completes."""
        return self.t_wr if write else 0.0

    def turnaround_ns(self, prev_write: bool, write: bool) -> float:
        """Bus penalty when the channel switches transfer direction."""
        if prev_write == write:
            return 0.0
        return self.t_wtr if prev_write else self.t_rtw


#: DDR3-1600 (11-11-11), 64-bit channel: one 64B line = BL8 = 4 bus clocks.
#: tRRD folds the tFAW window (4 activates / 30ns) into 7.5ns/activate.
DDR3_1600 = DramTiming(
    t_ck=1.25,
    t_cas=13.75,
    t_cwd=10.0,
    t_rcd=13.75,
    t_rp=13.75,
    t_wr=15.0,
    burst_ns=5.0,
    t_rrd=7.5,
    t_wtr=7.5,
    t_rtw=2.5,
)

#: A slower, higher-latency profile (useful for sensitivity tests).
DDR3_1066 = DramTiming(
    t_ck=1.875,
    t_cas=15.0,
    t_cwd=11.25,
    t_rcd=15.0,
    t_rp=15.0,
    t_wr=15.0,
    burst_ns=7.5,
    t_rrd=10.0,
    t_wtr=9.4,
    t_rtw=3.75,
    t_refi=7800.0,
    t_rfc=350.0,
)

#: An idealized profile with no activation/turnaround constraints --
#: isolates pure byte-count effects (used by ablation benchmarks).
IDEAL_BUS = DramTiming(
    t_ck=1.25,
    t_cas=13.75,
    t_cwd=10.0,
    t_rcd=13.75,
    t_rp=13.75,
    t_wr=0.0,
    burst_ns=5.0,
    t_rrd=0.0,
    t_wtr=0.0,
    t_rtw=0.0,
    t_refi=0.0,
    t_rfc=0.0,
)
