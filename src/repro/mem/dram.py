"""Event-based DRAM channel/bank timing model.

One :class:`DramModel` holds per-bank open-row state and availability
times plus a per-channel data-bus availability time. ``access`` computes
when one 64B request completes:

1. the request waits for its bank (earlier requests to the same bank)
   and, on a row-buffer miss, pays precharge + activate;
2. the data burst waits for the channel bus;
3. write recovery keeps the bank busy after a write burst.

This is the first-ready part of FR-FCFS: requests are processed in
arrival order but independent banks and channels proceed concurrently,
which is where Ring ORAM's channel-parallel path reads and the
row-buffer friendliness of bucket reshuffles come from -- the effects
the paper's USIMM runs measure.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mem.address_map import AddressMapping
from repro.mem.timing import DDR3_1600, DramTiming


@dataclass
class DramStats:
    """Aggregate counters of one model instance."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    total_service_ns: float = 0.0
    #: Controller-imposed waiting (recovery retry backoff) charged to
    #: this memory system -- time the bus spent idle by decree, kept
    #: separate from service time so fault campaigns can attribute it.
    stalled_ns: float = 0.0
    #: Outstanding-request queue counters, populated only when the model
    #: runs with a bounded ``window`` (the pipelined controller). Depth
    #: is sampled at every admission: how many earlier requests on the
    #: channel were still in flight when this one arrived.
    queue_depth_peak: int = 0
    queue_depth_sum: int = 0
    queue_samples: int = 0
    #: Requests scheduled on the bus *before* an already-placed later
    #: burst (windowed mode only): overlapping pipeline stages
    #: interleave into bus time earlier stages left idle.
    backfills: int = 0

    @property
    def queue_depth_mean(self) -> float:
        return (self.queue_depth_sum / self.queue_samples
                if self.queue_samples else 0.0)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Timing model for one memory system (all channels)."""

    def __init__(
        self,
        timing: DramTiming = DDR3_1600,
        mapping: AddressMapping = AddressMapping(),
        window: Optional[int] = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.timing = timing
        self.mapping = mapping
        n_banks_total = mapping.n_channels * mapping.n_banks
        # Per-bank/per-channel state lives in plain Python lists: the
        # model is driven one scalar access at a time, and list indexing
        # avoids the numpy-scalar boxing that dominated the profile.
        self._open_row = [-1] * n_banks_total
        self._bank_ready = [0.0] * n_banks_total
        self._bus_free = [0.0] * mapping.n_channels
        self._last_activate = [-1e18] * mapping.n_channels
        self._last_was_write = [False] * mapping.n_channels
        self._refresh_epoch = [0] * mapping.n_channels
        self.stats = DramStats()
        # Plain list, not ndarray: one scalar += per access makes numpy
        # boxing measurable at millions of requests.
        self.channel_busy_ns = [0.0] * mapping.n_channels
        # Per-bank occupancy (burst + write recovery), same plain-list
        # rationale. Banks fold ranks in (see AddressMapping), so this
        # is the rank/bank busy breakdown telemetry exports.
        self.bank_busy_ns = [0.0] * n_banks_total
        # Outstanding-request window: with ``window`` set, at most that
        # many requests per channel may be in flight -- a request that
        # would exceed it waits for the oldest outstanding completion.
        # Only the pipelined controller sets it; ``None`` keeps every
        # timestamp bit-identical to the historical model.
        self._window = window
        self._win_q: Optional[List[List[float]]] = (
            [[] for _ in range(mapping.n_channels)]
            if window is not None else None
        )
        # Bus busy-interval ledger (windowed mode only): per channel, a
        # bounded sorted list of disjoint ``[start, end, is_write]``
        # intervals the data bus is committed to. A request is placed
        # at the earliest free slot at or after its latency-chain ready
        # time -- NOT behind a monotone frontier -- which is what lets
        # overlapping pipeline stages interleave on the bus instead of
        # strictly serializing in issue order. Direction turnaround
        # (tWTR / tRTW) is enforced as required spacing against
        # opposite-direction neighbours; same-direction bursts pack
        # back-to-back exactly like the unwindowed frontier does.
        self._busy: Optional[List[List[List[float]]]] = (
            [[] for _ in range(mapping.n_channels)]
            if window is not None else None
        )
        # Placement never reaches before the floor; it rises as old
        # intervals age out of the bounded ledger.
        self._busy_floor = [0.0] * mapping.n_channels
        self._bus_pad = max(timing.t_wtr, timing.t_rtw)
        self._busy_cap = 64
        # Per-bank busy intervals (windowed mode only), same idea as
        # the bus ledger: a request occupies its bank for the latency
        # chain + burst + write recovery, placed at the earliest free
        # slot rather than behind a monotone frontier, so an early
        # path read is not queued behind a reshuffle write-back that
        # is *scheduled* later even though the bank sits idle between.
        # Row-buffer state (``_open_row``) is still tracked in program
        # order -- hit/miss classification matches the serial model;
        # only the time placement interleaves.
        self._bank_iv: Optional[List[List[List[float]]]] = (
            [[] for _ in range(n_banks_total)]
            if window is not None else None
        )
        self._bank_floor = [0.0] * n_banks_total
        self._bank_cap = 16
        # Address-decomposition and timing constants hoisted out of the
        # hot loop (dataclass attribute fetches add up per request).
        self._line_bytes = mapping.line_bytes
        self._n_channels = mapping.n_channels
        self._lines_per_row = mapping.lines_per_row
        self._n_banks = mapping.n_banks
        self._t_refi = timing.t_refi
        self._t_rp = timing.t_rp
        self._t_rrd = timing.t_rrd
        self._t_rcd = timing.t_rcd
        self._t_cas = timing.t_cas
        self._t_cwd = timing.t_cwd
        self._t_wtr = timing.t_wtr
        self._t_rtw = timing.t_rtw
        self._t_wr = timing.t_wr
        self._burst_ns = timing.burst_ns

    def _apply_refresh(self, channel: int, arrival_ns: float) -> None:
        """Lazily account refreshes due on ``channel`` before ``arrival_ns``.

        Every elapsed tREFI window closes the channel's row buffers;
        the most recent one also stalls its banks for tRFC.
        """
        t = self.timing
        if t.t_refi <= 0:
            return
        epoch = int(arrival_ns // t.t_refi)
        if epoch <= self._refresh_epoch[channel]:
            return
        self._refresh_epoch[channel] = epoch
        lo = channel * self._n_banks
        hi = lo + self._n_banks
        self._open_row[lo:hi] = [-1] * self._n_banks
        stall_end = epoch * t.t_refi + t.t_rfc
        ready = self._bank_ready
        for i in range(lo, hi):
            if ready[i] < stall_end:
                ready[i] = stall_end
        self.stats.refreshes += 1

    def _window_admit(self, channel: int, arrival_ns: float) -> float:
        """Window admission: sample queue depth, delay when it is full.

        Per-channel completions are monotone (the bus frontier only
        moves forward), so the outstanding list stays sorted and the
        in-flight count at ``arrival_ns`` is one bisect away.
        """
        q = self._win_q[channel]
        if not q:
            self.stats.queue_samples += 1
            return arrival_ns
        st = self.stats
        depth = len(q) - bisect_right(q, arrival_ns)
        st.queue_depth_sum += depth
        st.queue_samples += 1
        if depth > st.queue_depth_peak:
            st.queue_depth_peak = depth
        if len(q) >= self._window:
            oldest = q[0]
            if oldest > arrival_ns:
                arrival_ns = oldest
        return arrival_ns

    def _window_track(self, channel: int, completion: float) -> None:
        """Record one completion in the channel's outstanding window."""
        q = self._win_q[channel]
        if q and completion < q[-1]:
            # Backfilled requests complete out of issue order; keep the
            # ledger sorted so admission's bisect stays valid.
            insort(q, completion)
        else:
            q.append(completion)
        if len(q) > self._window:
            del q[0]

    def _bus_place(
        self, channel: int, ready: float, span: float, write: bool
    ) -> float:
        """Reserve ``span`` ns of bus time at the earliest free slot.

        Returns the burst start: the earliest time >= ``ready`` such
        that ``[start, start + span)`` overlaps no committed interval,
        keeps direction-turnaround spacing from opposite-direction
        neighbours (tWTR after a write, tRTW after a read -- the same
        charges the unwindowed frontier applies on a flip) and lies
        past the channel floor. The interval is inserted (coalescing
        with touching same-direction neighbours) so later placements
        see it; when the ledger exceeds its bound the oldest interval
        retires into the floor.
        """
        busy = self._busy[channel]
        t_wtr = self._t_wtr
        t_rtw = self._t_rtw
        t = self._busy_floor[channel]
        if ready > t:
            t = ready
        idx = len(busy)
        for i, iv in enumerate(busy):
            w = iv[2]
            if w == write:
                lead = 0.0
                trail = 0.0
            elif w:
                # Neighbour writes: we read. us->iv needs tRTW,
                # iv->us needs tWTR.
                lead = t_rtw
                trail = t_wtr
            else:
                lead = t_wtr
                trail = t_rtw
            if t + span + lead <= iv[0]:
                idx = i
                break
            after = iv[1] + trail
            if after > t:
                t = after
        if idx < len(busy):
            # Placed ahead of an already-committed later burst: the
            # out-of-order interleave the pipelined controller exists
            # to exploit.
            self.stats.backfills += 1
        end = t + span
        prev_touch = (
            idx > 0 and busy[idx - 1][2] == write and busy[idx - 1][1] >= t
        )
        next_touch = (
            idx < len(busy) and busy[idx][2] == write and busy[idx][0] <= end
        )
        if prev_touch and next_touch:
            busy[idx - 1][1] = busy[idx][1]
            del busy[idx]
        elif prev_touch:
            busy[idx - 1][1] = end
        elif next_touch:
            busy[idx][0] = t
        else:
            busy.insert(idx, [t, end, write])
        if len(busy) > self._busy_cap:
            oldest = busy.pop(0)
            guard = oldest[1] + self._bus_pad
            if guard > self._busy_floor[channel]:
                self._busy_floor[channel] = guard
        return t

    def _bank_place(self, bank_idx: int, earliest: float, span: float) -> float:
        """Reserve ``span`` ns of bank time at the earliest free slot.

        Same bounded-ledger scheme as :meth:`_bus_place` but per bank
        and without direction spacing -- a bank hold already includes
        its own recovery time.
        """
        busy = self._bank_iv[bank_idx]
        t = self._bank_floor[bank_idx]
        if earliest > t:
            t = earliest
        idx = len(busy)
        for i, iv in enumerate(busy):
            if t + span <= iv[0]:
                idx = i
                break
            if iv[1] > t:
                t = iv[1]
        end = t + span
        prev_touch = idx > 0 and busy[idx - 1][1] >= t
        next_touch = idx < len(busy) and busy[idx][0] <= end
        if prev_touch and next_touch:
            busy[idx - 1][1] = busy[idx][1]
            del busy[idx]
        elif prev_touch:
            busy[idx - 1][1] = end
        elif next_touch:
            busy[idx][0] = t
        else:
            busy.insert(idx, [t, end])
        if len(busy) > self._bank_cap:
            oldest = busy.pop(0)
            if oldest[1] > self._bank_floor[bank_idx]:
                self._bank_floor[bank_idx] = oldest[1]
        return t

    def access(self, byte_addr: int, write: bool, arrival_ns: float) -> float:
        """Service one 64B request; returns its completion time (ns)."""
        # Inline address decomposition (see AddressMapping.decompose);
        # this runs once per simulated memory request.
        line = byte_addr // self._line_bytes
        channel = line % self._n_channels
        rest = (line // self._n_channels) // self._lines_per_row
        bank = rest % self._n_banks
        row = rest // self._n_banks
        t_refi = self._t_refi
        if t_refi > 0 and arrival_ns >= (self._refresh_epoch[channel] + 1) * t_refi:
            self._apply_refresh(channel, arrival_ns)
        # Refresh is accounted at the nominal arrival time; window
        # admission (pipelined mode only) may then push the request
        # later without re-triggering refresh bookkeeping.
        if self._win_q is not None:
            arrival_ns = self._window_admit(channel, arrival_ns)
        bank_idx = channel * self._n_banks + bank
        row_hit = self._open_row[bank_idx] == row
        t_hit = self._t_cwd if write else self._t_cas
        t_wr = self._t_wr if write else 0.0
        if self._busy is not None:
            # Out-of-order placement: the request holds its bank for
            # the latency chain + burst + recovery at the earliest free
            # slot, then its burst takes the earliest bus slot at or
            # after the chain -- neither queues behind a monotone
            # frontier, so overlapped pipeline stages interleave.
            burst = self._burst_ns
            if row_hit:
                s = self._bank_place(
                    bank_idx, arrival_ns, t_hit + burst + t_wr
                )
                ready = s + t_hit
            else:
                s = self._bank_place(
                    bank_idx, arrival_ns,
                    self._t_rp + self._t_rcd + t_hit + burst + t_wr,
                )
                precharged = s + self._t_rp
                rated = self._last_activate[channel] + self._t_rrd
                activate = precharged if precharged > rated else rated
                self._last_activate[channel] = activate
                ready = activate + self._t_rcd + t_hit
            burst_start = self._bus_place(channel, ready, burst, write)
            completion = burst_start + self._burst_ns
            recovered = completion + t_wr
            if recovered > self._bank_ready[bank_idx]:
                self._bank_ready[bank_idx] = recovered
            self._open_row[bank_idx] = row
            self.channel_busy_ns[channel] += self._burst_ns
            self.bank_busy_ns[bank_idx] += self._burst_ns + t_wr
            if completion > self._bus_free[channel]:
                self._bus_free[channel] = completion
            self._window_track(channel, completion)
            st = self.stats
            if write:
                st.writes += 1
            else:
                st.reads += 1
            if row_hit:
                st.row_hits += 1
            else:
                st.row_misses += 1
            st.total_service_ns += completion - arrival_ns
            return completion
        bank_ready = self._bank_ready[bank_idx]
        if row_hit:
            col_ready = arrival_ns if arrival_ns > bank_ready else bank_ready
            ready = col_ready + t_hit
        else:
            # Precharge, then an activate constrained by the channel's
            # activation rate (tRRD / tFAW window).
            precharged = (
                arrival_ns if arrival_ns > bank_ready else bank_ready
            ) + self._t_rp
            rated = self._last_activate[channel] + self._t_rrd
            activate = precharged if precharged > rated else rated
            self._last_activate[channel] = activate
            ready = activate + self._t_rcd + t_hit
        bus_free = self._bus_free[channel]
        prev_write = self._last_was_write[channel]
        if prev_write != write:
            bus_free += self._t_wtr if prev_write else self._t_rtw
        burst_start = ready if ready > bus_free else bus_free
        completion = burst_start + self._burst_ns
        self._bus_free[channel] = completion
        self._last_was_write[channel] = write
        self._bank_ready[bank_idx] = completion + t_wr
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] += completion - burst_start
        self.bank_busy_ns[bank_idx] += completion - burst_start + t_wr
        if self._win_q is not None:
            self._window_track(channel, completion)
        st = self.stats
        if write:
            st.writes += 1
        else:
            st.reads += 1
        if row_hit:
            st.row_hits += 1
        else:
            st.row_misses += 1
        st.total_service_ns += completion - arrival_ns
        return completion

    def access_batch(
        self, byte_addrs: List[int], write: bool, arrival_ns: float
    ) -> float:
        """Service several same-direction requests arriving together.

        Bit-identical to one :meth:`access` call per address in order;
        returns the latest completion time. The sink's batched entry
        points use this to shed the per-request method dispatch and
        attribute traffic -- all mutable channel/bank state is bound to
        locals once per batch (the lists are mutated in place, so
        :meth:`_apply_refresh` stays coherent).
        """
        line_bytes = self._line_bytes
        n_channels = self._n_channels
        lines_per_row = self._lines_per_row
        n_banks = self._n_banks
        t_refi = self._t_refi
        t_rp = self._t_rp
        t_rrd = self._t_rrd
        t_col = self._t_rcd + (self._t_cwd if write else self._t_cas)
        t_hit = self._t_cwd if write else self._t_cas
        t_turn = self._t_wtr if not write else self._t_rtw
        t_wr = self._t_wr if write else 0.0
        burst_ns = self._burst_ns
        open_row = self._open_row
        bank_ready = self._bank_ready
        bus_free_l = self._bus_free
        last_activate = self._last_activate
        last_was_write = self._last_was_write
        refresh_epoch = self._refresh_epoch
        busy = self.channel_busy_ns
        bank_busy = self.bank_busy_ns
        win_q = self._win_q
        windowed = self._busy is not None
        hits = 0
        service = 0.0
        latest = 0.0
        for byte_addr in byte_addrs:
            line = byte_addr // line_bytes
            channel = line % n_channels
            rest = (line // n_channels) // lines_per_row
            bank = rest % n_banks
            row = rest // n_banks
            if t_refi > 0 and arrival_ns >= (refresh_epoch[channel] + 1) * t_refi:
                self._apply_refresh(channel, arrival_ns)
            # ``arr`` is the (possibly window-delayed) effective arrival;
            # with the window disabled it is exactly ``arrival_ns`` so
            # every float op below matches the historical model.
            arr = (
                self._window_admit(channel, arrival_ns)
                if win_q is not None else arrival_ns
            )
            bank_idx = channel * n_banks + bank
            row_hit = open_row[bank_idx] == row
            if row_hit:
                hits += 1
            if windowed:
                if row_hit:
                    s = self._bank_place(
                        bank_idx, arr, t_hit + burst_ns + t_wr
                    )
                    ready = s + t_hit
                else:
                    s = self._bank_place(
                        bank_idx, arr, t_rp + t_col + burst_ns + t_wr
                    )
                    precharged = s + t_rp
                    rated = last_activate[channel] + t_rrd
                    activate = precharged if precharged > rated else rated
                    last_activate[channel] = activate
                    ready = activate + t_col
                burst_start = self._bus_place(channel, ready, burst_ns, write)
                completion = burst_start + burst_ns
                recovered = completion + t_wr
                if recovered > bank_ready[bank_idx]:
                    bank_ready[bank_idx] = recovered
                open_row[bank_idx] = row
                busy[channel] += burst_ns
                bank_busy[bank_idx] += burst_ns + t_wr
                if completion > bus_free_l[channel]:
                    bus_free_l[channel] = completion
                self._window_track(channel, completion)
                service += completion - arr
                if completion > latest:
                    latest = completion
                continue
            brdy = bank_ready[bank_idx]
            if row_hit:
                ready = (arr if arr > brdy else brdy) + t_hit
            else:
                precharged = (arr if arr > brdy else brdy) + t_rp
                rated = last_activate[channel] + t_rrd
                activate = precharged if precharged > rated else rated
                last_activate[channel] = activate
                ready = activate + t_col
            bus_free = bus_free_l[channel]
            if last_was_write[channel] != write:
                # Direction turnaround: tWTR after a write on the
                # channel, tRTW after a read (mirrors ``access``).
                bus_free += t_turn
            burst_start = ready if ready > bus_free else bus_free
            completion = burst_start + burst_ns
            bus_free_l[channel] = completion
            last_was_write[channel] = write
            bank_ready[bank_idx] = completion + t_wr
            open_row[bank_idx] = row
            busy[channel] += completion - burst_start
            bank_busy[bank_idx] += completion - burst_start + t_wr
            if win_q is not None:
                self._window_track(channel, completion)
            service += completion - arr
            if completion > latest:
                latest = completion
        n = len(byte_addrs)
        st = self.stats
        if write:
            st.writes += n
        else:
            st.reads += n
        st.row_hits += hits
        st.row_misses += n - hits
        st.total_service_ns += service
        return latest

    def access_repeat(
        self, byte_addr: int, count: int, write: bool, arrival_ns: float
    ) -> float:
        """Service the same address ``count`` times arriving together.

        Bit-identical to ``access_batch([byte_addr] * count, ...)``, but
        after the first request the chain collapses: the row is open,
        the bank/bus dependencies are the previous completion, and the
        refresh check cannot fire again (``_apply_refresh`` advances the
        channel's epoch past ``arrival_ns``). Ring ORAM's Z'-deep bucket
        read bursts (reshuffle read phase) all take this shape, which is
        why the generic per-address loop is worth bypassing. Every
        floating-point operation matches the generic loop's order, so
        completion times and stat accumulations agree to the last bit.
        """
        if count <= 0:
            return 0.0
        line = byte_addr // self._line_bytes
        channel = line % self._n_channels
        rest = (line // self._n_channels) // self._lines_per_row
        bank = rest % self._n_banks
        row = rest // self._n_banks
        t_refi = self._t_refi
        if t_refi > 0 and arrival_ns >= (self._refresh_epoch[channel] + 1) * t_refi:
            self._apply_refresh(channel, arrival_ns)
        win_q = self._win_q
        arr = (
            self._window_admit(channel, arrival_ns)
            if win_q is not None else arrival_ns
        )
        t_hit = self._t_cwd if write else self._t_cas
        bank_idx = channel * self._n_banks + bank
        row_hit = self._open_row[bank_idx] == row
        burst_ns = self._burst_ns
        t_wr = self._t_wr if write else 0.0
        if self._busy is not None:
            # The whole chain occupies its bank back-to-back; reserve
            # the full bank and bus spans as one interval each so
            # overlapped ops are never scheduled into the middle.
            bus_span = burst_ns + (count - 1) * (t_wr + t_hit + burst_ns)
            lat = t_hit if row_hit else self._t_rp + self._t_rcd + t_hit
            s = self._bank_place(bank_idx, arr, lat + bus_span + t_wr)
            if row_hit:
                ready = s + t_hit
            else:
                precharged = s + self._t_rp
                rated = self._last_activate[channel] + self._t_rrd
                activate = precharged if precharged > rated else rated
                self._last_activate[channel] = activate
                ready = activate + (self._t_rcd + t_hit)
            burst_start = self._bus_place(channel, ready, bus_span, write)
        else:
            brdy = self._bank_ready[bank_idx]
            if row_hit:
                ready = (arr if arr > brdy else brdy) + t_hit
            else:
                precharged = (arr if arr > brdy else brdy) + self._t_rp
                rated = self._last_activate[channel] + self._t_rrd
                activate = precharged if precharged > rated else rated
                self._last_activate[channel] = activate
                ready = activate + (self._t_rcd + t_hit)
            bus_free = self._bus_free[channel]
            if self._last_was_write[channel] != write:
                bus_free += self._t_wtr if not write else self._t_rtw
            burst_start = ready if ready > bus_free else bus_free
        completion = burst_start + burst_ns
        busy_c = self.channel_busy_ns[channel] + (completion - burst_start)
        busy_b = self.bank_busy_ns[bank_idx] + (
            completion - burst_start + t_wr
        )
        service = completion - arr
        if win_q is not None:
            self._window_track(channel, completion)
        for _ in range(count - 1):
            # Row hit, no turnaround, and the bank/bus frontier is the
            # previous completion (``completion >= arr`` always, so the
            # generic loop's max() picks the bank side too). With the
            # window on, the per-step admission replays the generic
            # loop's depth sampling; its delay can never exceed the
            # bank-ready frontier (the oldest outstanding completion is
            # <= the previous chain completion), so the timing chain is
            # unchanged and only ``service`` sees the adjusted arrival.
            arr = (
                self._window_admit(channel, arrival_ns)
                if win_q is not None else arrival_ns
            )
            ready = (completion + t_wr) + t_hit
            burst_start = ready if ready > completion else completion
            completion = burst_start + burst_ns
            busy_c += completion - burst_start
            busy_b += completion - burst_start + t_wr
            service += completion - arr
            if win_q is not None:
                self._window_track(channel, completion)
        if self._busy is not None:
            if completion > self._bus_free[channel]:
                self._bus_free[channel] = completion
            if completion + t_wr > self._bank_ready[bank_idx]:
                self._bank_ready[bank_idx] = completion + t_wr
        else:
            self._bus_free[channel] = completion
            self._last_was_write[channel] = write
            self._bank_ready[bank_idx] = completion + t_wr
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] = busy_c
        self.bank_busy_ns[bank_idx] = busy_b
        st = self.stats
        if write:
            st.writes += count
        else:
            st.reads += count
        hits = count if row_hit else count - 1
        st.row_hits += hits
        st.row_misses += count - hits
        st.total_service_ns += service
        return completion

    def access_burst(
        self, byte_addrs: List[int], writes: List[bool], arrival_ns: float
    ) -> float:
        """Issue a batch arriving together; returns the last completion."""
        if len(byte_addrs) != len(writes):
            raise ValueError("byte_addrs and writes length mismatch")
        done = arrival_ns
        for addr, w in zip(byte_addrs, writes):
            done = max(done, self.access(addr, w, arrival_ns))
        return done

    @property
    def frontier_ns(self) -> float:
        """Earliest time a fresh request could complete everywhere."""
        return max(self._bus_free, default=0.0)

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Average consumed bandwidth over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.stats.bytes_transferred / elapsed_ns

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.stats.reads),
            "writes": float(self.stats.writes),
            "row_hit_rate": self.stats.row_hit_rate,
            "bytes": float(self.stats.bytes_transferred),
            "channel_busy_ns": [float(x) for x in self.channel_busy_ns],
        }
