"""Event-based DRAM channel/bank timing model.

One :class:`DramModel` holds per-bank open-row state and availability
times plus a per-channel data-bus availability time. ``access`` computes
when one 64B request completes:

1. the request waits for its bank (earlier requests to the same bank)
   and, on a row-buffer miss, pays precharge + activate;
2. the data burst waits for the channel bus;
3. write recovery keeps the bank busy after a write burst.

This is the first-ready part of FR-FCFS: requests are processed in
arrival order but independent banks and channels proceed concurrently,
which is where Ring ORAM's channel-parallel path reads and the
row-buffer friendliness of bucket reshuffles come from -- the effects
the paper's USIMM runs measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.mem.address_map import AddressMapping
from repro.mem.timing import DDR3_1600, DramTiming


@dataclass
class DramStats:
    """Aggregate counters of one model instance."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    total_service_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Timing model for one memory system (all channels)."""

    def __init__(
        self,
        timing: DramTiming = DDR3_1600,
        mapping: AddressMapping = AddressMapping(),
    ) -> None:
        self.timing = timing
        self.mapping = mapping
        n_banks_total = mapping.n_channels * mapping.n_banks
        self._open_row = np.full(n_banks_total, -1, dtype=np.int64)
        self._bank_ready = np.zeros(n_banks_total, dtype=np.float64)
        self._bus_free = np.zeros(mapping.n_channels, dtype=np.float64)
        self._last_activate = np.full(mapping.n_channels, -1e18)
        self._last_was_write = np.zeros(mapping.n_channels, dtype=bool)
        self._refresh_epoch = np.zeros(mapping.n_channels, dtype=np.int64)
        self.stats = DramStats()
        self.channel_busy_ns = np.zeros(mapping.n_channels, dtype=np.float64)

    def _apply_refresh(self, channel: int, arrival_ns: float) -> None:
        """Lazily account refreshes due on ``channel`` before ``arrival_ns``.

        Every elapsed tREFI window closes the channel's row buffers;
        the most recent one also stalls its banks for tRFC.
        """
        t = self.timing
        if t.t_refi <= 0:
            return
        epoch = int(arrival_ns // t.t_refi)
        if epoch <= self._refresh_epoch[channel]:
            return
        self._refresh_epoch[channel] = epoch
        lo = channel * self.mapping.n_banks
        hi = lo + self.mapping.n_banks
        self._open_row[lo:hi] = -1
        stall_end = epoch * t.t_refi + t.t_rfc
        np.maximum(self._bank_ready[lo:hi], stall_end,
                   out=self._bank_ready[lo:hi])
        self.stats.refreshes += 1

    def access(self, byte_addr: int, write: bool, arrival_ns: float) -> float:
        """Service one 64B request; returns its completion time (ns)."""
        t = self.timing
        channel, bank, row, _col = self.mapping.decompose(byte_addr)
        self._apply_refresh(channel, arrival_ns)
        bank_idx = channel * self.mapping.n_banks + bank
        row_hit = self._open_row[bank_idx] == row
        if row_hit:
            col_ready = max(arrival_ns, float(self._bank_ready[bank_idx]))
        else:
            # Precharge, then an activate constrained by the channel's
            # activation rate (tRRD / tFAW window).
            precharged = max(arrival_ns, float(self._bank_ready[bank_idx])) + t.t_rp
            activate = max(precharged, float(self._last_activate[channel]) + t.t_rrd)
            self._last_activate[channel] = activate
            col_ready = activate + t.t_rcd
        ready = col_ready + t.column_ns(write)
        bus_free = float(self._bus_free[channel])
        bus_free += t.turnaround_ns(bool(self._last_was_write[channel]), write)
        burst_start = max(ready, bus_free)
        completion = burst_start + t.burst_ns
        self._bus_free[channel] = completion
        self._last_was_write[channel] = write
        self._bank_ready[bank_idx] = completion + t.recovery_ns(write)
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] += completion - burst_start
        st = self.stats
        if write:
            st.writes += 1
        else:
            st.reads += 1
        if row_hit:
            st.row_hits += 1
        else:
            st.row_misses += 1
        st.total_service_ns += completion - arrival_ns
        return completion

    def access_burst(
        self, byte_addrs: List[int], writes: List[bool], arrival_ns: float
    ) -> float:
        """Issue a batch arriving together; returns the last completion."""
        if len(byte_addrs) != len(writes):
            raise ValueError("byte_addrs and writes length mismatch")
        done = arrival_ns
        for addr, w in zip(byte_addrs, writes):
            done = max(done, self.access(addr, w, arrival_ns))
        return done

    @property
    def frontier_ns(self) -> float:
        """Earliest time a fresh request could complete everywhere."""
        return float(self._bus_free.max(initial=0.0))

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Average consumed bandwidth over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.stats.bytes_transferred / elapsed_ns

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.stats.reads),
            "writes": float(self.stats.writes),
            "row_hit_rate": self.stats.row_hit_rate,
            "bytes": float(self.stats.bytes_transferred),
            "channel_busy_ns": [float(x) for x in self.channel_busy_ns],
        }
