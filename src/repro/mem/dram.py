"""Event-based DRAM channel/bank timing model.

One :class:`DramModel` holds per-bank open-row state and availability
times plus a per-channel data-bus availability time. ``access`` computes
when one 64B request completes:

1. the request waits for its bank (earlier requests to the same bank)
   and, on a row-buffer miss, pays precharge + activate;
2. the data burst waits for the channel bus;
3. write recovery keeps the bank busy after a write burst.

This is the first-ready part of FR-FCFS: requests are processed in
arrival order but independent banks and channels proceed concurrently,
which is where Ring ORAM's channel-parallel path reads and the
row-buffer friendliness of bucket reshuffles come from -- the effects
the paper's USIMM runs measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.address_map import AddressMapping
from repro.mem.timing import DDR3_1600, DramTiming


@dataclass
class DramStats:
    """Aggregate counters of one model instance."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    total_service_ns: float = 0.0
    #: Controller-imposed waiting (recovery retry backoff) charged to
    #: this memory system -- time the bus spent idle by decree, kept
    #: separate from service time so fault campaigns can attribute it.
    stalled_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Timing model for one memory system (all channels)."""

    def __init__(
        self,
        timing: DramTiming = DDR3_1600,
        mapping: AddressMapping = AddressMapping(),
    ) -> None:
        self.timing = timing
        self.mapping = mapping
        n_banks_total = mapping.n_channels * mapping.n_banks
        # Per-bank/per-channel state lives in plain Python lists: the
        # model is driven one scalar access at a time, and list indexing
        # avoids the numpy-scalar boxing that dominated the profile.
        self._open_row = [-1] * n_banks_total
        self._bank_ready = [0.0] * n_banks_total
        self._bus_free = [0.0] * mapping.n_channels
        self._last_activate = [-1e18] * mapping.n_channels
        self._last_was_write = [False] * mapping.n_channels
        self._refresh_epoch = [0] * mapping.n_channels
        self.stats = DramStats()
        # Plain list, not ndarray: one scalar += per access makes numpy
        # boxing measurable at millions of requests.
        self.channel_busy_ns = [0.0] * mapping.n_channels
        # Address-decomposition and timing constants hoisted out of the
        # hot loop (dataclass attribute fetches add up per request).
        self._line_bytes = mapping.line_bytes
        self._n_channels = mapping.n_channels
        self._lines_per_row = mapping.lines_per_row
        self._n_banks = mapping.n_banks
        self._t_refi = timing.t_refi
        self._t_rp = timing.t_rp
        self._t_rrd = timing.t_rrd
        self._t_rcd = timing.t_rcd
        self._t_cas = timing.t_cas
        self._t_cwd = timing.t_cwd
        self._t_wtr = timing.t_wtr
        self._t_rtw = timing.t_rtw
        self._t_wr = timing.t_wr
        self._burst_ns = timing.burst_ns

    def _apply_refresh(self, channel: int, arrival_ns: float) -> None:
        """Lazily account refreshes due on ``channel`` before ``arrival_ns``.

        Every elapsed tREFI window closes the channel's row buffers;
        the most recent one also stalls its banks for tRFC.
        """
        t = self.timing
        if t.t_refi <= 0:
            return
        epoch = int(arrival_ns // t.t_refi)
        if epoch <= self._refresh_epoch[channel]:
            return
        self._refresh_epoch[channel] = epoch
        lo = channel * self._n_banks
        hi = lo + self._n_banks
        self._open_row[lo:hi] = [-1] * self._n_banks
        stall_end = epoch * t.t_refi + t.t_rfc
        ready = self._bank_ready
        for i in range(lo, hi):
            if ready[i] < stall_end:
                ready[i] = stall_end
        self.stats.refreshes += 1

    def access(self, byte_addr: int, write: bool, arrival_ns: float) -> float:
        """Service one 64B request; returns its completion time (ns)."""
        # Inline address decomposition (see AddressMapping.decompose);
        # this runs once per simulated memory request.
        line = byte_addr // self._line_bytes
        channel = line % self._n_channels
        rest = (line // self._n_channels) // self._lines_per_row
        bank = rest % self._n_banks
        row = rest // self._n_banks
        t_refi = self._t_refi
        if t_refi > 0 and arrival_ns >= (self._refresh_epoch[channel] + 1) * t_refi:
            self._apply_refresh(channel, arrival_ns)
        bank_idx = channel * self._n_banks + bank
        row_hit = self._open_row[bank_idx] == row
        bank_ready = self._bank_ready[bank_idx]
        if row_hit:
            col_ready = arrival_ns if arrival_ns > bank_ready else bank_ready
            ready = col_ready + (self._t_cwd if write else self._t_cas)
        else:
            # Precharge, then an activate constrained by the channel's
            # activation rate (tRRD / tFAW window).
            precharged = (
                arrival_ns if arrival_ns > bank_ready else bank_ready
            ) + self._t_rp
            rated = self._last_activate[channel] + self._t_rrd
            activate = precharged if precharged > rated else rated
            self._last_activate[channel] = activate
            ready = activate + self._t_rcd + (self._t_cwd if write else self._t_cas)
        bus_free = self._bus_free[channel]
        prev_write = self._last_was_write[channel]
        if prev_write != write:
            bus_free += self._t_wtr if prev_write else self._t_rtw
        burst_start = ready if ready > bus_free else bus_free
        completion = burst_start + self._burst_ns
        self._bus_free[channel] = completion
        self._last_was_write[channel] = write
        self._bank_ready[bank_idx] = completion + (self._t_wr if write else 0.0)
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] += completion - burst_start
        st = self.stats
        if write:
            st.writes += 1
        else:
            st.reads += 1
        if row_hit:
            st.row_hits += 1
        else:
            st.row_misses += 1
        st.total_service_ns += completion - arrival_ns
        return completion

    def access_burst(
        self, byte_addrs: List[int], writes: List[bool], arrival_ns: float
    ) -> float:
        """Issue a batch arriving together; returns the last completion."""
        if len(byte_addrs) != len(writes):
            raise ValueError("byte_addrs and writes length mismatch")
        done = arrival_ns
        for addr, w in zip(byte_addrs, writes):
            done = max(done, self.access(addr, w, arrival_ns))
        return done

    @property
    def frontier_ns(self) -> float:
        """Earliest time a fresh request could complete everywhere."""
        return max(self._bus_free, default=0.0)

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Average consumed bandwidth over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.stats.bytes_transferred / elapsed_ns

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.stats.reads),
            "writes": float(self.stats.writes),
            "row_hit_rate": self.stats.row_hit_rate,
            "bytes": float(self.stats.bytes_transferred),
            "channel_busy_ns": [float(x) for x in self.channel_busy_ns],
        }
