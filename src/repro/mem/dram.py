"""Event-based DRAM channel/bank timing model.

One :class:`DramModel` holds per-bank open-row state and availability
times plus a per-channel data-bus availability time. ``access`` computes
when one 64B request completes:

1. the request waits for its bank (earlier requests to the same bank)
   and, on a row-buffer miss, pays precharge + activate;
2. the data burst waits for the channel bus;
3. write recovery keeps the bank busy after a write burst.

This is the first-ready part of FR-FCFS: requests are processed in
arrival order but independent banks and channels proceed concurrently,
which is where Ring ORAM's channel-parallel path reads and the
row-buffer friendliness of bucket reshuffles come from -- the effects
the paper's USIMM runs measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.address_map import AddressMapping
from repro.mem.timing import DDR3_1600, DramTiming


@dataclass
class DramStats:
    """Aggregate counters of one model instance."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    total_service_ns: float = 0.0
    #: Controller-imposed waiting (recovery retry backoff) charged to
    #: this memory system -- time the bus spent idle by decree, kept
    #: separate from service time so fault campaigns can attribute it.
    stalled_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Timing model for one memory system (all channels)."""

    def __init__(
        self,
        timing: DramTiming = DDR3_1600,
        mapping: AddressMapping = AddressMapping(),
    ) -> None:
        self.timing = timing
        self.mapping = mapping
        n_banks_total = mapping.n_channels * mapping.n_banks
        # Per-bank/per-channel state lives in plain Python lists: the
        # model is driven one scalar access at a time, and list indexing
        # avoids the numpy-scalar boxing that dominated the profile.
        self._open_row = [-1] * n_banks_total
        self._bank_ready = [0.0] * n_banks_total
        self._bus_free = [0.0] * mapping.n_channels
        self._last_activate = [-1e18] * mapping.n_channels
        self._last_was_write = [False] * mapping.n_channels
        self._refresh_epoch = [0] * mapping.n_channels
        self.stats = DramStats()
        # Plain list, not ndarray: one scalar += per access makes numpy
        # boxing measurable at millions of requests.
        self.channel_busy_ns = [0.0] * mapping.n_channels
        # Address-decomposition and timing constants hoisted out of the
        # hot loop (dataclass attribute fetches add up per request).
        self._line_bytes = mapping.line_bytes
        self._n_channels = mapping.n_channels
        self._lines_per_row = mapping.lines_per_row
        self._n_banks = mapping.n_banks
        self._t_refi = timing.t_refi
        self._t_rp = timing.t_rp
        self._t_rrd = timing.t_rrd
        self._t_rcd = timing.t_rcd
        self._t_cas = timing.t_cas
        self._t_cwd = timing.t_cwd
        self._t_wtr = timing.t_wtr
        self._t_rtw = timing.t_rtw
        self._t_wr = timing.t_wr
        self._burst_ns = timing.burst_ns

    def _apply_refresh(self, channel: int, arrival_ns: float) -> None:
        """Lazily account refreshes due on ``channel`` before ``arrival_ns``.

        Every elapsed tREFI window closes the channel's row buffers;
        the most recent one also stalls its banks for tRFC.
        """
        t = self.timing
        if t.t_refi <= 0:
            return
        epoch = int(arrival_ns // t.t_refi)
        if epoch <= self._refresh_epoch[channel]:
            return
        self._refresh_epoch[channel] = epoch
        lo = channel * self._n_banks
        hi = lo + self._n_banks
        self._open_row[lo:hi] = [-1] * self._n_banks
        stall_end = epoch * t.t_refi + t.t_rfc
        ready = self._bank_ready
        for i in range(lo, hi):
            if ready[i] < stall_end:
                ready[i] = stall_end
        self.stats.refreshes += 1

    def access(self, byte_addr: int, write: bool, arrival_ns: float) -> float:
        """Service one 64B request; returns its completion time (ns)."""
        # Inline address decomposition (see AddressMapping.decompose);
        # this runs once per simulated memory request.
        line = byte_addr // self._line_bytes
        channel = line % self._n_channels
        rest = (line // self._n_channels) // self._lines_per_row
        bank = rest % self._n_banks
        row = rest // self._n_banks
        t_refi = self._t_refi
        if t_refi > 0 and arrival_ns >= (self._refresh_epoch[channel] + 1) * t_refi:
            self._apply_refresh(channel, arrival_ns)
        bank_idx = channel * self._n_banks + bank
        row_hit = self._open_row[bank_idx] == row
        bank_ready = self._bank_ready[bank_idx]
        if row_hit:
            col_ready = arrival_ns if arrival_ns > bank_ready else bank_ready
            ready = col_ready + (self._t_cwd if write else self._t_cas)
        else:
            # Precharge, then an activate constrained by the channel's
            # activation rate (tRRD / tFAW window).
            precharged = (
                arrival_ns if arrival_ns > bank_ready else bank_ready
            ) + self._t_rp
            rated = self._last_activate[channel] + self._t_rrd
            activate = precharged if precharged > rated else rated
            self._last_activate[channel] = activate
            ready = activate + self._t_rcd + (self._t_cwd if write else self._t_cas)
        bus_free = self._bus_free[channel]
        prev_write = self._last_was_write[channel]
        if prev_write != write:
            bus_free += self._t_wtr if prev_write else self._t_rtw
        burst_start = ready if ready > bus_free else bus_free
        completion = burst_start + self._burst_ns
        self._bus_free[channel] = completion
        self._last_was_write[channel] = write
        self._bank_ready[bank_idx] = completion + (self._t_wr if write else 0.0)
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] += completion - burst_start
        st = self.stats
        if write:
            st.writes += 1
        else:
            st.reads += 1
        if row_hit:
            st.row_hits += 1
        else:
            st.row_misses += 1
        st.total_service_ns += completion - arrival_ns
        return completion

    def access_batch(
        self, byte_addrs: List[int], write: bool, arrival_ns: float
    ) -> float:
        """Service several same-direction requests arriving together.

        Bit-identical to one :meth:`access` call per address in order;
        returns the latest completion time. The sink's batched entry
        points use this to shed the per-request method dispatch and
        attribute traffic -- all mutable channel/bank state is bound to
        locals once per batch (the lists are mutated in place, so
        :meth:`_apply_refresh` stays coherent).
        """
        line_bytes = self._line_bytes
        n_channels = self._n_channels
        lines_per_row = self._lines_per_row
        n_banks = self._n_banks
        t_refi = self._t_refi
        t_rp = self._t_rp
        t_rrd = self._t_rrd
        t_col = self._t_rcd + (self._t_cwd if write else self._t_cas)
        t_hit = self._t_cwd if write else self._t_cas
        t_turn = self._t_wtr if not write else self._t_rtw
        t_wr = self._t_wr if write else 0.0
        burst_ns = self._burst_ns
        open_row = self._open_row
        bank_ready = self._bank_ready
        bus_free_l = self._bus_free
        last_activate = self._last_activate
        last_was_write = self._last_was_write
        refresh_epoch = self._refresh_epoch
        busy = self.channel_busy_ns
        hits = 0
        service = 0.0
        latest = 0.0
        for byte_addr in byte_addrs:
            line = byte_addr // line_bytes
            channel = line % n_channels
            rest = (line // n_channels) // lines_per_row
            bank = rest % n_banks
            row = rest // n_banks
            if t_refi > 0 and arrival_ns >= (refresh_epoch[channel] + 1) * t_refi:
                self._apply_refresh(channel, arrival_ns)
            bank_idx = channel * n_banks + bank
            brdy = bank_ready[bank_idx]
            if open_row[bank_idx] == row:
                ready = (arrival_ns if arrival_ns > brdy else brdy) + t_hit
                hits += 1
            else:
                precharged = (arrival_ns if arrival_ns > brdy else brdy) + t_rp
                rated = last_activate[channel] + t_rrd
                activate = precharged if precharged > rated else rated
                last_activate[channel] = activate
                ready = activate + t_col
            bus_free = bus_free_l[channel]
            if last_was_write[channel] != write:
                # Direction turnaround: tWTR after a write on the
                # channel, tRTW after a read (mirrors ``access``).
                bus_free += t_turn
            burst_start = ready if ready > bus_free else bus_free
            completion = burst_start + burst_ns
            bus_free_l[channel] = completion
            last_was_write[channel] = write
            bank_ready[bank_idx] = completion + t_wr
            open_row[bank_idx] = row
            busy[channel] += completion - burst_start
            service += completion - arrival_ns
            if completion > latest:
                latest = completion
        n = len(byte_addrs)
        st = self.stats
        if write:
            st.writes += n
        else:
            st.reads += n
        st.row_hits += hits
        st.row_misses += n - hits
        st.total_service_ns += service
        return latest

    def access_repeat(
        self, byte_addr: int, count: int, write: bool, arrival_ns: float
    ) -> float:
        """Service the same address ``count`` times arriving together.

        Bit-identical to ``access_batch([byte_addr] * count, ...)``, but
        after the first request the chain collapses: the row is open,
        the bank/bus dependencies are the previous completion, and the
        refresh check cannot fire again (``_apply_refresh`` advances the
        channel's epoch past ``arrival_ns``). Ring ORAM's Z'-deep bucket
        read bursts (reshuffle read phase) all take this shape, which is
        why the generic per-address loop is worth bypassing. Every
        floating-point operation matches the generic loop's order, so
        completion times and stat accumulations agree to the last bit.
        """
        if count <= 0:
            return 0.0
        line = byte_addr // self._line_bytes
        channel = line % self._n_channels
        rest = (line // self._n_channels) // self._lines_per_row
        bank = rest % self._n_banks
        row = rest // self._n_banks
        t_refi = self._t_refi
        if t_refi > 0 and arrival_ns >= (self._refresh_epoch[channel] + 1) * t_refi:
            self._apply_refresh(channel, arrival_ns)
        t_hit = self._t_cwd if write else self._t_cas
        bank_idx = channel * self._n_banks + bank
        brdy = self._bank_ready[bank_idx]
        row_hit = self._open_row[bank_idx] == row
        if row_hit:
            ready = (arrival_ns if arrival_ns > brdy else brdy) + t_hit
        else:
            precharged = (arrival_ns if arrival_ns > brdy else brdy) + self._t_rp
            rated = self._last_activate[channel] + self._t_rrd
            activate = precharged if precharged > rated else rated
            self._last_activate[channel] = activate
            ready = activate + (self._t_rcd + t_hit)
        bus_free = self._bus_free[channel]
        if self._last_was_write[channel] != write:
            bus_free += self._t_wtr if not write else self._t_rtw
        burst_ns = self._burst_ns
        t_wr = self._t_wr if write else 0.0
        burst_start = ready if ready > bus_free else bus_free
        completion = burst_start + burst_ns
        busy_c = self.channel_busy_ns[channel] + (completion - burst_start)
        service = completion - arrival_ns
        for _ in range(count - 1):
            # Row hit, no turnaround, and the bank/bus frontier is the
            # previous completion (``completion >= arrival_ns`` always,
            # so the generic loop's max() picks the bank side too).
            ready = (completion + t_wr) + t_hit
            burst_start = ready if ready > completion else completion
            completion = burst_start + burst_ns
            busy_c += completion - burst_start
            service += completion - arrival_ns
        self._bus_free[channel] = completion
        self._last_was_write[channel] = write
        self._bank_ready[bank_idx] = completion + t_wr
        self._open_row[bank_idx] = row
        self.channel_busy_ns[channel] = busy_c
        st = self.stats
        if write:
            st.writes += count
        else:
            st.reads += count
        hits = count if row_hit else count - 1
        st.row_hits += hits
        st.row_misses += count - hits
        st.total_service_ns += service
        return completion

    def access_burst(
        self, byte_addrs: List[int], writes: List[bool], arrival_ns: float
    ) -> float:
        """Issue a batch arriving together; returns the last completion."""
        if len(byte_addrs) != len(writes):
            raise ValueError("byte_addrs and writes length mismatch")
        done = arrival_ns
        for addr, w in zip(byte_addrs, writes):
            done = max(done, self.access(addr, w, arrival_ns))
        return done

    @property
    def frontier_ns(self) -> float:
        """Earliest time a fresh request could complete everywhere."""
        return max(self._bus_free, default=0.0)

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Average consumed bandwidth over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.stats.bytes_transferred / elapsed_ns

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.stats.reads),
            "writes": float(self.stats.writes),
            "row_hit_rate": self.stats.row_hit_rate,
            "bytes": float(self.stats.bytes_transferred),
            "channel_busy_ns": [float(x) for x in self.channel_busy_ns],
        }
