"""Result persistence: JSON records and CSV sweep exports.

Long sweeps are expensive; these helpers let benchmark drivers and
notebooks save :class:`~repro.sim.results.SimResult` matrices to disk
and reload them without rerunning the simulator.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.sim.results import SimResult

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Derived properties re-emitted by ``to_dict`` -- ignored on load.
_DERIVED_KEYS = ("bandwidth_gbps", "ns_per_access")

_FIELDS = dataclasses.fields(SimResult)
_KNOWN_KEYS = {f.name for f in _FIELDS}
_REQUIRED_KEYS = {
    f.name for f in _FIELDS
    if f.default is dataclasses.MISSING
    and f.default_factory is dataclasses.MISSING
}


def result_to_dict(result: SimResult) -> Dict[str, object]:
    d = result.to_dict()
    d["_format"] = _FORMAT_VERSION
    return d


def result_from_dict(data: Mapping[str, object]) -> SimResult:
    """Rebuild a :class:`SimResult`, validating the record first.

    Raises :class:`ValueError` -- naming the offending keys -- on a
    format-version mismatch, missing required fields or unknown fields,
    instead of surfacing a ``TypeError`` from the dataclass constructor
    long after the bad record was read.
    """
    d = dict(data)
    fmt = d.pop("_format", _FORMAT_VERSION)
    if fmt != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {fmt!r} (expected {_FORMAT_VERSION})"
        )
    for key in _DERIVED_KEYS:
        d.pop(key, None)
    missing = sorted(_REQUIRED_KEYS.difference(d))
    if missing:
        raise ValueError(f"result record is missing required keys: {missing}")
    unknown = sorted(set(d).difference(_KNOWN_KEYS))
    if unknown:
        raise ValueError(f"result record has unknown keys: {unknown}")
    return SimResult(**d)


def save_results(
    results: Mapping[str, Mapping[str, SimResult]], path: PathLike
) -> None:
    """Save a scheme -> benchmark -> result matrix as JSON."""
    payload = {
        "_format": _FORMAT_VERSION,
        "schemes": {
            scheme: {
                bench: result_to_dict(r) for bench, r in by_bench.items()
            }
            for scheme, by_bench in results.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_results(path: PathLike) -> Dict[str, Dict[str, SimResult]]:
    """Inverse of :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("_format") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported result format {payload.get('_format')!r}"
        )
    return {
        scheme: {
            bench: result_from_dict(d) for bench, d in by_bench.items()
        }
        for scheme, by_bench in payload["schemes"].items()
    }


def results_to_csv(
    results: Mapping[str, Mapping[str, SimResult]], path: PathLike
) -> int:
    """Flatten a result matrix to CSV (one row per scheme x benchmark).

    Returns the number of data rows written.
    """
    rows: List[Dict[str, object]] = []
    for scheme, by_bench in results.items():
        for bench, r in by_bench.items():
            rows.append({
                "scheme": scheme,
                "benchmark": bench,
                "requests": r.requests,
                "exec_ns": r.exec_ns,
                "ns_per_access": r.ns_per_access,
                "bandwidth_gbps": r.bandwidth_gbps,
                "row_hit_rate": r.row_hit_rate,
                "bytes": r.bytes_transferred,
                "remote_accesses": r.remote_accesses,
                "tree_bytes": r.tree_bytes,
                "space_utilization": r.space_utilization,
                "stash_peak": r.stash_peak,
                "extension_ratio": (
                    "" if r.extension_ratio is None else r.extension_ratio
                ),
                "dead_blocks": r.dead_blocks,
            })
    if not rows:
        raise ValueError("no results to write")
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)
